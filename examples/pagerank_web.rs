//! PageRank over a synthetic web crawl, comparing the two physical plans of
//! the paper's Figure 4.
//!
//! The example builds a Wikipedia-shaped power-law graph, runs 10 PageRank
//! iterations with the broadcast plan, the partition plan, and the
//! optimizer-selected plan, and reports the records shipped between worker
//! partitions — the quantity the optimizer's choice minimises.
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use algorithms::{pagerank, PageRankConfig, PageRankPlan};
use graphdata::DatasetProfile;

fn main() {
    let graph = DatasetProfile::wikipedia().generate(8192);
    println!(
        "Wikipedia-shaped stand-in: {} vertices, {} edges (avg degree {:.1})\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    let mut reference: Option<Vec<f64>> = None;
    for (label, plan) in [
        ("optimizer-selected", PageRankPlan::Optimized),
        ("broadcast plan (Fig. 4 left)", PageRankPlan::ForceBroadcast),
        (
            "partition plan (Fig. 4 right)",
            PageRankPlan::ForcePartition,
        ),
    ] {
        let config = PageRankConfig::new(4).with_iterations(10).with_plan(plan);
        let result = pagerank(&graph, &config).expect("PageRank run");
        let shipped: usize = result
            .stats
            .per_iteration
            .iter()
            .map(|s| s.messages_shipped)
            .sum();
        println!(
            "{label:<32} total {:>8.1} ms, {:>9} records shipped  ({})",
            result.stats.total_elapsed.as_secs_f64() * 1e3,
            shipped,
            result.plan_description
        );
        match &reference {
            None => reference = Some(result.ranks),
            Some(expected) => {
                for (a, b) in expected.iter().zip(&result.ranks) {
                    assert!((a - b).abs() < 1e-9, "plans must agree on the ranks");
                }
            }
        }
    }

    let ranks = reference.unwrap();
    let mut top: Vec<usize> = (0..ranks.len()).collect();
    top.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("\nhighest-ranked pages:");
    for &page in top.iter().take(5) {
        println!("  page {page:>8}  rank {:.6}", ranks[page]);
    }
}
