//! Single-source shortest paths as an incremental iteration, showing that
//! the working set tracks the BFS frontier rather than the whole graph, and
//! that the asynchronous microstep execution produces the same distances
//! without superstep barriers.
//!
//! ```text
//! cargo run --release --example sssp_frontier
//! ```

use algorithms::{oracles, sssp, UNREACHABLE};
use graphdata::DatasetProfile;
use spinning_core::ExecutionMode;

fn main() {
    let graph = DatasetProfile::foaf().generate(2048);
    let source = 0;
    println!(
        "FOAF-shaped stand-in: {} vertices, {} edges; shortest paths from vertex {source}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let oracle = oracles::sssp(&graph, source);

    for (label, mode) in [
        (
            "batch incremental (supersteps)",
            ExecutionMode::BatchIncremental,
        ),
        ("microstep (supersteps)", ExecutionMode::Microstep),
        (
            "asynchronous microstep",
            ExecutionMode::AsynchronousMicrostep,
        ),
    ] {
        let result = sssp(&graph, source, 4, mode).expect("SSSP run");
        assert_eq!(
            result.distances, oracle,
            "{label} disagrees with the BFS oracle"
        );
        let reachable = result
            .distances
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .count();
        let eccentricity = result
            .distances
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .max()
            .copied()
            .unwrap_or(0);
        println!(
            "{label:<34} {:>3} supersteps, {reachable} reachable vertices, eccentricity {eccentricity}",
            result.supersteps
        );
    }

    println!("\nfrontier sizes per superstep (batch incremental):");
    let result = sssp(&graph, source, 4, ExecutionMode::BatchIncremental).unwrap();
    for s in &result.stats.per_iteration {
        println!(
            "  superstep {:>3}: {:>8} candidates inspected, {:>8} distances improved",
            s.iteration, s.elements_inspected, s.elements_changed
        );
    }
}
