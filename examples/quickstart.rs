//! Quickstart: the paper's Figure 1 walkthrough.
//!
//! Runs Connected Components on the 9-vertex sample graph of Figure 1 in all
//! four variants (bulk, batch incremental, microstep, asynchronous) and shows
//! the per-superstep statistics that make the incremental variants cheap:
//! after the first supersteps only the few still-changing vertices are
//! touched.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use algorithms::{cc_async, cc_bulk, cc_incremental, cc_microstep, ComponentsConfig};
use graphdata::{figure1_expected_components, figure1_graph};

fn main() {
    let graph = figure1_graph();
    println!(
        "Figure 1 sample graph: {} vertices, {} (directed) edges, {} components\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.count_components()
    );

    let config = ComponentsConfig::new(2);
    let expected: Vec<i64> = figure1_expected_components()
        .into_iter()
        .map(i64::from)
        .collect();

    type Variant<'a> = (&'a str, Box<dyn Fn() -> algorithms::ComponentsResult + 'a>);
    let variants: Vec<Variant<'_>> = vec![
        (
            "bulk (FIXPOINT-CC)",
            Box::new(|| cc_bulk(&graph, &config).unwrap()),
        ),
        (
            "incremental (INCR-CC, CoGroup)",
            Box::new(|| cc_incremental(&graph, &config).unwrap()),
        ),
        (
            "microstep (MICRO-CC, Match)",
            Box::new(|| cc_microstep(&graph, &config).unwrap()),
        ),
        (
            "asynchronous microstep",
            Box::new(|| cc_async(&graph, &config).unwrap()),
        ),
    ];

    for (name, run) in variants {
        let result = run();
        assert_eq!(
            result.components, expected,
            "{name} disagrees with Figure 1"
        );
        println!(
            "{name}: converged in {} iterations/supersteps",
            result.iterations
        );
        println!("{}", result.stats.to_table());
    }

    println!("final component assignment (vertex -> component):");
    for (vertex, component) in expected.iter().enumerate().skip(1) {
        println!("  {vertex} -> {component}");
    }
}
