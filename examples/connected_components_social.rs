//! Connected Components on a social-network-shaped graph, comparing a bulk
//! dataflow, the incremental workset iteration, and the Pregel-style baseline
//! — the core comparison of the paper's evaluation (Figures 9 and 11).
//!
//! ```text
//! cargo run --release --example connected_components_social
//! ```

use algorithms::{cc_bulk, cc_incremental, cc_microstep, ComponentsConfig};
use baselines::{cc_pregel, PregelConfig};
use graphdata::DatasetProfile;
use std::time::Instant;

fn main() {
    let graph = DatasetProfile::hollywood().generate(256);
    println!(
        "Hollywood-shaped stand-in: {} vertices, {} edges (avg degree {:.1}), {} components\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree(),
        graph.count_components()
    );
    let oracle: Vec<i64> = graph
        .components_oracle()
        .into_iter()
        .map(i64::from)
        .collect();
    let config = ComponentsConfig::new(4);

    let start = Instant::now();
    let bulk = cc_bulk(&graph, &config).expect("bulk CC");
    let bulk_time = start.elapsed();
    assert_eq!(bulk.components, oracle);

    let start = Instant::now();
    let incremental = cc_incremental(&graph, &config).expect("incremental CC");
    let incremental_time = start.elapsed();
    assert_eq!(incremental.components, oracle);

    let start = Instant::now();
    let microstep = cc_microstep(&graph, &config).expect("microstep CC");
    let microstep_time = start.elapsed();
    assert_eq!(microstep.components, oracle);

    let start = Instant::now();
    let pregel = cc_pregel(&graph, &PregelConfig::new(4));
    let pregel_time = start.elapsed();
    assert_eq!(
        pregel
            .states
            .iter()
            .map(|&c| i64::from(c))
            .collect::<Vec<_>>(),
        oracle,
        "the Pregel baseline must find the same components"
    );

    println!("{:<36} {:>10} {:>12}", "variant", "iterations", "millis");
    for (name, iterations, time) in [
        (
            "Stratosphere bulk (full recompute)",
            bulk.iterations,
            bulk_time,
        ),
        (
            "Stratosphere incremental (CoGroup)",
            incremental.iterations,
            incremental_time,
        ),
        (
            "Stratosphere microstep (Match)",
            microstep.iterations,
            microstep_time,
        ),
        ("Pregel/Giraph baseline", pregel.supersteps, pregel_time),
    ] {
        println!(
            "{:<36} {:>10} {:>12.1}",
            name,
            iterations,
            time.as_secs_f64() * 1e3
        );
    }

    println!("\nincremental per-superstep effective work (the Figure 2 effect):");
    println!("{}", incremental.stats.to_table());
}
