//! Fault-injection and recovery equivalence: a run killed by a deterministic
//! injected fault and recovered from a superstep checkpoint must produce the
//! same result as the uninterrupted run — byte-identical per-vertex output —
//! across execution modes (batch incremental, microstep, bulk) and both
//! routing schemes (hash and range).
//!
//! Every oracle/baseline run pins `FaultInjector::disabled()` explicitly so
//! the CI fault-smoke job (which enables environment-driven injection via
//! `SPINNING_FAULT_RATE`) cannot corrupt the reference values.  Checkpoint
//! directories live under the spill directory, so the CI leak assertion also
//! proves recovered runs clean up after themselves.

use algorithms::{
    cc_bulk, cc_incremental, cc_microstep, oracles, sssp_with_config, ComponentsConfig,
};
use dataflow::prelude::{DataflowError, FaultInjector, FaultSite, MemoryBudget};
use graphdata::{chain, DatasetProfile, Graph};
use spinning_core::prelude::{CheckpointPolicy, ExecutionMode, WorksetConfig, WorksetRouting};
use std::path::PathBuf;
use std::time::Duration;

/// A small Webbase-style long-tail graph: ~1.8k vertices with a long chain,
/// so incremental runs execute ~180 supersteps — plenty of kill points.
fn webbase() -> Graph {
    DatasetProfile::webbase().generate(65_536)
}

fn cc_oracle(graph: &Graph) -> Vec<i64> {
    graph
        .components_oracle()
        .into_iter()
        .map(i64::from)
        .collect()
}

/// A per-test checkpoint root under the spill directory (covered by the CI
/// leak assertion) that concurrent test threads cannot collide on.
fn ckpt_dir(name: &str) -> PathBuf {
    dataflow::spill::default_spill_dir().join(format!("fault-{name}-{}", std::process::id()))
}

/// A fast-recovery policy: checkpoint every `interval` supersteps with a
/// microsecond-scale backoff so tests don't sleep.
fn policy(interval: usize, dir: &PathBuf) -> CheckpointPolicy {
    CheckpointPolicy::new(interval, dir).with_backoff(Duration::from_micros(50))
}

#[test]
fn worker_panic_without_checkpointing_surfaces_as_typed_error() {
    let graph = webbase();
    let config =
        ComponentsConfig::new(4).with_fault(FaultInjector::failing_nth(FaultSite::WorkerPanic, 9));
    let err = cc_incremental(&graph, &config).expect_err("injected panic must fail the run");
    match err {
        DataflowError::WorkerPanic {
            operator,
            superstep,
            message,
        } => {
            assert_eq!(operator, "workset-superstep");
            assert!(superstep >= 1);
            assert!(message.contains("injected"), "message: {message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn spill_read_fault_without_checkpointing_surfaces_as_typed_error() {
    // A tiny budget forces the superstep exchange to spill; the first
    // spilled-run read then faults.
    let graph = webbase();
    let config = ComponentsConfig::new(4)
        .with_memory_budget(MemoryBudget::bytes(1024))
        .with_fault(FaultInjector::failing_nth(FaultSite::SpillRead, 0));
    let err = cc_incremental(&graph, &config).expect_err("injected read fault must fail the run");
    match err {
        DataflowError::SpillIo(message) => {
            assert!(message.contains("injected"), "message: {message}")
        }
        other => panic!("expected SpillIo, got {other:?}"),
    }
}

#[test]
fn bulk_spill_read_fault_on_executor_path_surfaces_as_typed_error() {
    // The bulk path runs through the dataflow executor (not the workset
    // loop), so this pins the executor's own spilled-run reads: a tiny
    // budget forces every exchange to spill and the first read then faults.
    // Before the executor threaded `Result` through its read paths this
    // aborted the whole process via `.expect(...)`.
    let graph = webbase();
    let fault = FaultInjector::failing_nth(FaultSite::SpillRead, 0);
    let config = ComponentsConfig::new(4)
        .with_memory_budget(MemoryBudget::bytes(1024))
        .with_fault(fault.clone());
    let err = cc_bulk(&graph, &config).expect_err("injected read fault must fail the run");
    match err {
        DataflowError::SpillIo(message) => {
            assert!(message.contains("injected"), "message: {message}")
        }
        other => panic!("expected SpillIo, got {other:?}"),
    }
    assert!(fault.injected_total() > 0, "the fault must actually fire");
}

#[test]
fn cc_recovers_byte_identically_across_modes_and_routings() {
    let graph = webbase();
    let oracle = cc_oracle(&graph);
    type CcRun =
        fn(&Graph, &ComponentsConfig) -> dataflow::prelude::Result<algorithms::ComponentsResult>;
    let runs: [(CcRun, &str); 2] = [(cc_incremental, "incremental"), (cc_microstep, "microstep")];
    for (run, name) in runs {
        for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
            let base = ComponentsConfig::new(4)
                .with_routing(routing)
                .with_fault(FaultInjector::disabled());
            let baseline = run(&graph, &base).unwrap();
            assert_eq!(baseline.components, oracle, "{name} / {routing:?}");

            let dir = ckpt_dir(&format!("cc-{name}-{routing:?}"));
            let fault = FaultInjector::failing_nth(FaultSite::WorkerPanic, 21);
            let config = ComponentsConfig::new(4)
                .with_routing(routing)
                .with_checkpoint_policy(policy(3, &dir))
                .with_fault(fault.clone());
            let recovered = run(&graph, &config).unwrap();
            assert_eq!(
                recovered.components, baseline.components,
                "recovered run diverged ({name} / {routing:?})"
            );
            assert!(recovered.converged);
            assert!(
                fault.injected_total() > 0,
                "the fault must actually fire ({name} / {routing:?})"
            );
            assert!(
                recovered.stats.total_recoveries() >= 1,
                "the run must have recovered ({name} / {routing:?})"
            );
            assert!(recovered.stats.total_checkpoints_written() >= 1);
            assert!(recovered.stats.total_checkpoint_bytes() > 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn recovery_at_many_kill_points_matches_the_uninterrupted_run() {
    // Property-style sweep: kill the run at a spread of worker-panic events
    // (each event maps to one partition task of one superstep), recover, and
    // demand the identical fixpoint AND the identical superstep trajectory.
    let graph = webbase();
    let base = ComponentsConfig::new(2).with_fault(FaultInjector::disabled());
    let baseline = cc_incremental(&graph, &base).unwrap();
    assert_eq!(baseline.components, cc_oracle(&graph));
    for kill_event in [0, 1, 7, 33, 101, 250] {
        let dir = ckpt_dir(&format!("kill-{kill_event}"));
        let fault = FaultInjector::failing_nth(FaultSite::WorkerPanic, kill_event);
        let config = ComponentsConfig::new(2)
            .with_checkpoint_policy(policy(4, &dir))
            .with_fault(fault.clone());
        let recovered = cc_incremental(&graph, &config).unwrap();
        assert_eq!(
            recovered.components, baseline.components,
            "kill at event {kill_event} diverged"
        );
        assert_eq!(
            recovered.iterations, baseline.iterations,
            "recovery changed the superstep count (kill at event {kill_event})"
        );
        assert!(fault.injected_total() > 0, "event {kill_event} in range");
        assert!(recovered.stats.total_recoveries() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sssp_recovers_in_every_superstep_mode_and_routing() {
    let graph = webbase();
    let source = 0;
    let oracle = oracles::sssp(&graph, source);
    for mode in [ExecutionMode::BatchIncremental, ExecutionMode::Microstep] {
        for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
            let dir = ckpt_dir(&format!("sssp-{mode:?}-{routing:?}"));
            // SSSP from this source converges in ~4 supersteps at
            // parallelism 3 (12 worker events); event 5 kills superstep 2.
            let fault = FaultInjector::failing_nth(FaultSite::WorkerPanic, 5);
            let config = WorksetConfig::new(3)
                .with_mode(mode)
                .with_routing(routing)
                .with_checkpoint_policy(policy(2, &dir))
                .with_fault(fault.clone());
            let result = sssp_with_config(&graph, source, &config).unwrap();
            assert_eq!(result.distances, oracle, "{mode:?} / {routing:?}");
            assert!(result.converged);
            assert!(fault.injected_total() > 0, "{mode:?} / {routing:?}");
            assert!(
                result.stats.total_recoveries() >= 1,
                "{mode:?} / {routing:?}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn bulk_cc_recovers_at_iteration_boundaries() {
    let graph = webbase();
    let baseline = cc_bulk(
        &graph,
        &ComponentsConfig::new(2).with_fault(FaultInjector::disabled()),
    )
    .unwrap();
    assert_eq!(baseline.components, cc_oracle(&graph));

    let dir = ckpt_dir("bulk-cc");
    let fault = FaultInjector::failing_nth(FaultSite::WorkerPanic, 5);
    let config = ComponentsConfig::new(2)
        .with_checkpoint_policy(policy(2, &dir))
        .with_fault(fault.clone());
    let recovered = cc_bulk(&graph, &config).unwrap();
    assert_eq!(recovered.components, baseline.components);
    assert_eq!(recovered.iterations, baseline.iterations);
    assert!(recovered.converged);
    assert!(fault.injected_total() > 0);
    assert!(recovered.stats.total_recoveries() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_exhaustion_returns_recovery_exhausted() {
    // Every superstep attempt panics, so the retry budget drains and the run
    // fails with the typed exhaustion error wrapping the last failure.
    let graph = chain(32);
    let dir = ckpt_dir("exhaustion");
    let fault = FaultInjector::disabled().with_rate(FaultSite::WorkerPanic, 1.0);
    let config = ComponentsConfig::new(2)
        .with_checkpoint_policy(policy(1, &dir).with_max_retries(2))
        .with_fault(fault);
    let err = cc_incremental(&graph, &config).expect_err("nothing can make progress");
    match err {
        DataflowError::RecoveryExhausted {
            superstep,
            retries,
            last,
        } => {
            assert_eq!(superstep, 1);
            assert_eq!(retries, 2);
            assert!(
                matches!(*last, DataflowError::WorkerPanic { .. }),
                "last error: {last:?}"
            );
        }
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_read_fault_recovers_under_a_memory_budget() {
    // Combine out-of-core execution with injection on the spilled-run reads:
    // the fault hits while consuming a spilled candidate run, and recovery
    // replays from the checkpoint, re-spilling along the way.
    let graph = webbase();
    let base = ComponentsConfig::new(4)
        .with_memory_budget(MemoryBudget::bytes(1024))
        .with_fault(FaultInjector::disabled());
    let baseline = cc_incremental(&graph, &base).unwrap();
    assert!(
        baseline.stats.total_spilled_bytes() > 0,
        "budget must spill"
    );

    let dir = ckpt_dir("spill-read");
    let fault = FaultInjector::failing_nth(FaultSite::SpillRead, 2);
    let config = ComponentsConfig::new(4)
        .with_memory_budget(MemoryBudget::bytes(1024))
        .with_checkpoint_policy(policy(3, &dir))
        .with_fault(fault.clone());
    let recovered = cc_incremental(&graph, &config).unwrap();
    assert_eq!(recovered.components, baseline.components);
    assert!(recovered.converged);
    assert!(fault.injected_total() > 0);
    assert!(recovered.stats.total_recoveries() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI fault-smoke entry point: only active when `SPINNING_FAULT_RATE`
/// enables environment-driven injection (with `SPINNING_FAULT_SEED` pinning
/// the event sequence).  Runs a long incremental job with checkpointing under
/// whatever faults the environment injects and demands full convergence, a
/// nonzero recovery count, and (via the job's leak assertion) no files left
/// behind.
#[test]
fn env_driven_fault_smoke() {
    if !FaultInjector::from_env().is_enabled() {
        return;
    }
    let graph = webbase();
    let baseline = cc_incremental(
        &graph,
        &ComponentsConfig::new(4).with_fault(FaultInjector::disabled()),
    )
    .unwrap();
    let dir = ckpt_dir("env-smoke");
    // `ComponentsConfig::new` picks the injector up from the environment;
    // the budget makes the spill sites reachable too.
    let config = ComponentsConfig::new(4)
        .with_memory_budget(MemoryBudget::from_env().unwrap_or(MemoryBudget::bytes(1024)))
        .with_checkpoint_policy(policy(2, &dir).with_backoff(Duration::from_micros(100)));
    let result = cc_incremental(&graph, &config).unwrap();
    assert_eq!(result.components, baseline.components);
    assert!(result.converged);
    assert!(
        result.stats.total_recoveries() > 0,
        "the seeded CI injection must actually exercise recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A seeded connection drop in a two-process TCP cluster must surface as a
/// typed transport error on both sides — never a hang.  Worker 0 carries a
/// `FaultSite::ConnDrop` injector that tears its connections down on the
/// third outbound frame; worker 1 is fault-free and observes the loss
/// through its sockets.
#[test]
fn injected_connection_drop_fails_both_cluster_workers_with_typed_errors() {
    use algorithms::cc_workset_records;
    use dataflow::prelude::{ClusterSpec, TransportHandle};
    use graphdata::{rmat, RmatParams};

    // Bind-then-drop: a coordinator port that stays free for the rendezvous.
    let coordinator = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe listener")
        .local_addr()
        .expect("probe address")
        .to_string();
    let graph = rmat(300, 1200, RmatParams::default(), 23).symmetrize();
    let errors = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|index| {
                let coordinator = coordinator.clone();
                let graph = &graph;
                scope.spawn(move || {
                    let fault = if index == 0 {
                        FaultInjector::failing_nth(FaultSite::ConnDrop, 3)
                    } else {
                        FaultInjector::disabled()
                    };
                    let spec = ClusterSpec::new(2, index).unwrap();
                    let transport = TransportHandle::tcp_cluster(spec, &coordinator, &fault)
                        .expect("cluster rendezvous");
                    // Pin compute faults off so the connection drop is the
                    // only injected failure even under the CI fault matrix.
                    let config = ComponentsConfig::new(4)
                        .with_fault(FaultInjector::disabled())
                        .with_transport(transport);
                    cc_workset_records(graph, &config, ExecutionMode::BatchIncremental)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect::<Vec<_>>()
    });
    for (index, result) in errors.into_iter().enumerate() {
        let err = result.expect_err("the dropped connection must fail the run");
        assert!(
            matches!(
                err,
                DataflowError::PeerLost { .. }
                    | DataflowError::TornStream { .. }
                    | DataflowError::CommTimeout(_)
            ),
            "worker {index}: expected a typed transport error, got {err:?}"
        );
    }
}
