//! Property-based integration tests over the core invariants, using randomly
//! generated graphs and workloads.
//!
//! The properties are exercised with a small hand-rolled harness (a
//! deterministic [`SmallRng`] stream of cases) instead of an external
//! property-testing crate, so the suite runs with no dependencies.  Every
//! case is reproducible: the case index is part of the seed, and assertion
//! messages name the seed of the failing case.

use algorithms::{
    cc_async, cc_bulk, cc_incremental, cc_microstep, oracles, sssp, ComponentsConfig,
};
use dataflow::key::{hash_key, hash_values, partition_for, sort_by_key, Key};
use dataflow::page::{normalize_long, serialize_record, ExchangedPartition, PageWriter};
use dataflow::prelude::*;
use dataflow::range::{sample_keys_into, sort_by_key_normalized};
use dataflow::spill::write_sorted_records_in;
use graphdata::{Graph, SmallRng, VertexId};
use spinning_core::prelude::*;
use std::sync::Arc;

/// Number of random cases per property.
const CASES: u64 = 24;

/// A random small undirected graph derived from `seed`.
fn arbitrary_graph(rng: &mut SmallRng) -> Graph {
    let n = 2 + rng.gen_index(58);
    let num_edges = rng.gen_index(200);
    let edges: Vec<(VertexId, VertexId)> = (0..num_edges)
        .map(|_| (rng.gen_index(n) as VertexId, rng.gen_index(n) as VertexId))
        .collect();
    Graph::undirected_from_edges(n, &edges)
}

/// A random record mixing every value type, exercising composite keys.
fn arbitrary_record(rng: &mut SmallRng) -> Record {
    let arity = 1 + rng.gen_index(4);
    let mut fields = Vec::with_capacity(arity);
    for _ in 0..arity {
        fields.push(match rng.gen_index(5) {
            0 => Value::Long(rng.next_u64() as i64),
            1 => Value::Double(rng.gen_f64() * 1e6 - 5e5),
            2 => Value::Bool(rng.gen_index(2) == 0),
            // Text mixes single- and multi-byte UTF-8 so the byte-oriented
            // page format is exercised on non-ASCII boundaries.
            3 => Value::Text(match rng.gen_index(3) {
                0 => format!("t{}", rng.gen_index(1000)),
                1 => format!("日本語·{}", rng.gen_index(100)),
                _ => format!("🦀✓héllo{}", rng.gen_index(10)),
            }),
            _ => Value::Null,
        });
    }
    Record::new(fields)
}

/// Fixpoint equivalence: the bulk, incremental, microstep and asynchronous
/// Connected Components all equal the sequential union-find oracle on
/// arbitrary graphs.  Bulk runs through the executor's paged exchange and
/// the incremental variants through the workset driver's paged superstep
/// exchange, so this property pins the page path end-to-end against the
/// oracle.
#[test]
fn prop_connected_components_fixpoint_equivalence() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let graph = arbitrary_graph(&mut rng);
        let oracle: Vec<i64> = graph
            .components_oracle()
            .into_iter()
            .map(i64::from)
            .collect();
        let config = ComponentsConfig::new(3);
        assert_eq!(
            cc_bulk(&graph, &config).unwrap().components,
            oracle,
            "bulk CC diverged from oracle (seed {seed})"
        );
        assert_eq!(
            cc_incremental(&graph, &config).unwrap().components,
            oracle,
            "incremental CC diverged from oracle (seed {seed})"
        );
        assert_eq!(
            cc_microstep(&graph, &config).unwrap().components,
            oracle,
            "microstep CC diverged from oracle (seed {seed})"
        );
        assert_eq!(
            cc_async(&graph, &config).unwrap().components,
            oracle,
            "async CC diverged from oracle (seed {seed})"
        );
    }
}

/// CPO monotonicity: across supersteps of the incremental iteration, a
/// vertex's component id never increases.
#[test]
fn prop_component_ids_never_increase() {
    for seed in 0..8 {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let graph = arbitrary_graph(&mut rng);
        let full = cc_incremental(&graph, &ComponentsConfig::new(2)).unwrap();
        let mut previous: Vec<i64> = (0..graph.num_vertices() as i64).collect();
        for bound in 1..=full.iterations {
            let partial =
                cc_incremental(&graph, &ComponentsConfig::new(2).with_max_iterations(bound))
                    .unwrap();
            for (v, (new_cid, old_cid)) in partial.components.iter().zip(&previous).enumerate() {
                assert!(
                    new_cid <= old_cid,
                    "component id of vertex {v} increased (seed {seed}, bound {bound})"
                );
            }
            previous = partial.components;
        }
    }
}

/// SSSP equals the BFS oracle on arbitrary graphs and sources.
#[test]
fn prop_sssp_matches_bfs() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let graph = arbitrary_graph(&mut rng);
        let source = rng.gen_index(graph.num_vertices()) as u32;
        let oracle = oracles::sssp(&graph, source);
        let result = sssp(&graph, source, 2, ExecutionMode::BatchIncremental).unwrap();
        assert_eq!(
            result.distances, oracle,
            "SSSP diverged from BFS (seed {seed})"
        );
    }
}

/// The hash used for partition routing agrees between a record's key fields
/// and the extracted [`Key`], for every key shape (single long, composite,
/// text, double, null) — the invariant the partitioned solution-set index
/// relies on.
#[test]
fn prop_extracted_key_hash_matches_record_hash() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        for _ in 0..50 {
            let record = arbitrary_record(&mut rng);
            // Try every single-field key and a couple of composite ones.
            let mut field_sets: Vec<Vec<usize>> = (0..record.arity()).map(|i| vec![i]).collect();
            if record.arity() >= 2 {
                field_sets.push(vec![0, 1]);
                field_sets.push(vec![1, 0]);
                field_sets.push((0..record.arity()).collect());
            }
            for fields in field_sets {
                let key = Key::extract(&record, &fields);
                assert_eq!(
                    hash_values(&key.values()),
                    hash_key(&record, &fields),
                    "hash mismatch for key {key:?} of {record} on {fields:?} (seed {seed})"
                );
                assert_eq!(
                    dataflow::key::hash_of_key(&key),
                    hash_key(&record, &fields),
                    "hash_of_key mismatch for {key:?} (seed {seed})"
                );
            }
        }
    }
}

/// The inline-long fast path and the composite fallback of [`Key`] compare,
/// hash and route identically: equal value sequences mean equal keys, equal
/// hashes and the same target partition.
#[test]
fn prop_key_representations_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(5000 + seed);
        for _ in 0..100 {
            let v = rng.next_u64() as i64;
            let fast = Key::long(v);
            let slow = Key::Composite(vec![Value::Long(v)].into_boxed_slice());
            assert_eq!(fast, slow);
            assert_eq!(fast.cmp(&slow), std::cmp::Ordering::Equal);
            assert_eq!(
                dataflow::key::hash_of_key(&fast),
                dataflow::key::hash_of_key(&slow)
            );
            assert!(matches!(
                Key::from_values(vec![Value::Long(v)]),
                Key::Long(_)
            ));
            let record = Record::pair(v, 7);
            for parallelism in [1usize, 3, 8, 17] {
                let p = partition_for(&record, &[0], parallelism);
                assert!(p < parallelism);
                assert_eq!(
                    p,
                    (dataflow::key::hash_of_key(&fast) % parallelism as u64) as usize,
                    "partition routing diverged for v={v} (seed {seed})"
                );
            }
        }
    }
}

/// The ∪̇ merge with a comparator is idempotent and keeps the record closest
/// to the supremum, regardless of delta order.
#[test]
fn prop_solution_set_merge_order_independent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(6000 + seed);
        let n = 1 + rng.gen_index(59);
        let deltas: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.gen_index(20) as i64, rng.gen_index(100) as i64))
            .collect();
        let comparator: RecordComparator =
            Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1)));
        let mut forward = SolutionSet::new(vec![0], 3).with_comparator(Arc::clone(&comparator));
        let mut reverse = SolutionSet::new(vec![0], 5).with_comparator(comparator);
        for &(k, v) in &deltas {
            forward.merge(Record::pair(k, v));
        }
        for &(k, v) in deltas.iter().rev() {
            reverse.merge(Record::pair(k, v));
        }
        let mut a = forward.records();
        let mut b = reverse.records();
        a.sort();
        b.sort();
        assert_eq!(a, b, "merge order changed the fixpoint (seed {seed})");
        for &(k, _) in &deltas {
            let min = deltas
                .iter()
                .filter(|(k2, _)| *k2 == k)
                .map(|&(_, v)| v)
                .min()
                .unwrap();
            assert_eq!(
                forward.lookup(&Key::long(k)).unwrap().long(1),
                min,
                "surviving value is not the minimum (seed {seed})"
            );
        }
    }
}

/// Partitioned execution of a keyed aggregation produces the same result as a
/// single-partition run, for any parallelism.
#[test]
fn prop_partitioned_aggregation_matches_serial() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(7000 + seed);
        let n = rng.gen_index(200);
        let values: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.gen_index(15) as i64, rng.gen_index(200) as i64 - 100))
            .collect();
        let parallelism = 1 + rng.gen_index(8);
        let records: Vec<Record> = values.iter().map(|&(k, v)| Record::pair(k, v)).collect();
        let mut plan = Plan::new();
        let src = plan.source("values", records);
        let sum = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], group: &[Record], out: &mut Collector| {
                    let total: i64 = group.iter().map(|r| r.long(1)).sum();
                    out.collect(Record::pair(key[0].as_long(), total));
                },
            )),
        );
        plan.sink("sums", sum);
        let exec = Executor::new();
        let mut parallel = exec
            .execute(&default_physical_plan(&plan, parallelism).unwrap())
            .unwrap()
            .into_sink("sums")
            .unwrap();
        let mut serial = exec
            .execute(&default_physical_plan(&plan, 1).unwrap())
            .unwrap()
            .into_sink("sums")
            .unwrap();
        parallel.sort();
        serial.sort();
        assert_eq!(
            parallel, serial,
            "parallelism {parallelism} changed sums (seed {seed})"
        );
    }
}

/// A hash-partitioned join sees every matching pair exactly once (equivalence
/// with a nested-loop oracle).
#[test]
fn prop_partitioned_join_is_complete() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(8000 + seed);
        let gen_side = |rng: &mut SmallRng| -> Vec<(i64, i64)> {
            let n = rng.gen_index(60);
            (0..n)
                .map(|_| (rng.gen_index(10) as i64, rng.gen_index(50) as i64))
                .collect()
        };
        let left = gen_side(&mut rng);
        let right = gen_side(&mut rng);
        let parallelism = 1 + rng.gen_index(5);

        let mut expected: Vec<(i64, i64)> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    expected.push((lv, rv));
                }
            }
        }
        expected.sort_unstable();

        let mut plan = Plan::new();
        let l = plan.source(
            "left",
            left.iter().map(|&(k, v)| Record::pair(k, v)).collect(),
        );
        let r = plan.source(
            "right",
            right.iter().map(|&(k, v)| Record::pair(k, v)).collect(),
        );
        let join = plan.match_join(
            "join",
            l,
            r,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |a: &Record, b: &Record, out: &mut Collector| {
                    out.collect(Record::pair(a.long(1), b.long(1)));
                },
            )),
        );
        plan.sink("pairs", join);
        let result = Executor::new()
            .execute(&default_physical_plan(&plan, parallelism).unwrap())
            .unwrap()
            .into_sink("pairs")
            .unwrap();
        let mut actual: Vec<(i64, i64)> = result.iter().map(|r| (r.long(0), r.long(1))).collect();
        actual.sort_unstable();
        assert_eq!(actual, expected, "join incomplete (seed {seed})");
    }
}

/// Pages round-trip arbitrary records exactly: every `Value` variant
/// (including `Null` and multi-byte UTF-8 `Text`), any arity, and page
/// capacities small enough that records straddle page boundaries.  The
/// serialized width must equal `estimated_bytes` for every record, since the
/// page writer's fit check relies on it.
#[test]
fn prop_page_round_trip_arbitrary_records() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(9000 + seed);
        let n = 1 + rng.gen_index(120);
        let records: Vec<Record> = (0..n).map(|_| arbitrary_record(&mut rng)).collect();
        // Page capacities from pathologically tiny (every record oversized)
        // to comfortably large.
        let page_bytes = [16, 48, 256, 32 * 1024][rng.gen_index(4)];
        let mut writer = PageWriter::with_page_bytes(page_bytes);
        for record in &records {
            let mut buf = Vec::new();
            serialize_record(record, &mut buf);
            assert_eq!(
                buf.len(),
                record.estimated_bytes(),
                "estimate is not the serialized width for {record} (seed {seed})"
            );
            writer.push(record);
        }
        assert_eq!(writer.total_records(), records.len());
        let pages = writer.finish();
        let read: Vec<Record> = pages
            .iter()
            .flat_map(|page| page.reader().map(|view| view.materialize()))
            .collect();
        assert_eq!(
            read, records,
            "page round-trip changed records (seed {seed}, page_bytes {page_bytes})"
        );
    }
}

/// A skewed Long key: a few hot values, clustered mid-range values, uniform
/// full-range values and the extremes — the distribution range splitters
/// must absorb.
fn skewed_long_key(rng: &mut SmallRng) -> i64 {
    match rng.gen_index(10) {
        // Hot keys: heavy duplication, including across splitter boundaries.
        0..=2 => [0, 7, -3][rng.gen_index(3)],
        // A dense cluster.
        3..=6 => rng.gen_index(1000) as i64 - 500,
        // Full-range uniform.
        7 | 8 => rng.next_u64() as i64,
        // Extremes.
        _ => [i64::MIN, i64::MAX, i64::MIN + 1, -1][rng.gen_index(4)],
    }
}

/// Range partitioning + per-partition memcmp sort delivers, concatenated in
/// partition order, exactly the key order a global `sort_by_key` (the
/// `Value`-comparison oracle) produces over the hash-exchanged multiset —
/// for skewed Long-key datasets, every parallelism, boundary duplicates and
/// the degenerate single-partition case.
#[test]
fn prop_range_exchange_equals_globally_sorted_hash_exchange() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(11_000 + seed);
        for &parallelism in &[1usize, 2, 3, 8] {
            let n = rng.gen_index(400);
            let records: Vec<Record> = (0..n)
                .map(|i| Record::pair(skewed_long_key(&mut rng), i as i64))
                .collect();
            // Producer partitions: round-robin chunks, as the executor sees
            // them after a previous operator.
            let mut producers: Vec<Vec<Record>> = vec![Vec::new(); parallelism];
            for (i, r) in records.iter().enumerate() {
                producers[i % parallelism].push(r.clone());
            }
            let mut sample = Vec::new();
            for producer in &producers {
                sample_keys_into(&mut sample, producer, &[0]);
            }
            let bounds = RangeBounds::from_sample(sample, parallelism);
            assert!(bounds.effective_partitions() <= parallelism);

            // Route by splitters, sort each partition on the memcmp path.
            let mut parts: Vec<Vec<Record>> = vec![Vec::new(); parallelism];
            for record in &records {
                parts[bounds.partition_for_record(record, &[0])].push(record.clone());
            }
            for part in parts.iter_mut() {
                assert!(
                    sort_by_key_normalized(part, &[0]),
                    "Long keys must take the memcmp path (seed {seed})"
                );
            }

            // Oracle: the hash-exchanged output flattened back into one
            // multiset (a hash exchange only moves records between
            // partitions), globally sorted by the stable Value-comparison
            // sort.
            let mut hashed: Vec<Vec<Record>> = vec![Vec::new(); parallelism];
            for record in &records {
                hashed[partition_for(record, &[0], parallelism)].push(record.clone());
            }
            let mut oracle: Vec<Record> = hashed.into_iter().flatten().collect();
            sort_by_key(&mut oracle, &[0]);

            let concatenated: Vec<Record> = parts.into_iter().flatten().collect();
            assert_eq!(concatenated.len(), oracle.len());
            let keys: Vec<i64> = concatenated.iter().map(|r| r.long(0)).collect();
            let oracle_keys: Vec<i64> = oracle.iter().map(|r| r.long(0)).collect();
            assert_eq!(
                keys, oracle_keys,
                "key order diverged (seed {seed}, p {parallelism})"
            );
            // Same records overall (duplicates kept, none lost on splitter
            // boundaries).
            let mut a = concatenated;
            let mut b = oracle;
            a.sort();
            b.sort();
            assert_eq!(a, b, "multiset diverged (seed {seed}, p {parallelism})");
        }
    }
}

/// Histogram splitters are order-preserving: `partition_of` is monotone in
/// the key order — and therefore in `normalized_long_prefix`, whose byte
/// order equals the key order — including extremes, negatives, all-equal
/// samples and the empty sample.
#[test]
fn prop_range_bounds_monotone_in_normalized_order() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(12_000 + seed);
        let parallelism = 1 + rng.gen_index(8);
        let sample_kind = rng.gen_index(4);
        let sample: Vec<Key> = match sample_kind {
            // Empty sample: must not panic, one effective partition.
            0 => Vec::new(),
            // All-equal degenerate sample.
            1 => vec![Key::long(skewed_long_key(&mut rng)); 1 + rng.gen_index(50)],
            // Tiny sample (fewer distinct keys than partitions).
            2 => (0..1 + rng.gen_index(3))
                .map(|_| Key::long(skewed_long_key(&mut rng)))
                .collect(),
            _ => (0..rng.gen_index(500))
                .map(|_| Key::long(skewed_long_key(&mut rng)))
                .collect(),
        };
        let empty = sample.is_empty();
        let bounds = RangeBounds::from_sample(sample, parallelism);
        if empty || sample_kind == 1 {
            // Degenerate samples collapse: empty to exactly one effective
            // partition, all-equal to at most two (everything ≤ the splitter
            // routes to partition 0).
            assert!(
                bounds.effective_partitions() <= 2,
                "degenerate sample produced {} partitions (seed {seed})",
                bounds.effective_partitions()
            );
            if empty {
                assert_eq!(bounds.effective_partitions(), 1);
            }
        }
        let mut probes: Vec<i64> = (0..200).map(|_| skewed_long_key(&mut rng)).collect();
        probes.extend([i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX]);
        probes.sort_unstable();
        for pair in probes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                normalize_long(a) <= normalize_long(b),
                "normalized encoding broke the order at {a} vs {b}"
            );
            let (pa, pb) = (bounds.partition_of_long(a), bounds.partition_of_long(b));
            assert!(
                pa <= pb,
                "routing not monotone: {a}→{pa} vs {b}→{pb} (seed {seed})"
            );
            assert!(pa < parallelism && pb < parallelism);
            // Routing a record agrees with routing its key, and equal keys
            // (a == b happens for duplicated probes) collocate.
            assert_eq!(
                bounds.partition_for_record(&Record::pair(a, 1), &[0]),
                bounds.partition_of_key(&Key::long(a))
            );
        }
    }
}

/// Spill-run round-trip: records written through a budgeted spilling writer
/// — whatever mix of in-memory pages and on-disk runs the random budget
/// produces — read back as exactly the input multiset; and when the writer
/// sorts on flush, merging the runs with the sorted residue reproduces the
/// stable single-vector sort order, global order preserved.
#[test]
fn prop_spill_run_round_trip() {
    let dir = std::env::temp_dir().join(format!("spinning-spill-prop-{}", std::process::id()));
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(13_000 + seed);

        // Part 1: arbitrary records (any arity/types), unsorted spill —
        // pure byte-level round-trip through pages on disk.
        let n = rng.gen_index(150);
        let records: Vec<Record> = (0..n).map(|_| arbitrary_record(&mut rng)).collect();
        let budget = [0usize, 64, 512, 4096][rng.gen_index(4)];
        let manager = SpillManager::in_dir(dir.clone(), MemoryBudget::bytes(budget), None)
            .with_page_bytes([48, 256][rng.gen_index(2)]);
        let mut writer = manager.writer();
        for record in &records {
            writer.push(record);
        }
        let out = writer.finish().unwrap();
        let mut read: Vec<Record> = out
            .pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        for run in &out.runs {
            let mut cursor = run.cursor().unwrap();
            while let Some(record) = cursor.next_record().unwrap() {
                read.push(record);
            }
        }
        let mut expected = records.clone();
        read.sort();
        expected.sort();
        assert_eq!(read, expected, "unsorted spill lost records (seed {seed})");

        // Part 2: skewed Long keys, sort-on-flush — the merged stream must
        // equal the stable memcmp sort of the whole input.
        let n = rng.gen_index(300);
        let keyed: Vec<Record> = (0..n)
            .map(|i| Record::pair(skewed_long_key(&mut rng), i as i64))
            .collect();
        let manager = SpillManager::in_dir(
            dir.clone(),
            MemoryBudget::bytes([0usize, 128, 1024][rng.gen_index(3)]),
            Some(vec![0]),
        )
        .with_page_bytes(128);
        let mut writer = manager.writer();
        for record in &keyed {
            writer.push(record);
        }
        let out = writer.finish().unwrap();
        // The in-memory residue arrived after everything that spilled, so it
        // sorts on its own and merges as the last source.
        let mut residue: Vec<Record> = out
            .pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        assert!(sort_by_key_normalized(&mut residue, &[0]));
        let mut merged = Vec::new();
        RunMerger::over_runs(&out.runs, residue, vec![0])
            .unwrap()
            .collect_into(&mut merged)
            .unwrap();
        let mut oracle = keyed.clone();
        sort_by_key_normalized(&mut oracle, &[0]);
        let merged_keys: Vec<i64> = merged.iter().map(|r| r.long(0)).collect();
        let oracle_keys: Vec<i64> = oracle.iter().map(|r| r.long(0)).collect();
        assert_eq!(merged_keys, oracle_keys, "global order lost (seed {seed})");
        merged.sort();
        oracle.sort();
        assert_eq!(
            merged, oracle,
            "sorted spill changed the multiset (seed {seed})"
        );
    }
    let _ = std::fs::remove_dir(&dir);
}

/// The k-way loser-tree merge equals the single-vector memcmp sort oracle
/// for every k in {1, 2, 3, 8, 17}, including empty runs and heavy duplicate
/// keys — exact record sequence, not just multiset, because contiguous
/// input chunks plus the source-index tiebreak reproduce the stable sort.
#[test]
fn prop_run_merger_matches_single_vector_sort() {
    let dir = std::env::temp_dir().join(format!("spinning-merge-prop-{}", std::process::id()));
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(14_000 + seed);
        for &k in &[1usize, 2, 3, 8, 17] {
            let n = rng.gen_index(250);
            let input: Vec<Record> = (0..n)
                .map(|i| Record::pair(skewed_long_key(&mut rng) % 17, i as i64))
                .collect();
            // Random chunk boundaries (possibly empty chunks) in input order.
            let mut boundaries: Vec<usize> = (0..k - 1).map(|_| rng.gen_index(n + 1)).collect();
            boundaries.sort_unstable();
            boundaries.insert(0, 0);
            boundaries.push(n);
            let mut sources = Vec::with_capacity(k);
            for w in boundaries.windows(2) {
                let mut chunk = input[w[0]..w[1]].to_vec();
                sort_by_key_normalized(&mut chunk, &[0]);
                // Alternate spilled and in-memory sources; both must merge
                // identically (empty chunks become empty runs/sources).
                if rng.gen_index(2) == 0 {
                    let run = write_sorted_records_in(&dir, &chunk, &[0]).unwrap();
                    sources.push(MergeSource::Spilled(run.cursor().unwrap()));
                } else {
                    sources.push(MergeSource::Records(chunk.into_iter()));
                }
            }
            let mut merged = Vec::new();
            RunMerger::new(sources, vec![0])
                .unwrap()
                .collect_into(&mut merged)
                .unwrap();
            let mut oracle = input;
            sort_by_key_normalized(&mut oracle, &[0]);
            assert_eq!(merged, oracle, "merge diverged (seed {seed}, k {k})");
        }
    }
    let _ = std::fs::remove_dir(&dir);
}

/// Exchange-with-budget equals exchange-without-budget: the same plan run
/// under random byte budgets (including "spill everything") produces the
/// same sink contents, for hash- and range-shipped keyed aggregations at
/// random parallelisms.
#[test]
fn prop_budgeted_execution_matches_unbudgeted() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(15_000 + seed);
        let n = rng.gen_index(400);
        let parallelism = 2 + rng.gen_index(5);
        let records: Vec<Record> = (0..n)
            .map(|i| Record::pair(skewed_long_key(&mut rng) % 29, i as i64))
            .collect();
        let mut plan = Plan::new();
        let src = plan.source("values", records);
        let sum = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], group: &[Record], out: &mut Collector| {
                    let total: i64 = group.iter().map(|r| r.long(1)).sum();
                    out.collect(Record::triple(key[0].as_long(), total, group.len() as f64));
                },
            )),
        );
        plan.sink("sums", sum);
        let mut phys = default_physical_plan(&plan, parallelism).unwrap();
        if rng.gen_index(2) == 0 {
            let choice = phys.choices.get_mut(&sum).unwrap();
            choice.input_ships[0] = ShipStrategy::PartitionRange(vec![0]);
            choice.local = LocalStrategy::SortGroup;
        }
        let mut unbudgeted = Executor::new()
            .execute(&phys)
            .unwrap()
            .into_sink("sums")
            .unwrap();
        let budget = MemoryBudget::bytes([0usize, 1, 64, 700, 5000][rng.gen_index(5)]);
        let result = Executor::with_config(ExecConfig::new().with_memory_budget(budget))
            .execute(&phys)
            .unwrap();
        let mut budgeted = result.into_sink("sums").unwrap();
        unbudgeted.sort();
        budgeted.sort();
        assert_eq!(
            budgeted, unbudgeted,
            "budget {budget:?} changed the sums (seed {seed}, p {parallelism})"
        );
    }
}

/// The sealed-page exchange delivers exactly the records the plain
/// `Vec<Record>` exchange would, to the same partitions, for arbitrary
/// records and parallelisms — including when pages straddle and when the
/// receive side iterates by reference (the executor's scratch-record path).
#[test]
fn prop_paged_exchange_matches_vec_exchange() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(10_000 + seed);
        let parallelism = 1 + rng.gen_index(7);
        let n = rng.gen_index(300);
        let records: Vec<Record> = (0..n).map(|_| arbitrary_record(&mut rng)).collect();
        let key_fields = vec![0usize];

        // Reference: the pre-page exchange — per-record routing into Vecs.
        let mut expected: Vec<Vec<Record>> = vec![Vec::new(); parallelism];
        for record in &records {
            expected[partition_for(record, &key_fields, parallelism)].push(record.clone());
        }

        // Paged: producer partitions serialize outbound records, the
        // exchange moves sealed pages, the receiver reads them back.
        let sources: Vec<Vec<Record>> = records
            .chunks((n / parallelism + 1).max(1))
            .map(|chunk| chunk.to_vec())
            .collect();
        let mut received: Vec<ExchangedPartition> = Vec::new();
        let mut locals: Vec<Vec<Record>> = vec![Vec::new(); parallelism];
        let mut writers: Vec<Vec<PageWriter>> = (0..parallelism)
            .map(|_| (0..parallelism).map(|_| PageWriter::new()).collect())
            .collect();
        for (src, source) in sources.into_iter().enumerate() {
            for record in source {
                let target = partition_for(&record, &key_fields, parallelism);
                if target == src {
                    locals[src].push(record);
                } else {
                    writers[src][target].push(&record);
                }
            }
        }
        for local in locals {
            received.push(ExchangedPartition::from_records(local));
        }
        for source_writers in writers {
            for (target, writer) in source_writers.into_iter().enumerate() {
                received[target].receive_pages(writer.finish());
            }
        }

        for (target, part) in received.into_iter().enumerate() {
            let mut by_ref: Vec<Record> = Vec::new();
            part.for_each_ref(|r| by_ref.push(r.clone())).unwrap();
            let mut owned = part.into_records().unwrap();
            assert_eq!(by_ref.len(), owned.len());
            by_ref.sort();
            owned.sort();
            let mut want = expected[target].clone();
            want.sort();
            assert_eq!(
                owned, want,
                "paged exchange diverged at partition {target} (seed {seed})"
            );
            assert_eq!(by_ref, owned, "ref/owned iteration diverged (seed {seed})");
        }
    }
}
