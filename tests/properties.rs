//! Property-based integration tests over the core invariants listed in
//! DESIGN.md, using randomly generated graphs and workloads.

use algorithms::{cc_async, cc_incremental, cc_microstep, oracles, sssp, ComponentsConfig};
use dataflow::prelude::*;
use graphdata::{Graph, VertexId};
use proptest::prelude::*;
use spinning_core::prelude::*;
use std::sync::Arc;

/// Strategy producing arbitrary small undirected graphs.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..60, proptest::collection::vec((0u32..60, 0u32..60), 0..200)).prop_map(
        |(n, edges)| {
            let clipped: Vec<(VertexId, VertexId)> = edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            Graph::undirected_from_edges(n, &clipped)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fixpoint equivalence: the incremental, microstep and asynchronous
    /// Connected Components all equal the sequential union-find oracle on
    /// arbitrary graphs.
    #[test]
    fn prop_connected_components_fixpoint_equivalence(graph in arbitrary_graph()) {
        let oracle: Vec<i64> = graph.components_oracle().into_iter().map(i64::from).collect();
        let config = ComponentsConfig::new(3);
        prop_assert_eq!(cc_incremental(&graph, &config).unwrap().components, oracle.clone());
        prop_assert_eq!(cc_microstep(&graph, &config).unwrap().components, oracle.clone());
        prop_assert_eq!(cc_async(&graph, &config).unwrap().components, oracle);
    }

    /// CPO monotonicity: across supersteps of the incremental iteration, a
    /// vertex's component id never increases.
    #[test]
    fn prop_component_ids_never_increase(graph in arbitrary_graph()) {
        // Run superstep by superstep using the max_supersteps bound and check
        // monotonicity of the evolving assignment.
        let config_full = ComponentsConfig::new(2);
        let full = cc_incremental(&graph, &config_full).unwrap();
        let mut previous: Vec<i64> = (0..graph.num_vertices() as i64).collect();
        for bound in 1..=full.iterations {
            let partial = cc_incremental(
                &graph,
                &ComponentsConfig::new(2).with_max_iterations(bound),
            )
            .unwrap();
            for v in 0..graph.num_vertices() {
                prop_assert!(partial.components[v] <= previous[v]);
            }
            previous = partial.components;
        }
    }

    /// SSSP equals the BFS oracle on arbitrary graphs and sources.
    #[test]
    fn prop_sssp_matches_bfs(graph in arbitrary_graph(), source_raw in 0u32..60) {
        let source = source_raw % graph.num_vertices() as u32;
        let oracle = oracles::sssp(&graph, source);
        let result = sssp(&graph, source, 2, ExecutionMode::BatchIncremental).unwrap();
        prop_assert_eq!(result.distances, oracle);
    }

    /// The ∪̇ merge with a comparator is idempotent and keeps the record
    /// closest to the supremum, regardless of delta order.
    #[test]
    fn prop_solution_set_merge_order_independent(
        deltas in proptest::collection::vec((0i64..20, 0i64..100), 1..60)
    ) {
        let comparator: RecordComparator =
            Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1)));
        let mut forward = SolutionSet::new(vec![0], 3).with_comparator(Arc::clone(&comparator));
        let mut reverse = SolutionSet::new(vec![0], 5).with_comparator(comparator);
        for &(k, v) in &deltas {
            forward.merge(Record::pair(k, v));
        }
        for &(k, v) in deltas.iter().rev() {
            reverse.merge(Record::pair(k, v));
        }
        let mut a = forward.records();
        let mut b = reverse.records();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // And the surviving value per key is the minimum (closest to the
        // supremum under this comparator).
        for &(k, _) in &deltas {
            let min = deltas.iter().filter(|(k2, _)| *k2 == k).map(|&(_, v)| v).min().unwrap();
            prop_assert_eq!(forward.lookup(&Key::long(k)).unwrap().long(1), min);
        }
    }

    /// Partitioned execution of a keyed aggregation produces the same result
    /// as a single-partition run, for any parallelism.
    #[test]
    fn prop_partitioned_aggregation_matches_serial(
        values in proptest::collection::vec((0i64..15, -100i64..100), 0..200),
        parallelism in 1usize..9
    ) {
        let records: Vec<Record> = values.iter().map(|&(k, v)| Record::pair(k, v)).collect();
        let mut plan = Plan::new();
        let src = plan.source("values", records);
        let sum = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(|key: &[Value], group: &[Record], out: &mut Collector| {
                let total: i64 = group.iter().map(|r| r.long(1)).sum();
                out.collect(Record::pair(key[0].as_long(), total));
            })),
        );
        plan.sink("sums", sum);
        let exec = Executor::new();
        let parallel = exec
            .execute(&default_physical_plan(&plan, parallelism).unwrap())
            .unwrap()
            .sink("sums")
            .unwrap();
        let serial = exec
            .execute(&default_physical_plan(&plan, 1).unwrap())
            .unwrap()
            .sink("sums")
            .unwrap();
        let mut a = parallel;
        let mut b = serial;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// A hash-partitioned join sees every matching pair exactly once
    /// (equivalence with a nested-loop oracle).
    #[test]
    fn prop_partitioned_join_is_complete(
        left in proptest::collection::vec((0i64..10, 0i64..50), 0..60),
        right in proptest::collection::vec((0i64..10, 0i64..50), 0..60),
        parallelism in 1usize..6
    ) {
        let mut expected: Vec<(i64, i64)> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    expected.push((lv, rv));
                }
            }
        }
        expected.sort_unstable();

        let mut plan = Plan::new();
        let l = plan.source("left", left.iter().map(|&(k, v)| Record::pair(k, v)).collect());
        let r = plan.source("right", right.iter().map(|&(k, v)| Record::pair(k, v)).collect());
        let join = plan.match_join(
            "join",
            l,
            r,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(|a: &Record, b: &Record, out: &mut Collector| {
                out.collect(Record::pair(a.long(1), b.long(1)));
            })),
        );
        plan.sink("pairs", join);
        let result = Executor::new()
            .execute(&default_physical_plan(&plan, parallelism).unwrap())
            .unwrap()
            .sink("pairs")
            .unwrap();
        let mut actual: Vec<(i64, i64)> =
            result.iter().map(|r| (r.long(0), r.long(1))).collect();
        actual.sort_unstable();
        prop_assert_eq!(actual, expected);
    }
}
