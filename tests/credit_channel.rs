//! Property tests for the bounded credit channel (`dataflow::credit`).
//!
//! Random producer/consumer interleavings over the tight credit counts the
//! backpressure smoke jobs run with, pinning the channel's contract:
//!
//! * **exact multiset delivery** — every record sent arrives exactly once;
//! * **per-source FIFO** — one sender's records arrive in send order
//!   (cross-sender order is unspecified);
//! * **bounded buffering** — the receiver's high-water mark never exceeds
//!   the per-edge credit pool;
//! * **no deadlock** — every wait in the channel is deadline-bounded (the
//!   [`WATCHDOG`] duration), so a genuine deadlock fails the test as a typed
//!   timeout instead of hanging the suite;
//! * **credit release on consumer death** — a consumer that panics
//!   mid-stream releases its queue, and blocked senders observe a typed
//!   disconnect rather than wedging on credits nobody will ever return.
//!
//! Like `tests/properties.rs`, the cases come from a deterministic
//! [`SmallRng`] stream; failing assertions name the seed.

use dataflow::credit::{credit_channel, SendError, TryRecvError};
use graphdata::SmallRng;
use std::time::Duration;

/// Upper bound on any single wait inside a case.  Reaching it means the
/// channel deadlocked (or the machine stalled absurdly); either way the
/// typed timeout fails the test immediately instead of hanging CI.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Random cases per credit count.
const CASES: u64 = 8;

#[test]
fn prop_random_interleavings_deliver_the_exact_multiset_in_fifo_order() {
    for &credits in &[1usize, 2, 8] {
        for seed in 0..CASES {
            let mut rng = SmallRng::seed_from_u64(7_000 + seed * 31 + credits as u64);
            let producers = 1 + rng.gen_index(3);
            let counts: Vec<usize> = (0..producers).map(|_| 1 + rng.gen_index(120)).collect();
            let total: usize = counts.iter().sum();
            let label = format!("credits {credits}, seed {seed}");

            let (tx, rx) = credit_channel::<(usize, u64)>(credits, WATCHDOG);
            let mut received: Vec<Vec<u64>> = vec![Vec::new(); producers];
            std::thread::scope(|scope| {
                for (src, &count) in counts.iter().enumerate() {
                    // Each clone gets its own full credit pool (a fresh
                    // sender→receiver edge), like one worker's outgoing edge.
                    let tx = tx.clone();
                    let mut prng = SmallRng::seed_from_u64(seed * 1_000 + src as u64);
                    let label = &label;
                    scope.spawn(move || {
                        for seq in 0..count as u64 {
                            if prng.gen_index(8) == 0 {
                                std::thread::yield_now();
                            }
                            if let Err(e) = tx.send((src, seq)) {
                                panic!("send failed: {e} ({label}, producer {src})");
                            }
                        }
                    });
                }
                drop(tx);

                // The consumer mixes polling and blocking receives, with
                // occasional naps so producers actually exhaust their
                // credits and block — the interleavings under test.
                let mut got = 0usize;
                while got < total {
                    if rng.gen_index(3) == 0 {
                        match rx.try_recv() {
                            Ok((src, seq)) => {
                                received[src].push(seq);
                                got += 1;
                            }
                            Err(TryRecvError::Empty) => std::thread::yield_now(),
                            Err(TryRecvError::Disconnected) => {
                                panic!("producers exited early ({label}: {got}/{total})")
                            }
                        }
                    } else {
                        match rx.recv_timeout(WATCHDOG) {
                            Ok((src, seq)) => {
                                received[src].push(seq);
                                got += 1;
                            }
                            Err(e) => panic!("recv failed: {e:?} ({label}: {got}/{total})"),
                        }
                    }
                    if rng.gen_index(24) == 0 {
                        std::thread::sleep(Duration::from_micros(rng.gen_index(200) as u64));
                    }
                }
            });

            // Per-source FIFO *and* the exact multiset: each source's
            // records arrived as exactly 0..count, in order.
            for (src, &count) in counts.iter().enumerate() {
                let expected: Vec<u64> = (0..count as u64).collect();
                assert_eq!(
                    received[src], expected,
                    "source {src} lost, duplicated or reordered records ({label})"
                );
            }
            assert!(
                rx.high_water() <= credits,
                "edge held {} records, credits {credits} ({label})",
                rx.high_water()
            );
            assert!(rx.high_water() >= 1, "nothing was ever queued ({label})");
        }
    }
}

#[test]
fn consumer_panic_releases_blocked_senders_with_a_typed_disconnect() {
    for &credits in &[1usize, 2] {
        let (tx, rx) = credit_channel::<u64>(credits, WATCHDOG);
        let consumer = std::thread::spawn(move || {
            // Consume one record — its credit returns at dequeue time, so
            // the panic below cannot leak it — then die mid-stream.
            let first = rx.recv_timeout(WATCHDOG).expect("first record arrives");
            assert_eq!(first, 0, "per-source FIFO: the first send arrives first");
            panic!("consumer dies mid-stream");
        });
        // Keep sending until the consumer's death surfaces.  A blocked
        // sender must be woken by the receiver teardown; a Timeout here
        // would mean the panic wedged the channel.
        let mut sent = 0u64;
        loop {
            match tx.send(sent) {
                Ok(()) => sent += 1,
                Err(SendError::Disconnected(_)) => break,
                Err(SendError::Timeout(_)) => {
                    panic!("sender wedged after consumer panic (credits {credits})")
                }
            }
        }
        assert!(
            consumer.join().is_err(),
            "the consumer thread must have panicked"
        );
        assert!(sent >= 1, "at least the consumed record was sent");
    }
}
