//! Cross-crate integration tests: all engines and all iteration variants must
//! agree on the algorithm results, across graph shapes and parallelism
//! degrees.  This is the repository-level statement of the paper's claim that
//! incremental iterations, microsteps, asynchronous execution and the Pregel
//! model all compute the same fixpoints — only their cost differs.

use algorithms::{
    cc_async, cc_bulk, cc_incremental, cc_microstep, oracles, pagerank, sssp, ComponentsConfig,
    PageRankConfig, PageRankPlan,
};
use baselines::{
    cc_pregel, cc_spark_bulk, pagerank_pregel, pagerank_spark, PregelConfig, SparkContext,
};
use graphdata::{chain, erdos_renyi, figure1_graph, rmat, star, DatasetProfile, Graph, RmatParams};
use spinning_core::ExecutionMode;

fn test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("figure1", figure1_graph()),
        ("chain", chain(120)),
        ("star", star(200)),
        (
            "power-law",
            rmat(500, 3000, RmatParams::default(), 42).symmetrize(),
        ),
        (
            "social",
            rmat(300, 4000, RmatParams::social(), 7).symmetrize(),
        ),
        ("uniform", erdos_renyi(400, 4.0, 3).symmetrize()),
        ("foaf-profile", DatasetProfile::foaf().generate(16_384)),
    ]
}

#[test]
fn connected_components_all_engines_agree() {
    for (name, graph) in test_graphs() {
        let oracle: Vec<i64> = graph
            .components_oracle()
            .into_iter()
            .map(i64::from)
            .collect();
        let config = ComponentsConfig::new(4);
        assert_eq!(
            cc_bulk(&graph, &config).unwrap().components,
            oracle,
            "bulk on {name}"
        );
        assert_eq!(
            cc_incremental(&graph, &config).unwrap().components,
            oracle,
            "incremental on {name}"
        );
        assert_eq!(
            cc_microstep(&graph, &config).unwrap().components,
            oracle,
            "microstep on {name}"
        );
        assert_eq!(
            cc_async(&graph, &config).unwrap().components,
            oracle,
            "async on {name}"
        );
        let pregel = cc_pregel(&graph, &PregelConfig::new(4));
        assert_eq!(
            pregel
                .states
                .iter()
                .map(|&c| i64::from(c))
                .collect::<Vec<_>>(),
            oracle,
            "pregel on {name}"
        );
        let (spark, _) = cc_spark_bulk(&graph, &SparkContext::new(4));
        assert_eq!(
            spark.iter().map(|&c| i64::from(c)).collect::<Vec<_>>(),
            oracle,
            "spark on {name}"
        );
    }
}

#[test]
fn connected_components_result_is_independent_of_parallelism() {
    let graph = rmat(600, 3600, RmatParams::default(), 99).symmetrize();
    let oracle: Vec<i64> = graph
        .components_oracle()
        .into_iter()
        .map(i64::from)
        .collect();
    for parallelism in [1, 2, 3, 8, 16] {
        let config = ComponentsConfig::new(parallelism);
        assert_eq!(cc_incremental(&graph, &config).unwrap().components, oracle);
        assert_eq!(cc_async(&graph, &config).unwrap().components, oracle);
    }
}

#[test]
fn pagerank_all_engines_agree() {
    let graph = rmat(250, 2000, RmatParams::default(), 17).symmetrize();
    let iterations = 8;
    let oracle = oracles::pagerank(&graph, iterations, 0.85);

    let dataflow = pagerank(
        &graph,
        &PageRankConfig::new(4)
            .with_iterations(iterations)
            .with_plan(PageRankPlan::Optimized),
    )
    .unwrap();
    let spark = pagerank_spark(&graph, iterations, &SparkContext::new(4));
    let pregel = pagerank_pregel(&graph, iterations, 0.85, &PregelConfig::new(4));

    for v in 0..graph.num_vertices() {
        assert!(
            (dataflow.ranks[v] - oracle[v]).abs() < 1e-9,
            "dataflow rank of {v}"
        );
        assert!((spark[v] - oracle[v]).abs() < 1e-9, "spark rank of {v}");
        assert!(
            (pregel.states[v] - oracle[v]).abs() < 1e-9,
            "pregel rank of {v}"
        );
    }
}

#[test]
fn sssp_modes_agree_with_the_bfs_oracle() {
    let graph = DatasetProfile::foaf().generate(32_768);
    let oracle = oracles::sssp(&graph, 1);
    for mode in [
        ExecutionMode::BatchIncremental,
        ExecutionMode::Microstep,
        ExecutionMode::AsynchronousMicrostep,
    ] {
        assert_eq!(sssp(&graph, 1, 4, mode).unwrap().distances, oracle);
    }
}

/// All three workset execution modes must agree with the bulk iteration as
/// the oracle, across parallelism degrees — the "no behavioral change"
/// statement for the record-routing hot path (inline keys, Fx hashing,
/// move-based exchanges) shared by every mode.
#[test]
fn workset_modes_agree_with_bulk_oracle() {
    let graphs = [
        (
            "power-law",
            rmat(400, 2400, RmatParams::default(), 23).symmetrize(),
        ),
        ("chain", chain(150)),
    ];
    for (name, graph) in graphs {
        for parallelism in [1, 3, 8] {
            let config = ComponentsConfig::new(parallelism);
            let bulk_oracle = cc_bulk(&graph, &config).unwrap().components;
            assert_eq!(
                cc_incremental(&graph, &config).unwrap().components,
                bulk_oracle,
                "batch-incremental vs bulk on {name} at parallelism {parallelism}"
            );
            assert_eq!(
                cc_microstep(&graph, &config).unwrap().components,
                bulk_oracle,
                "microstep vs bulk on {name} at parallelism {parallelism}"
            );
            assert_eq!(
                cc_async(&graph, &config).unwrap().components,
                bulk_oracle,
                "async vs bulk on {name} at parallelism {parallelism}"
            );
        }
    }
}

#[test]
fn incremental_cc_does_asymptotically_less_work_than_bulk() {
    // The quantitative heart of the paper: summed over the run, the bulk
    // variant inspects |V| elements per iteration while the incremental
    // variant's inspections collapse with the shrinking working set.
    let graph = DatasetProfile::wikipedia().generate(16_384);
    let config = ComponentsConfig::new(4);
    let bulk = cc_bulk(&graph, &config).unwrap();
    let incremental = cc_incremental(&graph, &config).unwrap();

    let bulk_inspected: usize = bulk
        .stats
        .per_iteration
        .iter()
        .map(|s| s.elements_inspected)
        .sum();
    let incr_inspected: usize = incremental
        .stats
        .per_iteration
        .iter()
        .map(|s| s.elements_inspected)
        .sum();
    assert!(
        incr_inspected < bulk_inspected,
        "incremental inspected {incr_inspected}, bulk inspected {bulk_inspected}"
    );

    // Later iterations of the incremental variant touch only a small fraction
    // of the solution (the paper's "hot" vs "cold" portions).
    let last = incremental.stats.per_iteration.last().unwrap();
    assert!(last.elements_inspected * 10 < graph.num_vertices());
}
