//! Pooled-execution equivalence: migrating every per-operator and
//! per-superstep `std::thread::scope` spawn onto the persistent worker pool
//! must not change any result.  These tests pin the pooled runtimes of
//! CC/SSSP/PageRank — in every `ExecutionMode` and across parallelism
//! degrees (including more partitions than pool workers) — to the sequential
//! oracles, which are exactly the results the pre-pool scoped-thread
//! execution produced.

use algorithms::{
    adaptive_pagerank, cc_async, cc_bulk, cc_incremental, cc_microstep, oracles, pagerank, sssp,
    AdaptiveConfig, ComponentsConfig, PageRankConfig, PageRankPlan,
};
use graphdata::{chain, rmat, star, Graph, RmatParams};
use spinning_core::ExecutionMode;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("chain", chain(150)),
        ("star", star(200)),
        (
            "power-law",
            rmat(400, 2000, RmatParams::default(), 11).symmetrize(),
        ),
    ]
}

#[test]
fn pooled_cc_matches_oracle_in_every_mode_and_parallelism() {
    for (name, graph) in graphs() {
        let oracle: Vec<i64> = graph
            .components_oracle()
            .into_iter()
            .map(i64::from)
            .collect();
        // 8 and 16 partitions exceed the pool's worker count on small
        // machines — tasks must queue and still produce identical results.
        for parallelism in [1, 3, 8, 16] {
            let config = ComponentsConfig::new(parallelism);
            for (mode, run) in [
                ("bulk", cc_bulk as fn(&Graph, &ComponentsConfig) -> _),
                ("incremental", cc_incremental),
                ("microstep", cc_microstep),
                ("async", cc_async),
            ] {
                let result = run(&graph, &config).unwrap();
                assert_eq!(
                    result.components, oracle,
                    "{mode} CC on {name} at parallelism {parallelism}"
                );
                assert!(result.converged, "{mode} CC on {name} must converge");
            }
        }
    }
}

#[test]
fn pooled_sssp_matches_oracle_in_every_mode() {
    let graph = rmat(300, 1500, RmatParams::default(), 31).symmetrize();
    let oracle = oracles::sssp(&graph, 5);
    for parallelism in [1, 3, 8] {
        for mode in [
            ExecutionMode::BatchIncremental,
            ExecutionMode::Microstep,
            ExecutionMode::AsynchronousMicrostep,
        ] {
            let result = sssp(&graph, 5, parallelism, mode).unwrap();
            assert_eq!(
                result.distances, oracle,
                "SSSP {mode:?} at parallelism {parallelism}"
            );
            assert!(result.converged);
        }
    }
}

#[test]
fn pooled_pagerank_matches_oracle_for_all_plans() {
    let graph = rmat(250, 1800, RmatParams::default(), 17).symmetrize();
    let iterations = 8;
    let oracle = oracles::pagerank(&graph, iterations, 0.85);
    for parallelism in [1, 4, 8] {
        for plan in [
            PageRankPlan::Optimized,
            PageRankPlan::ForceBroadcast,
            PageRankPlan::ForcePartition,
        ] {
            let result = pagerank(
                &graph,
                &PageRankConfig::new(parallelism)
                    .with_iterations(iterations)
                    .with_plan(plan),
            )
            .unwrap();
            assert!(result.converged);
            for (v, &expected) in oracle.iter().enumerate() {
                assert!(
                    (result.ranks[v] - expected).abs() < 1e-9,
                    "{plan:?} at parallelism {parallelism}: rank of {v}"
                );
            }
        }
    }
}

#[test]
fn pooled_adaptive_pagerank_converges_in_both_superstep_modes() {
    // Adaptive PageRank is an approximation, and the batch and microstep
    // update semantics legitimately truncate different residuals (a batch of
    // tiny candidates can clear the tolerance together; one at a time they
    // are dropped individually).  Pooling equivalence is therefore checked
    // *within* each mode across parallelism degrees: a pooling bug (lost or
    // duplicated workset records) would change the pushed rank mass or the
    // ranking, while float summation order only moves results by ulps.
    // The loose tolerance keeps the record-at-a-time microstep run cheap —
    // residual pushing at tight tolerances generates millions of records,
    // which is a benchmark's job, not a correctness test's.
    let graph = rmat(200, 1200, RmatParams::default(), 7).symmetrize();
    let tolerance = 1e-6;
    let top10 = |ranks: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ranks.len()).collect();
        idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
        idx.truncate(10);
        idx
    };
    for mode in [ExecutionMode::BatchIncremental, ExecutionMode::Microstep] {
        let reference = adaptive_pagerank(
            &graph,
            &AdaptiveConfig::new(1)
                .with_mode(mode)
                .with_tolerance(tolerance),
        )
        .unwrap();
        assert!(reference.converged);
        let reference_mass: f64 = reference.ranks.iter().sum();
        let reference_top = top10(&reference.ranks);
        for parallelism in [2, 8] {
            let result = adaptive_pagerank(
                &graph,
                &AdaptiveConfig::new(parallelism)
                    .with_mode(mode)
                    .with_tolerance(tolerance),
            )
            .unwrap();
            assert!(result.converged);
            let mass: f64 = result.ranks.iter().sum();
            assert!(
                (mass - reference_mass).abs() < 1e-6,
                "{mode:?} at parallelism {parallelism}: rank mass {mass} vs {reference_mass}"
            );
            let overlap = top10(&result.ranks)
                .iter()
                .filter(|v| reference_top.contains(v))
                .count();
            assert!(
                overlap >= 8,
                "{mode:?} at parallelism {parallelism}: only {overlap} of the top-10 agree"
            );
        }
    }
}
