//! Localhost mini-cluster harness: three `spinning-worker` processes over
//! TCP must converge Connected Components and SSSP byte-identically —
//! superstep for superstep — to the same binary run single-process.
//!
//! Each scenario spawns the workers with a watchdog that kills the cluster
//! after a deadline, so a distributed deadlock fails the test as a timeout
//! instead of hanging CI.  After every run the scratch directory must hold
//! exactly the files the workers were asked to write — a leak check for
//! stray temporaries left behind by the transport or the spill layer.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const PROCESSES: usize = 3;
const PARALLELISM: usize = 6;
const WATCHDOG: Duration = Duration::from_secs(120);

fn worker_binary() -> &'static str {
    env!("CARGO_BIN_EXE_spinning-worker")
}

/// Bind-then-drop: the kernel hands out a coordinator port that stays free
/// long enough for the cluster to rendezvous on it.
fn free_coordinator_addr() -> String {
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe listener")
        .local_addr()
        .expect("probe address");
    addr.to_string()
}

/// A fresh scratch directory per scenario, removed by the caller after the
/// leak check.
fn scratch_dir(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "spinning-mini-cluster-{}-{label}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Waits for every child before `deadline`; on timeout kills the whole
/// cluster and panics — the distributed-deadlock detector.
fn wait_all(children: &mut [(usize, Child)], deadline: Instant) {
    let mut failures = Vec::new();
    for (index, child) in children.iter_mut() {
        loop {
            match child.try_wait().expect("poll worker") {
                Some(status) if status.success() => break,
                Some(status) => {
                    failures.push(format!("worker {index} exited with {status}"));
                    break;
                }
                None if Instant::now() >= deadline => {
                    for (_, child) in children.iter_mut() {
                        let _ = child.kill();
                    }
                    panic!("mini-cluster deadlock: worker still running at the watchdog deadline");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
    assert!(failures.is_empty(), "workers failed: {failures:?}");
}

/// Runs `algo` once single-process (the oracle) and once as a 3-process TCP
/// cluster in `dir`, then asserts the concatenated cluster solution and
/// every worker's trace are byte-identical to the oracle's.
fn assert_cluster_matches_oracle(dir: &Path, algo: &str, extra: &[&str]) {
    let graph = ["--vertices", "600", "--edges", "2400", "--seed", "17"];
    let oracle_out = dir.join("oracle.solution");
    let oracle_trace = dir.join("oracle.trace");
    let status = Command::new(worker_binary())
        .args(["--algo", algo, "--parallelism", &PARALLELISM.to_string()])
        .args(graph)
        .args(extra)
        .arg("--out")
        .arg(&oracle_out)
        .arg("--trace")
        .arg(&oracle_trace)
        .status()
        .expect("spawn oracle");
    assert!(status.success(), "oracle run failed: {status}");

    let coordinator = free_coordinator_addr();
    let mut children: Vec<(usize, Child)> = (0..PROCESSES)
        .map(|index| {
            let child = Command::new(worker_binary())
                .args(["--algo", algo, "--parallelism", &PARALLELISM.to_string()])
                .args(graph)
                .args(extra)
                .args(["--processes", &PROCESSES.to_string()])
                .args(["--index", &index.to_string()])
                .args(["--coordinator", &coordinator])
                .arg("--out")
                .arg(dir.join(format!("w{index}.solution")))
                .arg("--trace")
                .arg(dir.join(format!("w{index}.trace")))
                // Keep a genuine comm hang well inside the watchdog budget.
                .env("SPINNING_COMM_TIMEOUT_SECS", "60")
                .spawn()
                .expect("spawn worker");
            (index, child)
        })
        .collect();
    wait_all(&mut children, Instant::now() + WATCHDOG);

    // Concatenating the workers' owned solution blocks in index order must
    // reproduce the oracle's record stream byte for byte.
    let oracle_solution = std::fs::read(&oracle_out).expect("read oracle solution");
    let mut cluster_solution = Vec::new();
    for index in 0..PROCESSES {
        let part =
            std::fs::read(dir.join(format!("w{index}.solution"))).expect("read worker solution");
        cluster_solution.extend_from_slice(&part);
    }
    assert_eq!(
        oracle_solution, cluster_solution,
        "{algo}: cluster solution diverges from the single-process oracle"
    );

    // Every worker's superstep trace must equal the oracle's: the all_gather
    // makes per-superstep statistics globally agreed state.
    let expected_trace = std::fs::read(&oracle_trace).expect("read oracle trace");
    for index in 0..PROCESSES {
        let trace = std::fs::read(dir.join(format!("w{index}.trace"))).expect("read worker trace");
        assert_eq!(
            expected_trace, trace,
            "{algo}: worker {index} trace diverges superstep-for-superstep"
        );
    }
}

/// Asserts the scratch directory holds exactly the files the scenario asked
/// the workers to write — nothing leaked — then removes it.
fn assert_no_leaks_and_cleanup(dir: &Path) {
    let mut expected: Vec<String> = vec!["oracle.solution".into(), "oracle.trace".into()];
    for index in 0..PROCESSES {
        expected.push(format!("w{index}.solution"));
        expected.push(format!("w{index}.trace"));
    }
    expected.sort();
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("list scratch dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    found.sort();
    assert_eq!(
        expected, found,
        "workers leaked files into the scratch directory"
    );
    std::fs::remove_dir_all(dir).expect("remove scratch dir");
}

#[test]
fn three_process_cluster_matches_the_cc_oracle() {
    let dir = scratch_dir("cc");
    assert_cluster_matches_oracle(&dir, "cc", &[]);
    assert_no_leaks_and_cleanup(&dir);
}

#[test]
fn three_process_cluster_matches_the_sssp_oracle() {
    let dir = scratch_dir("sssp");
    assert_cluster_matches_oracle(&dir, "sssp", &["--source", "5"]);
    assert_no_leaks_and_cleanup(&dir);
}

#[test]
fn three_process_cluster_matches_the_oracle_in_microstep_and_range_modes() {
    let dir = scratch_dir("modes");
    assert_cluster_matches_oracle(&dir, "cc", &["--mode", "microstep"]);
    assert_no_leaks_and_cleanup(&dir);
    let dir = scratch_dir("range");
    assert_cluster_matches_oracle(&dir, "sssp", &["--source", "5", "--routing", "range"]);
    assert_no_leaks_and_cleanup(&dir);
}
