//! Range-routed execution equivalence: switching the workset driver's
//! superstep exchange (and the solution set + constant-input index behind
//! it) from hash routing to sampled-splitter range routing must not change
//! any result.  These tests pin range-routed CC and SSSP — in every
//! `ExecutionMode`, across parallelism degrees (including more partitions
//! than distinct splitters), on chain/star/power-law shapes — to the same
//! sequential oracles the hash-routed runs are pinned to in
//! `pool_equivalence.rs`.

use algorithms::{
    cc_async, cc_incremental, cc_microstep, oracles, sssp_with_routing, ComponentsConfig,
};
use graphdata::{chain, rmat, star, Graph, RmatParams};
use spinning_core::prelude::{ExecutionMode, WorksetRouting};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("chain", chain(150)),
        ("star", star(200)),
        (
            "power-law",
            rmat(400, 2000, RmatParams::default(), 23).symmetrize(),
        ),
    ]
}

#[test]
fn range_routed_cc_matches_oracle_in_every_mode_and_parallelism() {
    for (name, graph) in graphs() {
        let oracle: Vec<i64> = graph
            .components_oracle()
            .into_iter()
            .map(i64::from)
            .collect();
        // 16 partitions on a 150-vertex chain leaves some splitter intervals
        // nearly empty — the degenerate-histogram path must still be exact.
        for parallelism in [1, 3, 8, 16] {
            let config = ComponentsConfig::new(parallelism).with_range_routing();
            for (mode, run) in [
                (
                    "incremental",
                    cc_incremental as fn(&Graph, &ComponentsConfig) -> _,
                ),
                ("microstep", cc_microstep),
                ("async", cc_async),
            ] {
                let result = run(&graph, &config).unwrap();
                assert_eq!(
                    result.components, oracle,
                    "range-routed {mode} CC on {name} at parallelism {parallelism}"
                );
                assert!(
                    result.converged,
                    "range-routed {mode} CC on {name} must converge"
                );
            }
        }
    }
}

#[test]
fn range_routed_cc_matches_hash_routed_cc_superstep_for_superstep() {
    // Same fixpoint *and* the same superstep count: range routing changes
    // where records live, not when candidates become visible.
    let graph = rmat(300, 1500, RmatParams::default(), 41).symmetrize();
    for parallelism in [2, 8] {
        let hash = cc_incremental(&graph, &ComponentsConfig::new(parallelism)).unwrap();
        let range = cc_incremental(
            &graph,
            &ComponentsConfig::new(parallelism).with_range_routing(),
        )
        .unwrap();
        assert_eq!(hash.components, range.components);
        assert_eq!(
            hash.iterations, range.iterations,
            "superstep structure must be routing-independent at parallelism {parallelism}"
        );
    }
}

#[test]
fn range_routed_sssp_matches_oracle_in_every_mode() {
    let graph = rmat(300, 1500, RmatParams::default(), 31).symmetrize();
    let oracle = oracles::sssp(&graph, 5);
    for parallelism in [1, 3, 8] {
        for mode in [
            ExecutionMode::BatchIncremental,
            ExecutionMode::Microstep,
            ExecutionMode::AsynchronousMicrostep,
        ] {
            let result =
                sssp_with_routing(&graph, 5, parallelism, mode, WorksetRouting::Range).unwrap();
            assert_eq!(
                result.distances, oracle,
                "range-routed SSSP {mode:?} at parallelism {parallelism}"
            );
            assert!(result.converged);
        }
    }
}
