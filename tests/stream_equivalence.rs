//! Streaming-execution equivalence: the chained (streaming) executor must be
//! byte-identical to the materializing oracle on every algorithm, execution
//! mode, routing scheme and memory budget — and must actually honour the
//! configured per-edge credit bound while doing so.  This is the
//! repository-level statement that chain fusion is a pure cost optimization:
//! it changes *where* records wait, never *which* records arrive or in what
//! order.

use algorithms::{
    cc_async, cc_bulk, cc_incremental, cc_microstep, oracles, pagerank, sssp_with_config,
    ComponentsConfig, PageRankConfig, PageRankPlan,
};
use dataflow::prelude::*;
use graphdata::{chain, rmat, DatasetProfile, Graph, RmatParams};
use spinning_core::prelude::*;
use std::sync::Arc;

fn test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("chain", chain(150)),
        (
            "power-law",
            rmat(500, 3000, RmatParams::default(), 42).symmetrize(),
        ),
        ("foaf-profile", DatasetProfile::foaf().generate(8_192)),
    ]
}

/// The budgets every combination runs under: unbounded, and a finite budget
/// that forces exchanges to spill.  The CI `stream-smoke` job overrides the
/// finite one through `SPINNING_MEMORY_BUDGET` (like the spill smoke does).
fn budgets() -> Vec<(&'static str, MemoryBudget)> {
    let tight = MemoryBudget::from_env().unwrap_or(MemoryBudget::bytes(1024));
    vec![("unlimited", MemoryBudget::unlimited()), ("tight", tight)]
}

/// The chained bulk executor must reproduce the materializing oracle
/// byte-for-byte: identical components, identical iteration count, and an
/// identical per-superstep trace (the streaming path may not change how many
/// records exist or move, only how long they are buffered).
#[test]
fn bulk_cc_chained_matches_the_materializing_oracle() {
    for (graph_name, graph) in test_graphs() {
        for (budget_name, budget) in budgets() {
            let base = ComponentsConfig::new(4).with_memory_budget(budget);
            let chained = cc_bulk(&graph, &base).unwrap();
            let oracle = cc_bulk(&graph, &base.clone().with_force_materialized(true)).unwrap();

            let label = format!("{graph_name}/{budget_name}");
            assert_eq!(chained.components, oracle.components, "components {label}");
            assert_eq!(chained.iterations, oracle.iterations, "iterations {label}");
            assert_eq!(
                trace(&chained.stats),
                trace(&oracle.stats),
                "superstep trace {label}"
            );

            // The comparison only means something if the streaming path ran.
            let execution = chained.stats.per_iteration[0]
                .execution
                .as_ref()
                .expect("bulk iterations record execution stats");
            assert!(
                execution.chained_operators >= 2,
                "no chain fused on {label}: {execution:?}"
            );
            let oracle_execution = oracle.stats.per_iteration[0].execution.as_ref().unwrap();
            assert_eq!(
                oracle_execution.chained_operators, 0,
                "the oracle must not chain"
            );
        }
    }
}

/// The per-superstep fields the chained executor must reproduce exactly.
fn trace(stats: &IterationRunStats) -> Vec<(usize, usize, usize, usize, usize)> {
    stats
        .per_iteration
        .iter()
        .map(|s| {
            (
                s.workset_size,
                s.elements_inspected,
                s.elements_changed,
                s.messages_sent,
                s.messages_shipped,
            )
        })
        .collect()
}

/// PageRank across all three Figure 4 plans: the chained run's ranks must be
/// bit-identical to the materializing oracle's — floating-point summation
/// order is part of the byte-identity contract.
#[test]
fn pagerank_all_plans_chained_matches_materialized_bitwise() {
    let graph = rmat(250, 2000, RmatParams::default(), 17).symmetrize();
    for plan in [
        PageRankPlan::Optimized,
        PageRankPlan::ForceBroadcast,
        PageRankPlan::ForcePartition,
    ] {
        let base = PageRankConfig::new(4).with_iterations(8).with_plan(plan);
        let chained = pagerank(&graph, &base.clone()).unwrap();
        let oracle = pagerank(&graph, &base.with_force_materialized(true)).unwrap();
        assert_eq!(chained.ranks, oracle.ranks, "ranks differ under {plan:?}");
    }
}

/// The workset modes do not run the chained executor, but they share sinks
/// and fixpoints with the bulk variant that does: every mode × routing ×
/// budget combination must still agree with the (now chained) bulk oracle.
#[test]
fn workset_modes_and_routings_agree_with_the_chained_bulk_oracle() {
    let graph = rmat(400, 2400, RmatParams::default(), 23).symmetrize();
    let bulk_oracle = cc_bulk(&graph, &ComponentsConfig::new(4))
        .unwrap()
        .components;
    for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
        for (budget_name, budget) in budgets() {
            let config = ComponentsConfig::new(4)
                .with_routing(routing)
                .with_memory_budget(budget);
            type CcRun = fn(&Graph, &ComponentsConfig) -> Result<algorithms::ComponentsResult>;
            for (mode_name, run) in [
                ("incremental", cc_incremental as CcRun),
                ("microstep", cc_microstep as CcRun),
                ("async", cc_async as CcRun),
            ] {
                let result = run(&graph, &config).unwrap();
                assert_eq!(
                    result.components, bulk_oracle,
                    "{mode_name} with {routing:?} routing under the {budget_name} budget"
                );
            }
        }
    }
}

/// SSSP across modes × routings × budgets against the BFS oracle — the guard
/// that the streaming work left the workset runtimes untouched.
#[test]
fn sssp_modes_and_routings_match_the_bfs_oracle_under_budgets() {
    let graph = DatasetProfile::foaf().generate(8_192);
    let oracle = oracles::sssp(&graph, 1);
    for mode in [
        ExecutionMode::BatchIncremental,
        ExecutionMode::Microstep,
        ExecutionMode::AsynchronousMicrostep,
    ] {
        for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
            for (budget_name, budget) in budgets() {
                let config = WorksetConfig::new(4)
                    .with_mode(mode)
                    .with_routing(routing)
                    .with_memory_budget(budget);
                let result = sssp_with_config(&graph, 1, &config).unwrap();
                assert_eq!(
                    result.distances, oracle,
                    "{mode:?} with {routing:?} routing under the {budget_name} budget"
                );
            }
        }
    }
}

/// An expansion-heavy map→map→sink pipeline: tens of pages flow across each
/// fused edge, yet with 2 credits per edge at most 2 are ever in flight —
/// the `credits × page size` memory bound the chain executor promises — and
/// the sink still matches the materializing oracle byte for byte.
#[test]
fn chained_pipeline_stays_within_the_configured_credit_bound() {
    let build_plan = || {
        let mut plan = Plan::new();
        let events: Vec<Record> = (0..6_000).map(|i| Record::pair(i, i % 97)).collect();
        let source = plan.source("events", events);
        let expand = plan.map(
            "expand",
            source,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                for copy in 0..16 {
                    out.collect(Record::pair(r.long(0) * 16 + copy, r.long(1)));
                }
            })),
        );
        let shift = plan.map(
            "shift",
            expand,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                if r.long(1) != 0 {
                    out.collect(Record::pair(r.long(0), r.long(1) + 1));
                }
            })),
        );
        plan.sink("out", shift);
        default_physical_plan(&plan, 4).unwrap()
    };

    let chained = Executor::with_config(ExecConfig::new().with_channel_credits(2))
        .execute(&build_plan())
        .unwrap();
    let materialized = Executor::with_config(ExecConfig::new().with_force_materialized(true))
        .execute(&build_plan())
        .unwrap();

    assert_eq!(
        chained.stats.chained_operators, 3,
        "expand→shift→sink must fuse into one chain: {:?}",
        chained.stats
    );
    assert!(
        chained.stats.peak_chain_pages >= 1,
        "the bound is only demonstrated if pages actually flowed"
    );
    assert!(
        chained.stats.peak_chain_pages <= 2,
        "peak {} pages in flight exceeds the 2-credit bound",
        chained.stats.peak_chain_pages
    );
    assert_eq!(materialized.stats.chained_operators, 0);

    let streamed = chained.into_sink("out").unwrap();
    let oracle = materialized.into_sink("out").unwrap();
    assert!(
        streamed.len() > 90_000,
        "the expansion must actually expand"
    );
    assert_eq!(streamed, oracle, "sink contents must be byte-identical");
}

/// The credit bound also holds end-to-end through the bulk iteration driver,
/// which is how user programs reach the chained executor.
#[test]
fn bulk_cc_with_two_credits_bounds_every_chain_edge() {
    let graph = DatasetProfile::foaf().generate(8_192);
    let config = ComponentsConfig::new(4).with_channel_credits(2);
    let result = cc_bulk(&graph, &config).unwrap();
    let oracle = cc_bulk(
        &graph,
        &ComponentsConfig::new(4).with_force_materialized(true),
    )
    .unwrap();
    assert_eq!(result.components, oracle.components);
    for (i, step) in result.stats.per_iteration.iter().enumerate() {
        let execution = step.execution.as_ref().expect("bulk records execution");
        assert!(
            execution.peak_chain_pages <= 2,
            "iteration {i} held {} pages on a chained edge",
            execution.peak_chain_pages
        );
    }
}
