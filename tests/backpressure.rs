//! Backpressure smoke: tight credit pools must bound buffering without
//! changing any result.
//!
//! Three scenarios run Connected Components with `channel_credits = 2` — an
//! expansion-heavy power-law graph where every high-degree vertex fans its
//! label out to thousands of neighbours, so unbounded channels would buffer
//! far more than two records per edge:
//!
//! * the asynchronous microstep engine in-process, where senders block on
//!   the per-edge credit pool;
//! * the superstep engine in-process, where each outbox writer flushes its
//!   sealed pages to a spill run once it holds `credits` of them;
//! * a 3-process TCP cluster (batch mode) with `SPINNING_CHANNEL_CREDITS=2`
//!   in the workers' *and* the oracle's environment, pinning that the
//!   credit knob leaves solutions and superstep traces byte-identical.
//!
//! Every scenario also checks the queue high-water statistic the engines
//! report stays at or under the credit bound — the paper's bounded-memory
//! claim, observable end to end.

use algorithms::{cc_async, cc_incremental, ComponentsConfig};
use graphdata::{rmat, RmatParams};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

const CREDITS: usize = 2;
const PARALLELISM: usize = 6;
const PROCESSES: usize = 3;
const WATCHDOG: Duration = Duration::from_secs(120);

fn oracle_components(graph: &graphdata::Graph) -> Vec<i64> {
    graph
        .components_oracle()
        .into_iter()
        .map(i64::from)
        .collect()
}

#[test]
fn tight_credits_bound_async_queues_without_changing_the_fixpoint() {
    let graph = rmat(600, 2400, RmatParams::default(), 17).symmetrize();
    let config = ComponentsConfig::new(PARALLELISM).with_channel_credits(CREDITS);
    let result = cc_async(&graph, &config).expect("async CC under tight credits");
    assert!(result.converged, "async CC must reach the fixpoint");
    assert_eq!(
        result.components,
        oracle_components(&graph),
        "credits changed the async fixpoint"
    );
    let high_water = result.stats.max_queue_high_water();
    assert!(
        high_water <= CREDITS,
        "an edge queued {high_water} records against {CREDITS} credits"
    );
    assert!(
        high_water >= 1,
        "an expansion-heavy run must enqueue something"
    );
}

#[test]
fn tight_credits_bound_superstep_outboxes_without_changing_the_fixpoint() {
    let graph = rmat(600, 2400, RmatParams::default(), 17).symmetrize();
    let expected = oracle_components(&graph);
    let unbounded = cc_incremental(&graph, &ComponentsConfig::new(PARALLELISM))
        .expect("incremental CC, unbounded");
    let bounded = cc_incremental(
        &graph,
        &ComponentsConfig::new(PARALLELISM).with_channel_credits(CREDITS),
    )
    .expect("incremental CC under tight credits");
    assert_eq!(bounded.components, expected, "credits changed the fixpoint");
    assert_eq!(
        bounded.iterations, unbounded.iterations,
        "credits changed the superstep count"
    );
    let high_water = bounded.stats.max_queue_high_water();
    assert!(
        high_water <= CREDITS,
        "an outbox held {high_water} sealed pages against {CREDITS} page credits"
    );
}

// --- 3-process cluster half (same harness idiom as tests/mini_cluster.rs) ---

fn worker_binary() -> &'static str {
    env!("CARGO_BIN_EXE_spinning-worker")
}

/// Bind-then-drop: the kernel hands out a coordinator port that stays free
/// long enough for the cluster to rendezvous on it.
fn free_coordinator_addr() -> String {
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe listener")
        .local_addr()
        .expect("probe address");
    addr.to_string()
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spinning-backpressure-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Waits for every child before `deadline`; on timeout kills the whole
/// cluster and panics — with two credits per edge a flow-control bug shows
/// up here as a distributed deadlock.
fn wait_all(children: &mut [(usize, Child)], deadline: Instant) {
    let mut failures = Vec::new();
    for (index, child) in children.iter_mut() {
        loop {
            match child.try_wait().expect("poll worker") {
                Some(status) if status.success() => break,
                Some(status) => {
                    failures.push(format!("worker {index} exited with {status}"));
                    break;
                }
                None if Instant::now() >= deadline => {
                    for (_, child) in children.iter_mut() {
                        let _ = child.kill();
                    }
                    panic!("backpressure deadlock: worker still running at the watchdog deadline");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
    assert!(failures.is_empty(), "workers failed: {failures:?}");
}

/// Every `queue_hw=` value in a trace must respect the credit bound.
fn assert_trace_respects_credits(trace: &Path) {
    let text = std::fs::read_to_string(trace).expect("read trace");
    let mut seen = 0usize;
    for line in text.lines() {
        let Some(raw) = line.split("queue_hw=").nth(1) else {
            continue;
        };
        let high_water: usize = raw
            .split_whitespace()
            .next()
            .expect("queue_hw value")
            .parse()
            .expect("queue_hw parses");
        assert!(
            high_water <= CREDITS,
            "{}: queue_hw={high_water} exceeds {CREDITS} credits in '{line}'",
            trace.display()
        );
        seen += 1;
    }
    assert!(seen > 0, "{}: no queue_hw entries", trace.display());
}

#[test]
fn three_process_cluster_with_tight_credits_matches_the_oracle() {
    let dir = scratch_dir();
    let graph = ["--vertices", "600", "--edges", "2400", "--seed", "17"];

    // The oracle gets the same credit environment as the cluster: the queue
    // high-water is part of the trace, and the trace must stay byte-equal.
    let oracle_out = dir.join("oracle.solution");
    let oracle_trace = dir.join("oracle.trace");
    let status = Command::new(worker_binary())
        .args(["--algo", "cc", "--parallelism", &PARALLELISM.to_string()])
        .args(graph)
        .arg("--out")
        .arg(&oracle_out)
        .arg("--trace")
        .arg(&oracle_trace)
        .env("SPINNING_CHANNEL_CREDITS", CREDITS.to_string())
        .status()
        .expect("spawn oracle");
    assert!(status.success(), "oracle run failed: {status}");

    let coordinator = free_coordinator_addr();
    let mut children: Vec<(usize, Child)> = (0..PROCESSES)
        .map(|index| {
            let child = Command::new(worker_binary())
                .args(["--algo", "cc", "--parallelism", &PARALLELISM.to_string()])
                .args(graph)
                .args(["--processes", &PROCESSES.to_string()])
                .args(["--index", &index.to_string()])
                .args(["--coordinator", &coordinator])
                .arg("--out")
                .arg(dir.join(format!("w{index}.solution")))
                .arg("--trace")
                .arg(dir.join(format!("w{index}.trace")))
                .env("SPINNING_CHANNEL_CREDITS", CREDITS.to_string())
                // Keep a genuine comm hang well inside the watchdog budget.
                .env("SPINNING_COMM_TIMEOUT_SECS", "60")
                .spawn()
                .expect("spawn worker");
            (index, child)
        })
        .collect();
    wait_all(&mut children, Instant::now() + WATCHDOG);

    // Concatenating the workers' owned solution blocks in index order must
    // reproduce the oracle's record stream byte for byte.
    let oracle_solution = std::fs::read(&oracle_out).expect("read oracle solution");
    let mut cluster_solution = Vec::new();
    for index in 0..PROCESSES {
        let part =
            std::fs::read(dir.join(format!("w{index}.solution"))).expect("read worker solution");
        cluster_solution.extend_from_slice(&part);
    }
    assert_eq!(
        oracle_solution, cluster_solution,
        "tight credits made the cluster solution diverge from the oracle"
    );

    // Every worker's trace must equal the oracle's — the queue high-water in
    // it is cluster-agreed state — and stay under the credit bound.
    let expected_trace = std::fs::read(&oracle_trace).expect("read oracle trace");
    assert_trace_respects_credits(&oracle_trace);
    for index in 0..PROCESSES {
        let path = dir.join(format!("w{index}.trace"));
        let trace = std::fs::read(&path).expect("read worker trace");
        assert_eq!(
            expected_trace, trace,
            "worker {index} trace diverges under tight credits"
        );
        assert_trace_respects_credits(&path);
    }
    std::fs::remove_dir_all(&dir).expect("remove scratch dir");
}
