//! Out-of-core execution equivalence: forcing the exchanges to spill sealed
//! pages to disk must not change a single result.
//!
//! Every test runs a workload twice — once in memory and once under a byte
//! budget small enough to force multi-run spills (including the `bytes(0)`
//! "spill everything" extreme) — and pins the spilled run byte-for-byte to
//! the in-memory run and to the sequential oracles, across execution modes
//! (batch incremental, microstep, bulk) and both routing schemes (hash and
//! range).  `spilled_bytes`/`spilled_runs` counters prove the out-of-core
//! path actually ran; the in-memory runs prove an unlimited budget never
//! touches disk.
//!
//! The CI low-memory smoke job re-runs this suite with
//! `SPINNING_MEMORY_BUDGET` overriding the forced budget and asserts the
//! spill directory is empty afterwards (runs are deleted when their last
//! handle drops).

use algorithms::{
    cc_bulk, cc_incremental, cc_microstep, oracles, sssp_with_config, ComponentsConfig,
};
use dataflow::prelude::MemoryBudget;
use graphdata::{DatasetProfile, Graph};
use spinning_core::prelude::{ExecutionMode, WorksetConfig, WorksetRouting};

/// The budget every spill-forced run uses: tiny by default so even small
/// exchanges overflow it, overridable through `SPINNING_MEMORY_BUDGET` (the
/// CI smoke job sets it explicitly).
fn forced_budget() -> MemoryBudget {
    MemoryBudget::from_env().unwrap_or(MemoryBudget::bytes(1024))
}

/// A small Webbase-style long-tail graph (the profile's `scale` is a
/// downscale divisor): ~1.8k vertices with a ~180-vertex chain, so the
/// workset iteration runs ~180 supersteps and the spill path is exercised on
/// the long tail, not just the bulky first steps.
fn webbase() -> Graph {
    DatasetProfile::webbase().generate(65_536)
}

fn cc_oracle(graph: &Graph) -> Vec<i64> {
    graph
        .components_oracle()
        .into_iter()
        .map(i64::from)
        .collect()
}

#[test]
fn spilled_incremental_cc_is_byte_identical_to_in_memory() {
    let graph = webbase();
    let oracle = cc_oracle(&graph);
    for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
        let base = ComponentsConfig::new(4).with_routing(routing);
        let in_memory = cc_incremental(&graph, &base).unwrap();
        assert_eq!(in_memory.components, oracle);
        assert_eq!(
            in_memory.stats.total_spilled_bytes(),
            0,
            "unlimited budget must never spill ({routing:?})"
        );
        let spilled = cc_incremental(&graph, &base.with_memory_budget(forced_budget())).unwrap();
        assert!(
            spilled.stats.total_spilled_bytes() > 0,
            "the forced budget must actually spill ({routing:?})"
        );
        assert_eq!(
            spilled.components, in_memory.components,
            "spilling changed the fixpoint ({routing:?})"
        );
        assert_eq!(
            spilled.iterations, in_memory.iterations,
            "spilling is invisible to the superstep structure ({routing:?})"
        );
        assert!(spilled.converged);
    }
}

#[test]
fn spilled_microstep_cc_matches_oracle_in_both_routings() {
    // Microstep visibility makes the within-superstep processing order part
    // of the trajectory, and spilled candidates are consumed in sorted-run
    // order — so the pin is against the fixpoint (and the in-memory final
    // state), which order cannot change.
    let graph = webbase();
    let oracle = cc_oracle(&graph);
    for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
        let config = ComponentsConfig::new(4)
            .with_routing(routing)
            .with_memory_budget(forced_budget());
        let result = cc_microstep(&graph, &config).unwrap();
        assert!(result.stats.total_spilled_bytes() > 0, "{routing:?}");
        assert_eq!(result.components, oracle, "{routing:?}");
        assert!(result.converged);
    }
}

#[test]
fn budget_zero_spills_everything_and_forces_multiple_runs_per_partition() {
    let graph = webbase();
    let oracle = cc_oracle(&graph);
    let parallelism = 4;
    let config = ComponentsConfig::new(parallelism).with_memory_budget(MemoryBudget::bytes(0));
    let result = cc_incremental(&graph, &config).unwrap();
    assert_eq!(result.components, oracle);
    assert!(result.converged);
    // Budget 0 flushes every outbox every superstep: over the run each
    // partition receives far more than 4 runs (the acceptance bar for a
    // genuine multi-run out-of-core merge).
    assert!(
        result.stats.total_spilled_runs() >= 4 * parallelism,
        "only {} runs spilled",
        result.stats.total_spilled_runs()
    );
    assert!(result.stats.total_spilled_bytes() > 0);
}

#[test]
fn spilled_bulk_cc_matches_oracle_and_spills_through_the_executor() {
    // The bulk variant runs through the dataflow executor: its hash/range
    // exchanges and the loop-invariant cache (the neighbour table) spill
    // under the same budget.
    let graph = DatasetProfile::webbase().generate(262_144);
    let oracle = cc_oracle(&graph);
    let in_memory = cc_bulk(&graph, &ComponentsConfig::new(3)).unwrap();
    assert_eq!(in_memory.components, oracle);
    assert_eq!(in_memory.stats.total_spilled_bytes(), 0);
    let config = ComponentsConfig::new(3).with_memory_budget(forced_budget());
    let spilled = cc_bulk(&graph, &config).unwrap();
    assert!(
        spilled.stats.total_spilled_bytes() > 0,
        "executor exchanges must spill under the budget"
    );
    assert!(spilled.stats.total_spilled_runs() > 0);
    assert_eq!(spilled.components, oracle);
    assert_eq!(spilled.iterations, in_memory.iterations);
    assert!(spilled.converged);
}

#[test]
fn spilled_sssp_matches_oracle_in_every_mode_and_routing() {
    let graph = webbase();
    let source = 0;
    let oracle = oracles::sssp(&graph, source);
    for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
        for mode in [
            ExecutionMode::BatchIncremental,
            ExecutionMode::Microstep,
            // The asynchronous mode exchanges records through queues and
            // ignores the budget (bounding those queues is the credit-based
            // backpressure follow-on); it must still run correctly with a
            // budget configured.
            ExecutionMode::AsynchronousMicrostep,
        ] {
            let config = WorksetConfig::new(3)
                .with_mode(mode)
                .with_routing(routing)
                .with_memory_budget(forced_budget());
            let result = sssp_with_config(&graph, source, &config).unwrap();
            assert_eq!(result.distances, oracle, "{mode:?} / {routing:?}");
            assert!(result.converged);
            if mode != ExecutionMode::AsynchronousMicrostep {
                assert!(
                    result.stats.total_spilled_bytes() > 0,
                    "superstep modes must spill under the forced budget \
                     ({mode:?} / {routing:?})"
                );
            }
        }
    }
}
