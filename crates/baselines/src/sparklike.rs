//! A Spark-like bulk dataflow engine.
//!
//! The paper compares Stratosphere against Spark [Zaharia et al., HotCloud
//! 2010]: a system built around resilient distributed datasets (RDDs) —
//! partitioned, immutable, in-memory collections transformed by coarse-grained
//! operations, with iterative programs expressed as driver-side loops that
//! create a new RDD per iteration.  This module re-implements that execution
//! model in miniature: datasets are partitioned vectors, transformations run
//! per partition on a thread per partition, `reduce_by_key`/`join` shuffle by
//! hash partitioning, and — crucially for the comparison — **every iteration
//! materialises a complete new partial solution**; there is no mutable state
//! that can be updated in place, which is exactly the limitation incremental
//! iterations remove.
//!
//! Included applications: Pegasus-style PageRank, bulk-iterative Connected
//! Components, and the "simulated incremental" Connected Components of
//! Figure 11 (a changed-flag is carried with every record; unchanged records
//! still have to be copied into the next iteration's RDD).

use dataflow::key::FxHasher;
use graphdata::Graph;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Counters collected while executing RDD operations.
#[derive(Debug, Clone, Default)]
pub struct SparkStats {
    /// Records processed by narrow (per-partition) transformations.
    pub records_processed: usize,
    /// Records moved between partitions by shuffles (joins, reduce_by_key).
    pub shuffle_records: usize,
    /// Per-iteration wall-clock times recorded by the iterative applications.
    pub iteration_times: Vec<Duration>,
    /// Per-iteration record counts of the (re-created) partial solution.
    pub iteration_records: Vec<usize>,
}

/// Execution context shared by all RDDs of one job.
#[derive(Debug, Clone)]
pub struct SparkContext {
    parallelism: usize,
    stats: Arc<Mutex<SparkStats>>,
}

impl SparkContext {
    /// Creates a context with the given number of partitions.
    pub fn new(parallelism: usize) -> Self {
        SparkContext {
            parallelism: parallelism.max(1),
            stats: Arc::new(Mutex::new(SparkStats::default())),
        }
    }

    /// Number of partitions.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// A snapshot of the collected statistics.
    pub fn stats(&self) -> SparkStats {
        self.stats.lock().unwrap().clone()
    }

    /// Creates an RDD from a vector, hash-partitioning nothing (round-robin
    /// chunks, like `parallelize`).
    pub fn parallelize<T: Clone + Send + Sync>(&self, data: Vec<T>) -> Rdd<T> {
        let chunk = data.len().div_ceil(self.parallelism).max(1);
        let mut partitions: Vec<Vec<T>> = vec![Vec::new(); self.parallelism];
        for (i, item) in data.into_iter().enumerate() {
            partitions[(i / chunk).min(self.parallelism - 1)].push(item);
        }
        Rdd {
            partitions: Arc::new(partitions),
            ctx: self.clone(),
        }
    }

    fn add_processed(&self, n: usize) {
        self.stats.lock().unwrap().records_processed += n;
    }

    fn add_shuffled(&self, n: usize) {
        self.stats.lock().unwrap().shuffle_records += n;
    }

    fn record_iteration(&self, elapsed: Duration, records: usize) {
        let mut stats = self.stats.lock().unwrap();
        stats.iteration_times.push(elapsed);
        stats.iteration_records.push(records);
    }
}

// The shuffle routes through the same Fx hash as the dataflow engine's
// partitioning, so the baseline pays the same (cheap) routing cost and the
// system comparisons measure execution strategy, not hash choice.
fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut hasher = FxHasher::default();
    key.hash(&mut hasher);
    hasher.finish()
}

/// A partitioned, immutable in-memory dataset.
#[derive(Debug, Clone)]
pub struct Rdd<T: Clone + Send + Sync> {
    partitions: Arc<Vec<Vec<T>>>,
    ctx: SparkContext,
}

impl<T: Clone + Send + Sync> Rdd<T> {
    /// Number of records across all partitions.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Gathers all records at the driver.
    pub fn collect(&self) -> Vec<T> {
        self.partitions.iter().flatten().cloned().collect()
    }

    /// Marks the dataset as cached.  The engine keeps everything in memory
    /// anyway, so this is a no-op that only mirrors the Spark API.
    pub fn cache(&self) -> Rdd<T> {
        self.clone()
    }

    fn run_per_partition<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync,
        F: Fn(&[T]) -> Vec<U> + Send + Sync,
    {
        // Narrow transformations run one task per partition on the shared
        // persistent pool — the same dispatch path as the dataflow engine,
        // keeping the systems comparison about execution strategy, not
        // thread-spawn overhead.
        let mut results: Vec<Option<Vec<U>>> = (0..self.partitions.len()).map(|_| None).collect();
        spinning_pool::global().scope(|scope| {
            for (partition, slot) in self.partitions.iter().zip(results.iter_mut()) {
                let f = &f;
                scope.spawn(move || *slot = Some(f(partition)));
            }
        });
        let results: Vec<Vec<U>> = results
            .into_iter()
            .map(|slot| slot.expect("pool ran every spark partition task"))
            .collect();
        self.ctx.add_processed(self.count());
        Rdd {
            partitions: Arc::new(results),
            ctx: self.ctx.clone(),
        }
    }

    /// Per-record transformation.
    pub fn map<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync,
        F: Fn(&T) -> U + Send + Sync,
    {
        self.run_per_partition(|partition| partition.iter().map(&f).collect())
    }

    /// Per-record one-to-many transformation.
    pub fn flat_map<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync,
        F: Fn(&T) -> Vec<U> + Send + Sync,
    {
        self.run_per_partition(|partition| partition.iter().flat_map(&f).collect())
    }

    /// Keeps only the records matching the predicate.
    pub fn filter<F>(&self, f: F) -> Rdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.run_per_partition(|partition| partition.iter().filter(|t| f(t)).cloned().collect())
    }

    /// Unions two datasets (no deduplication).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let mut partitions: Vec<Vec<T>> = (*self.partitions).clone();
        let len = partitions.len();
        for (i, part) in other.partitions.iter().enumerate() {
            partitions[i % len].extend(part.iter().cloned());
        }
        Rdd {
            partitions: Arc::new(partitions),
            ctx: self.ctx.clone(),
        }
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Clone + Send + Sync + Hash + Eq,
    V: Clone + Send + Sync,
{
    fn shuffle_by_key(&self) -> Vec<Vec<(K, V)>> {
        // Two-phase shuffle mirroring the dataflow engine's paged exchange:
        // every source partition routes its records into per-target chunks
        // concurrently on the worker pool, then the exchange step moves each
        // sealed chunk to its target by pointer — no per-record work happens
        // between partitions.  Unlike the engine, the chunks hold heap
        // *objects*: the RDD model is generic over arbitrary Rust types, so
        // it cannot route length-prefixed bytes — exactly the object-graph
        // overhead the paper's system comparison attributes to Spark, which
        // this baseline is meant to preserve.
        let parallelism = self.ctx.parallelism;
        type RoutedChunks<K, V> = (Vec<Vec<(K, V)>>, usize);
        let mut routed: Vec<Option<RoutedChunks<K, V>>> =
            (0..self.partitions.len()).map(|_| None).collect();
        spinning_pool::global().scope(|scope| {
            for ((source, partition), slot) in
                self.partitions.iter().enumerate().zip(routed.iter_mut())
            {
                scope.spawn(move || {
                    let mut chunks: Vec<Vec<(K, V)>> = vec![Vec::new(); parallelism];
                    let mut moved = 0usize;
                    for (k, v) in partition {
                        let target = (hash_of(k) % parallelism as u64) as usize;
                        if target != source {
                            moved += 1;
                        }
                        chunks[target].push((k.clone(), v.clone()));
                    }
                    *slot = Some((chunks, moved));
                });
            }
        });
        let mut shuffled: Vec<Vec<(K, V)>> = vec![Vec::new(); parallelism];
        let mut moved_total = 0usize;
        for slot in routed {
            let (chunks, moved) = slot.expect("pool routed every shuffle partition");
            moved_total += moved;
            for (target, chunk) in chunks.into_iter().enumerate() {
                if shuffled[target].is_empty() {
                    // The common case: adopt the whole chunk by pointer.
                    shuffled[target] = chunk;
                } else {
                    shuffled[target].extend(chunk);
                }
            }
        }
        self.ctx.add_shuffled(moved_total);
        shuffled
    }

    /// Groups by key and reduces each group with `f` (a full shuffle).
    pub fn reduce_by_key<F>(&self, f: F) -> Rdd<(K, V)>
    where
        F: Fn(&V, &V) -> V + Send + Sync,
    {
        let shuffled = self.shuffle_by_key();
        let mut results: Vec<Option<Vec<(K, V)>>> = (0..shuffled.len()).map(|_| None).collect();
        spinning_pool::global().scope(|scope| {
            let f = &f;
            for (partition, slot) in shuffled.iter().zip(results.iter_mut()) {
                scope.spawn(move || {
                    let mut groups: HashMap<K, V> = HashMap::new();
                    for (k, v) in partition {
                        match groups.get_mut(k) {
                            Some(acc) => *acc = f(acc, v),
                            None => {
                                groups.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    *slot = Some(groups.into_iter().collect::<Vec<_>>());
                });
            }
        });
        let results: Vec<Vec<(K, V)>> = results
            .into_iter()
            .map(|slot| slot.expect("pool ran every spark reduce task"))
            .collect();
        self.ctx.add_processed(self.count());
        Rdd {
            partitions: Arc::new(results),
            ctx: self.ctx.clone(),
        }
    }

    /// Inner equi-join with another keyed dataset (both sides are shuffled).
    ///
    /// Both datasets must come from contexts with the same parallelism: the
    /// shuffle routes keys by `hash % parallelism`, so differently
    /// partitioned sides would pair unrelated partitions (the pre-pool code
    /// silently truncated to the shorter side and joined misrouted keys).
    pub fn join<W>(&self, other: &Rdd<(K, W)>) -> Rdd<(K, (V, W))>
    where
        W: Clone + Send + Sync,
    {
        let left = self.shuffle_by_key();
        let right = other.shuffle_by_key();
        assert_eq!(
            left.len(),
            right.len(),
            "join requires both RDDs to share the same context parallelism"
        );
        type JoinedPartition<K, V, W> = Vec<(K, (V, W))>;
        let mut results: Vec<Option<JoinedPartition<K, V, W>>> =
            (0..left.len()).map(|_| None).collect();
        spinning_pool::global().scope(|scope| {
            for ((l, r), slot) in left.iter().zip(right.iter()).zip(results.iter_mut()) {
                scope.spawn(move || {
                    let mut table: HashMap<&K, Vec<&V>> = HashMap::new();
                    for (k, v) in l {
                        table.entry(k).or_default().push(v);
                    }
                    let mut out = Vec::new();
                    for (k, w) in r {
                        if let Some(vs) = table.get(k) {
                            for v in vs {
                                out.push((k.clone(), ((*v).clone(), w.clone())));
                            }
                        }
                    }
                    *slot = Some(out);
                });
            }
        });
        let results: Vec<Vec<(K, (V, W))>> = results
            .into_iter()
            .map(|slot| slot.expect("pool ran every spark join task"))
            .collect();
        self.ctx.add_processed(self.count() + other.count());
        Rdd {
            partitions: Arc::new(results),
            ctx: self.ctx.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Applications
// ---------------------------------------------------------------------------

/// Pegasus-style PageRank: per iteration, join the rank RDD with the edge RDD
/// and re-aggregate by target vertex.  Matches the partitioning plan of
/// Figure 4 and the Spark implementation referenced in Section 6.1.
pub fn pagerank_spark(graph: &Graph, iterations: usize, ctx: &SparkContext) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let damping = 0.85;
    let teleport = (1.0 - damping) / n as f64;
    let edges: Vec<(u32, (u32, f64))> = graph
        .vertices()
        .flat_map(|v| {
            let degree = graph.degree(v).max(1) as f64;
            graph
                .neighbors(v)
                .iter()
                .map(move |&t| (v, (t, 1.0 / degree)))
        })
        .collect();
    let edges_rdd = ctx.parallelize(edges).cache();
    let mut ranks = ctx.parallelize(graph.vertices().map(|v| (v, 1.0 / n as f64)).collect());

    for _ in 0..iterations {
        let start = Instant::now();
        let contributions = ranks
            .join(&edges_rdd)
            .map(|(_, (rank, (target, probability)))| (*target, damping * rank * probability));
        // Keep every vertex in the vector even if it has no in-links.
        let zeros = ctx.parallelize(graph.vertices().map(|v| (v, 0.0)).collect());
        ranks = contributions
            .union(&zeros)
            .reduce_by_key(|a, b| a + b)
            .map(|(v, sum)| (*v, teleport + sum));
        ctx.record_iteration(start.elapsed(), ranks.count());
    }

    let mut result = vec![0.0; n];
    for (v, r) in ranks.collect() {
        result[v as usize] = r;
    }
    result
}

/// Bulk-iterative Connected Components on the RDD engine: every iteration
/// recreates the complete component mapping.
pub fn cc_spark_bulk(graph: &Graph, ctx: &SparkContext) -> (Vec<u32>, usize) {
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let edges_rdd = ctx.parallelize(edges).cache();
    let mut components = ctx.parallelize(graph.vertices().map(|v| (v, v)).collect());

    let mut iterations = 0;
    loop {
        iterations += 1;
        let start = Instant::now();
        let candidates = components
            .join(&edges_rdd)
            .map(|(_, (cid, neighbour))| (*neighbour, *cid));
        let next = components
            .union(&candidates)
            .reduce_by_key(|a, b| (*a).min(*b));
        ctx.record_iteration(start.elapsed(), next.count());

        let old: HashMap<u32, u32> = components.collect().into_iter().collect();
        let changed = next
            .collect()
            .into_iter()
            .any(|(v, c)| old.get(&v) != Some(&c));
        components = next;
        if !changed {
            break;
        }
    }

    let mut result: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    for (v, c) in components.collect() {
        result[v as usize] = c;
    }
    (result, iterations)
}

/// The "simulated incremental" Connected Components of Figure 11: each record
/// carries a changed-flag; only changed vertices send candidates to their
/// neighbours, but the *entire* component mapping must still be copied into
/// the next iteration's RDD because the engine has no mutable state.
pub fn cc_spark_simulated_incremental(graph: &Graph, ctx: &SparkContext) -> (Vec<u32>, usize) {
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let edges_rdd = ctx.parallelize(edges).cache();
    // (vid, (cid, changed))
    let mut components = ctx.parallelize(graph.vertices().map(|v| (v, (v, true))).collect());

    let mut iterations = 0;
    loop {
        iterations += 1;
        let start = Instant::now();
        let changed_only = components.filter(|(_, (_, changed))| *changed);
        let candidates = changed_only
            .join(&edges_rdd)
            .map(|(_, ((cid, _), neighbour))| (*neighbour, *cid));
        // Explicitly copy the unchanged state forward (the cost the paper
        // attributes to this variant), then merge in the candidates.
        let carried = components.map(|(v, (cid, _))| (*v, *cid));
        let merged = carried
            .union(&candidates)
            .reduce_by_key(|a, b| (*a).min(*b));
        let old: HashMap<u32, u32> = components
            .collect()
            .into_iter()
            .map(|(v, (c, _))| (v, c))
            .collect();
        let next = merged.map(|(v, cid)| {
            let changed = old.get(v) != Some(cid);
            (*v, (*cid, changed))
        });
        ctx.record_iteration(start.elapsed(), next.count());
        let any_changed = next.collect().iter().any(|(_, (_, changed))| *changed);
        components = next;
        if !any_changed {
            break;
        }
    }

    let mut result: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    for (v, (c, _)) in components.collect() {
        result[v as usize] = c;
    }
    (result, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::{figure1_graph, ring, rmat, RmatParams};

    #[test]
    fn rdd_map_filter_count() {
        let ctx = SparkContext::new(4);
        let rdd = ctx.parallelize((0..100).collect::<Vec<i64>>());
        let doubled = rdd.map(|x| x * 2);
        assert_eq!(doubled.count(), 100);
        let small = doubled.filter(|x| *x < 50);
        assert_eq!(small.count(), 25);
        assert!(ctx.stats().records_processed > 0);
    }

    #[test]
    fn reduce_by_key_aggregates_across_partitions() {
        let ctx = SparkContext::new(3);
        let pairs: Vec<(u32, i64)> = (0..90).map(|i| (i % 9, 1)).collect();
        let rdd = ctx.parallelize(pairs);
        let mut counts = rdd.reduce_by_key(|a, b| a + b).collect();
        counts.sort();
        assert_eq!(counts.len(), 9);
        assert!(counts.iter().all(|(_, c)| *c == 10));
        assert!(ctx.stats().shuffle_records > 0);
    }

    #[test]
    fn join_produces_matching_pairs() {
        let ctx = SparkContext::new(2);
        let left = ctx.parallelize(vec![(1u32, "a"), (2, "b")]);
        let right = ctx.parallelize(vec![(2u32, 20), (3, 30)]);
        let joined = left.join(&right).collect();
        assert_eq!(joined, vec![(2, ("b", 20))]);
    }

    #[test]
    #[should_panic(expected = "same context parallelism")]
    fn join_across_differently_partitioned_contexts_is_rejected() {
        let a = SparkContext::new(4).parallelize(vec![(1u32, 1)]);
        let b = SparkContext::new(2).parallelize(vec![(1u32, 2)]);
        let _ = a.join(&b);
    }

    #[test]
    fn spark_pagerank_matches_uniform_ring() {
        let ctx = SparkContext::new(4);
        let g = ring(20);
        let ranks = pagerank_spark(&g, 25, &ctx);
        for &r in &ranks {
            assert!((r - 0.05).abs() < 1e-9);
        }
        assert_eq!(ctx.stats().iteration_times.len(), 25);
    }

    #[test]
    fn spark_cc_matches_the_oracle() {
        let g = figure1_graph();
        let ctx = SparkContext::new(2);
        let (components, iterations) = cc_spark_bulk(&g, &ctx);
        assert_eq!(components, g.components_oracle());
        assert!(iterations >= 2);
    }

    #[test]
    fn simulated_incremental_matches_bulk_result() {
        let g = rmat(200, 800, RmatParams::default(), 13).symmetrize();
        let ctx_a = SparkContext::new(4);
        let ctx_b = SparkContext::new(4);
        let (bulk, _) = cc_spark_bulk(&g, &ctx_a);
        let (sim, _) = cc_spark_simulated_incremental(&g, &ctx_b);
        assert_eq!(bulk, sim);
        assert_eq!(bulk, g.components_oracle());
    }

    #[test]
    fn simulated_incremental_still_copies_the_whole_solution() {
        // This is the key structural difference to true incremental
        // iterations: the per-iteration record count never drops below the
        // number of vertices.
        let g = rmat(300, 1200, RmatParams::default(), 29).symmetrize();
        let ctx = SparkContext::new(2);
        let _ = cc_spark_simulated_incremental(&g, &ctx);
        let stats = ctx.stats();
        assert!(stats
            .iteration_records
            .iter()
            .all(|&records| records >= g.num_vertices()));
    }
}
