//! A Giraph/Pregel-like vertex-centric BSP engine.
//!
//! The paper's second comparison system is Giraph, an open-source
//! implementation of Pregel [Malewicz et al., SIGMOD 2010]: computation is
//! expressed as a vertex program that, in every superstep, consumes the
//! messages sent to the vertex in the previous superstep, updates the vertex
//! state, sends messages along edges, and may vote to halt.  Vertices are
//! reactivated by incoming messages; the job ends when every vertex has
//! halted and no messages are in flight.
//!
//! The engine here follows that model: vertices are hash-partitioned over
//! worker threads, supersteps are globally synchronised, messages are
//! combined with an optional combiner (the pre-aggregation the paper mentions
//! for PageRank), and per-superstep statistics (active vertices, messages,
//! wall-clock time) are recorded for the figure reproductions.

use graphdata::{Graph, VertexId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Context handed to [`VertexProgram::compute`], used to emit messages and to
/// vote to halt.
pub struct VertexContext<'a, M> {
    superstep: usize,
    vertex: VertexId,
    out_neighbors: &'a [VertexId],
    outgoing: Vec<(VertexId, M)>,
    halt: bool,
}

impl<'a, M> VertexContext<'a, M> {
    /// The current superstep number (0-based, as in Pregel).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The vertex this invocation belongs to.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// The vertex's out-neighbours.
    pub fn neighbors(&self) -> &'a [VertexId] {
        self.out_neighbors
    }

    /// Sends a message to an arbitrary vertex.
    pub fn send(&mut self, target: VertexId, message: M) {
        self.outgoing.push((target, message));
    }

    /// Sends the same message to every out-neighbour.
    pub fn send_to_neighbors(&mut self, message: M)
    where
        M: Clone,
    {
        for &t in self.out_neighbors {
            self.outgoing.push((t, message.clone()));
        }
    }

    /// Votes to halt; the vertex stays inactive until a message reactivates
    /// it.
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// A vertex program in the Pregel style.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state.
    type State: Clone + Send + Sync;
    /// Message type.
    type Message: Clone + Send + Sync;

    /// Initial state of a vertex.
    fn initial_state(&self, vertex: VertexId, graph: &Graph) -> Self::State;

    /// The compute function invoked for every active vertex in every
    /// superstep.
    fn compute(
        &self,
        state: &mut Self::State,
        messages: &[Self::Message],
        ctx: &mut VertexContext<'_, Self::Message>,
    );

    /// Optional message combiner (pre-aggregation of messages addressed to
    /// the same vertex, applied on the sender side).
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }
}

/// Per-superstep counters.
#[derive(Debug, Clone, Default)]
pub struct SuperstepStats {
    /// 1-based superstep number.
    pub superstep: usize,
    /// Vertices whose compute function ran.
    pub active_vertices: usize,
    /// Messages sent (after combining).
    pub messages_sent: usize,
    /// Wall-clock time of the superstep.
    pub elapsed: Duration,
}

/// The result of running a vertex program to completion.
#[derive(Debug)]
pub struct PregelResult<S> {
    /// Final state per vertex, indexed by vertex id.
    pub states: Vec<S>,
    /// Number of supersteps executed.
    pub supersteps: usize,
    /// Per-superstep statistics.
    pub stats: Vec<SuperstepStats>,
}

/// Configuration of the BSP engine.
#[derive(Debug, Clone, Copy)]
pub struct PregelConfig {
    /// Number of worker threads (vertex partitions).
    pub parallelism: usize,
    /// Upper bound on supersteps.
    pub max_supersteps: usize,
}

impl PregelConfig {
    /// Default configuration for the given parallelism.
    pub fn new(parallelism: usize) -> Self {
        PregelConfig {
            parallelism: parallelism.max(1),
            max_supersteps: 100_000,
        }
    }

    /// Bounds the number of supersteps.
    pub fn with_max_supersteps(mut self, max: usize) -> Self {
        self.max_supersteps = max;
        self
    }
}

/// Runs `program` on `graph` until every vertex has halted and no messages
/// are pending, or the superstep bound is hit.
pub fn run<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &PregelConfig,
) -> PregelResult<P::State> {
    let n = graph.num_vertices();
    // `PregelConfig::new` clamps, but the field is public — re-clamp so a
    // hand-built config with 0 cannot reach the chunk-size division below.
    let parallelism = config.parallelism.max(1);
    let mut states: Vec<P::State> = graph
        .vertices()
        .map(|v| program.initial_state(v, graph))
        .collect();
    let mut active: Vec<bool> = vec![true; n];
    // Messages addressed to each vertex for the *current* superstep.
    let mut inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];
    let mut stats = Vec::new();
    let mut superstep = 0usize;

    while superstep < config.max_supersteps {
        let any_active = active.iter().any(|&a| a) || inbox.iter().any(|m| !m.is_empty());
        if !any_active {
            break;
        }
        let start = Instant::now();
        superstep += 1;

        let current_inbox = std::mem::replace(&mut inbox, vec![Vec::new(); n]);

        // Partition the vertices over the workers and run compute.
        struct WorkerOutput<M> {
            outgoing: Vec<(VertexId, M)>,
            computed: usize,
            halted: Vec<(VertexId, bool)>,
        }
        let chunk = n.div_ceil(parallelism).max(1);
        // One pool task per worker chunk: supersteps are globally
        // synchronised, so like the dataflow engine's superstep driver the
        // BSP engine pays a deque push per worker and superstep, not a
        // thread spawn.
        let state_chunks: Vec<&mut [P::State]> = states.chunks_mut(chunk).collect();
        let mut output_slots: Vec<Option<WorkerOutput<P::Message>>> =
            (0..state_chunks.len()).map(|_| None).collect();
        spinning_pool::global().scope(|scope| {
            for (worker, ((states_chunk, inbox_chunk), slot)) in state_chunks
                .into_iter()
                .zip(current_inbox.chunks(chunk))
                .zip(output_slots.iter_mut())
                .enumerate()
            {
                let active = &active;
                scope.spawn(move || {
                    let base = worker * chunk;
                    let mut output = WorkerOutput {
                        outgoing: Vec::new(),
                        computed: 0,
                        halted: Vec::new(),
                    };
                    for (offset, state) in states_chunk.iter_mut().enumerate() {
                        let vertex = (base + offset) as VertexId;
                        let messages = &inbox_chunk[offset];
                        if !active[vertex as usize] && messages.is_empty() {
                            continue;
                        }
                        output.computed += 1;
                        let mut ctx = VertexContext {
                            superstep: superstep - 1,
                            vertex,
                            out_neighbors: graph.neighbors(vertex),
                            outgoing: Vec::new(),
                            halt: false,
                        };
                        program.compute(state, messages, &mut ctx);
                        output.halted.push((vertex, ctx.halt));
                        output.outgoing.extend(ctx.outgoing);
                    }
                    *slot = Some(output);
                });
            }
        });
        let outputs = output_slots
            .into_iter()
            .map(|slot| slot.expect("pool ran every pregel worker chunk"));

        // Apply halt votes, combine and deliver messages.
        let mut messages_sent = 0usize;
        let mut active_vertices = 0usize;
        for output in outputs {
            active_vertices += output.computed;
            for (vertex, halted) in output.halted {
                active[vertex as usize] = !halted;
            }
            // Sender-side combining, as Giraph/Pregel combiners do.
            let mut combined: HashMap<VertexId, P::Message> = HashMap::new();
            let mut uncombined: Vec<(VertexId, P::Message)> = Vec::new();
            for (target, message) in output.outgoing {
                match combined.remove(&target) {
                    None => {
                        combined.insert(target, message);
                    }
                    Some(existing) => match program.combine(&existing, &message) {
                        Some(merged) => {
                            combined.insert(target, merged);
                        }
                        None => {
                            uncombined.push((target, existing));
                            combined.insert(target, message);
                        }
                    },
                }
            }
            for (target, message) in combined.into_iter().chain(uncombined) {
                messages_sent += 1;
                inbox[target as usize].push(message);
            }
        }

        stats.push(SuperstepStats {
            superstep,
            active_vertices,
            messages_sent,
            elapsed: start.elapsed(),
        });
    }

    PregelResult {
        states,
        supersteps: superstep,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Vertex programs used in the evaluation
// ---------------------------------------------------------------------------

/// The Connected Components vertex program: the state is the component id,
/// messages carry candidate component ids, and a vertex only sends when its
/// component improves — the behaviour that lets Pregel exploit sparse
/// computational dependencies.
pub struct ConnectedComponentsProgram;

impl VertexProgram for ConnectedComponentsProgram {
    type State = VertexId;
    type Message = VertexId;

    fn initial_state(&self, vertex: VertexId, _graph: &Graph) -> VertexId {
        vertex
    }

    fn compute(
        &self,
        state: &mut VertexId,
        messages: &[VertexId],
        ctx: &mut VertexContext<'_, VertexId>,
    ) {
        let incoming_min = messages.iter().copied().min();
        if ctx.superstep() == 0 {
            // Seed the neighbours with the own id.
            ctx.send_to_neighbors(*state);
        } else if let Some(candidate) = incoming_min {
            if candidate < *state {
                *state = candidate;
                ctx.send_to_neighbors(candidate);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &VertexId, b: &VertexId) -> Option<VertexId> {
        Some((*a).min(*b))
    }
}

/// The PageRank vertex program of the Pregel paper: a fixed number of
/// supersteps, each distributing the vertex's rank over its out-edges, with a
/// sum combiner.
pub struct PageRankProgram {
    /// Number of rank-propagation supersteps (the paper uses 20).
    pub iterations: usize,
    /// Damping factor.
    pub damping: f64,
    /// Number of vertices of the graph (needed for the teleport term).
    pub num_vertices: usize,
}

impl VertexProgram for PageRankProgram {
    type State = f64;
    type Message = f64;

    fn initial_state(&self, _vertex: VertexId, graph: &Graph) -> f64 {
        1.0 / graph.num_vertices() as f64
    }

    fn compute(&self, state: &mut f64, messages: &[f64], ctx: &mut VertexContext<'_, f64>) {
        let degree = ctx.neighbors().len();
        if ctx.superstep() > 0 {
            let sum: f64 = messages.iter().sum();
            *state = (1.0 - self.damping) / self.num_vertices as f64 + self.damping * sum;
        }
        if ctx.superstep() < self.iterations {
            if degree > 0 {
                ctx.send_to_neighbors(*state / degree as f64);
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }
}

/// Runs the PageRank vertex program for the given number of supersteps and
/// returns the final ranks.
pub fn pagerank_pregel(
    graph: &Graph,
    iterations: usize,
    damping: f64,
    config: &PregelConfig,
) -> PregelResult<f64> {
    let program = PageRankProgram {
        iterations,
        damping,
        num_vertices: graph.num_vertices(),
    };
    run(graph, &program, config)
}

/// Runs the Connected Components vertex program and returns the component
/// assignment plus the engine result for inspection.
pub fn cc_pregel(graph: &Graph, config: &PregelConfig) -> PregelResult<VertexId> {
    run(graph, &ConnectedComponentsProgram, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::{chain, figure1_graph, rmat, RmatParams};

    #[test]
    fn cc_program_matches_the_oracle() {
        let g = figure1_graph();
        let result = cc_pregel(&g, &PregelConfig::new(2));
        assert_eq!(result.states, g.components_oracle());
    }

    #[test]
    fn cc_program_matches_oracle_on_power_law_graphs() {
        let g = rmat(500, 2500, RmatParams::default(), 19).symmetrize();
        let result = cc_pregel(&g, &PregelConfig::new(4));
        assert_eq!(result.states, g.components_oracle());
    }

    #[test]
    fn supersteps_track_the_graph_diameter() {
        let g = chain(128);
        let result = cc_pregel(&g, &PregelConfig::new(2));
        assert!(
            result.supersteps >= 127,
            "only {} supersteps",
            result.supersteps
        );
        assert_eq!(result.states, vec![0; 128]);
    }

    #[test]
    fn active_vertices_decline_as_components_converge() {
        let g = rmat(1000, 6000, RmatParams::default(), 23).symmetrize();
        let result = cc_pregel(&g, &PregelConfig::new(4));
        let first = result.stats.first().unwrap().active_vertices;
        let last = result.stats.last().unwrap().active_vertices;
        assert!(
            last < first / 2,
            "activity should collapse: {first} -> {last}"
        );
    }

    #[test]
    fn combiner_reduces_message_volume() {
        // With the min-combiner, at most one message per (sender partition,
        // target) survives; simply assert messages are bounded by active
        // vertices times max degree and that some combining happened on a
        // dense graph.
        let g = graphdata::star(64);
        let result = cc_pregel(&g, &PregelConfig::new(2));
        assert_eq!(result.states, vec![0; 64]);
        assert!(result.stats[0].messages_sent > 0);
    }

    #[test]
    fn hand_built_zero_parallelism_config_is_clamped() {
        let g = figure1_graph();
        let mut config = PregelConfig::new(2);
        config.parallelism = 0;
        let result = cc_pregel(&g, &config);
        assert_eq!(result.states, g.components_oracle());
    }

    #[test]
    fn max_supersteps_bound_is_respected() {
        let g = chain(64);
        let result = cc_pregel(&g, &PregelConfig::new(2).with_max_supersteps(3));
        assert_eq!(result.supersteps, 3);
        assert_ne!(result.states, vec![0; 64]);
    }

    #[test]
    fn pagerank_program_runs_the_requested_number_of_supersteps() {
        let g = graphdata::ring(16);
        let result = pagerank_pregel(&g, 10, 0.85, &PregelConfig::new(2));
        // iterations + the final halting superstep
        assert_eq!(result.supersteps, 11);
        // On a ring the rank stays uniform.
        let total: f64 = result.states.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total rank {total}");
    }
}
