//! # baselines — the comparison systems of the paper's evaluation
//!
//! Section 6 of the paper compares Stratosphere's iterations against two
//! other systems.  Since neither Spark (2012-era) nor Giraph can be embedded
//! here, both are re-implemented as small Rust engines that preserve the
//! *execution model* the comparison is about:
//!
//! * [`sparklike`] — a Spark-style RDD engine: immutable partitioned
//!   datasets, driver-side loops, a full shuffle per `join`/`reduce_by_key`,
//!   and a complete new partial solution materialised in every iteration.
//!   Includes Pegasus-style PageRank, bulk Connected Components, and the
//!   "simulated incremental" Connected Components of Figure 11.
//! * [`pregellike`] — a Giraph/Pregel-style vertex-centric BSP engine with
//!   message combiners and vote-to-halt, including the Connected Components
//!   and PageRank vertex programs used in the paper's experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pregellike;
pub mod sparklike;

pub use crate::pregellike::{
    cc_pregel, pagerank_pregel, ConnectedComponentsProgram, PageRankProgram, PregelConfig,
    PregelResult, SuperstepStats, VertexContext, VertexProgram,
};
pub use crate::sparklike::{
    cc_spark_bulk, cc_spark_simulated_incremental, pagerank_spark, Rdd, SparkContext, SparkStats,
};
