//! The solution set: a partitioned, keyed index over the partial solution.
//!
//! Incremental iterations keep the partial solution `S` as persistent state
//! across iterations (Section 5.1).  `S` is a set of records uniquely
//! identified by a key; it is hash-partitioned on that key across the worker
//! partitions and each partition stores its share in a primary index
//! (a hash table here, mirroring the execution strategy of Figure 6).
//!
//! The delta set produced by an iteration is merged into `S` with the
//! modified union operator `∪̇`: a delta record replaces the record with the
//! same key.  Because the delta set is a bag, two delta records may target the
//! same key; an optional *comparator* then decides which record survives — the
//! record representing the successor state in the CPO is kept, exactly as
//! described at the end of Section 5.1.
//!
//! # Paged storage
//!
//! Each partition stores its records **serialized** in sealed pages (a
//! [`PagedRecords`] store) and indexes them with a hash table from the record
//! key to an 8-byte [`PageHandle`].  Probes and merges work on the paged
//! representation natively; a heap [`Record`] is copied out only where user
//! code actually needs one — a comparator call during `∪̇`, a lookup handed
//! to an update function — and then through one per-partition scratch record,
//! not a fresh allocation.  Replaced records leave dead bytes behind in the
//! append-only store; once more than half the store is dead it is compacted
//! by rewriting the live records (a pure page-to-page byte copy) and the old
//! page buffers are recycled into the compacted store.

use dataflow::key::FxHashMap;
use dataflow::page::{PageHandle, PagePool, PagedRecords, RecordPage};
use dataflow::prelude::{Key, KeyFields, PartitionRouter, Record, Result, SpilledRun};
use std::cmp::Ordering;
use std::sync::Arc;

/// Decides which of two records for the same key is "larger", i.e. closer to
/// the supremum of the CPO.  The larger record is kept in the solution set.
pub type RecordComparator = Arc<dyn Fn(&Record, &Record) -> Ordering + Send + Sync>;

/// Outcome of merging one delta record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The key was not present; the record was inserted.
    Inserted,
    /// The key was present and the delta record replaced the old record.
    Replaced,
    /// The key was present and the comparator kept the existing record; the
    /// delta record was discarded.
    Discarded,
}

impl MergeOutcome {
    /// True if the solution set changed.
    pub fn applied(&self) -> bool {
        !matches!(self, MergeOutcome::Discarded)
    }
}

/// Compaction is considered only once at least this many dead bytes
/// accumulated (one page) — tiny partitions never pay for a rewrite.
const COMPACT_MIN_DEAD_BYTES: usize = 32 * 1024;

/// One partition of the solution set: a primary hash index from the record
/// key to the [`PageHandle`] of its serialized bytes in the partition's
/// paged store.  Uses the same Fx hash as partition routing, so a record's
/// partition and its slot in the partition index come from one hash
/// computation.
#[derive(Clone)]
pub(crate) struct PartitionIndex {
    index: FxHashMap<Key, PageHandle>,
    store: PagedRecords,
    /// Serialized bytes of replaced records still occupying pages; drives
    /// compaction.
    dead_bytes: usize,
    /// The one record the store deserializes into for probes and comparator
    /// calls — the copy-out at the user-function boundary.
    scratch: Record,
    /// Which stored record the scratch currently holds.  The dominant access
    /// pattern is `get(key)` immediately followed by `merge` of a delta for
    /// the same key (probe → update → `∪̇`); caching the handle makes the
    /// merge's comparator read free when the probe already deserialized the
    /// record.  Handles are never reused while the store stands
    /// (append-only); compaction reassigns them and clears this.
    scratch_handle: Option<PageHandle>,
}

impl Default for PartitionIndex {
    fn default() -> Self {
        PartitionIndex {
            index: FxHashMap::default(),
            // Not `PagedRecords::default()`, which has a zero page size.
            store: PagedRecords::new(),
            dead_bytes: 0,
            scratch: Record::empty(),
            scratch_handle: None,
        }
    }
}

impl std::fmt::Debug for PartitionIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionIndex")
            .field("records", &self.index.len())
            .field("stored_bytes", &self.store.byte_len())
            .field("dead_bytes", &self.dead_bytes)
            .finish()
    }
}

impl PartitionIndex {
    /// Number of live records.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Deserializes the record stored under `key` into the partition's
    /// scratch record and returns it.  `&mut self` because the scratch is
    /// part of the partition — the point is that a probe costs no
    /// allocation, not that it costs no copy.
    pub(crate) fn get(&mut self, key: &Key) -> Option<&Record> {
        let handle = *self.index.get(key)?;
        if self.scratch_handle != Some(handle) {
            self.store.view(handle).read_into(&mut self.scratch);
            self.scratch_handle = Some(handle);
        }
        Some(&self.scratch)
    }

    /// The `∪̇` merge of one delta record.  A surviving delta is serialized
    /// into the paged store; a discarded delta writes nothing.
    pub(crate) fn merge(
        &mut self,
        comparator: &Option<RecordComparator>,
        key: Key,
        delta: &Record,
    ) -> MergeOutcome {
        use std::collections::hash_map::Entry;
        let outcome = match self.index.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(self.store.append(delta));
                MergeOutcome::Inserted
            }
            Entry::Occupied(mut slot) => {
                let replace = match comparator {
                    // Without a comparator the delta always replaces the old
                    // record (plain ∪̇ semantics).
                    None => true,
                    // With a comparator the larger record (the successor
                    // state in the CPO) survives; the stored record is read
                    // out once for the comparison — or not at all when the
                    // scratch still holds it from the preceding probe.
                    Some(cmp) => {
                        let handle = *slot.get();
                        if self.scratch_handle != Some(handle) {
                            self.store.view(handle).read_into(&mut self.scratch);
                            self.scratch_handle = Some(handle);
                        }
                        cmp(delta, &self.scratch) == Ordering::Greater
                    }
                };
                if replace {
                    self.dead_bytes += self.store.view(*slot.get()).framed_len();
                    *slot.get_mut() = self.store.append(delta);
                    MergeOutcome::Replaced
                } else {
                    MergeOutcome::Discarded
                }
            }
        };
        if outcome == MergeOutcome::Replaced {
            self.maybe_compact();
        }
        outcome
    }

    /// Rewrites the store without the dead bytes once they outweigh the live
    /// ones.  A pure page-to-page copy of each live record's serialized
    /// bytes; the old page buffers are recycled into the compacted store so
    /// steady-state churn reuses them instead of allocating.
    fn maybe_compact(&mut self) {
        if self.dead_bytes < COMPACT_MIN_DEAD_BYTES || self.dead_bytes * 2 < self.store.byte_len() {
            return;
        }
        let mut compacted = PagedRecords::new();
        for handle in self.index.values_mut() {
            *handle = compacted.append_serialized(self.store.view(*handle).payload());
        }
        let old = std::mem::replace(&mut self.store, compacted);
        let mut pool = PagePool::new();
        pool.recycle_all(old.into_pages());
        self.store.add_spare_buffers(pool.take(usize::MAX));
        self.dead_bytes = 0;
        // Compaction reassigned every handle; the cached one is stale.
        self.scratch_handle = None;
    }

    /// Copies every live record out of the paged store (unspecified order).
    pub(crate) fn for_each_record(&self, mut f: impl FnMut(Record)) {
        for &handle in self.index.values() {
            f(self.store.view(handle).materialize());
        }
    }

    #[cfg(test)]
    fn stored_bytes(&self) -> usize {
        self.store.byte_len()
    }
}

/// The partitioned solution set.
#[derive(Clone)]
pub struct SolutionSet {
    partitions: Vec<PartitionIndex>,
    key_fields: KeyFields,
    comparator: Option<RecordComparator>,
    /// How records are routed to partitions: Fx hashing (default) or range
    /// splitters.  Everything joining the solution set partition-locally —
    /// the workset, the constant input — must route with the same function,
    /// which the workset driver guarantees by sharing one router.
    router: PartitionRouter,
}

impl std::fmt::Debug for SolutionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolutionSet")
            .field("partitions", &self.partitions.len())
            .field("records", &self.len())
            .field("key_fields", &self.key_fields)
            .field("has_comparator", &self.comparator.is_some())
            .field("range_routed", &self.router.is_range())
            .finish()
    }
}

impl SolutionSet {
    /// Creates an empty solution set partitioned `parallelism` ways, keyed by
    /// the given record fields.
    pub fn new(key_fields: KeyFields, parallelism: usize) -> Self {
        let parallelism = parallelism.max(1);
        SolutionSet {
            partitions: (0..parallelism)
                .map(|_| PartitionIndex::default())
                .collect(),
            key_fields,
            comparator: None,
            router: PartitionRouter::hash(parallelism),
        }
    }

    /// Installs a comparator resolving conflicting delta records (the larger
    /// record under the comparator is retained).
    pub fn with_comparator(mut self, comparator: RecordComparator) -> Self {
        self.comparator = Some(comparator);
        self
    }

    /// Installs the partition routing function.  Must be set **before** any
    /// record is merged (the index does not re-partition existing records).
    ///
    /// # Panics
    /// If the router's parallelism differs from the set's, or the set
    /// already holds records.
    pub fn with_router(mut self, router: PartitionRouter) -> Self {
        assert_eq!(
            router.parallelism(),
            self.partitions.len(),
            "router parallelism must match the solution set"
        );
        assert!(
            self.is_empty(),
            "the routing function cannot change under stored records"
        );
        self.router = router;
        self
    }

    /// The partition routing function.
    pub fn router(&self) -> &PartitionRouter {
        &self.router
    }

    /// Builds a solution set from an initial set of records (`S0`).
    pub fn from_records(
        records: impl IntoIterator<Item = Record>,
        key_fields: KeyFields,
        parallelism: usize,
    ) -> Self {
        let mut set = SolutionSet::new(key_fields, parallelism);
        for record in records {
            set.merge(record);
        }
        set
    }

    /// The key fields records are identified by.
    pub fn key_fields(&self) -> &[usize] {
        &self.key_fields
    }

    /// Number of partitions.
    pub fn parallelism(&self) -> usize {
        self.partitions.len()
    }

    /// The partition index responsible for `record` (by its key fields).
    pub fn partition_of(&self, record: &Record) -> usize {
        self.router.route(record, &self.key_fields)
    }

    /// Total number of records in the solution set.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(PartitionIndex::len).sum()
    }

    /// True if the solution set holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the record stored for the key of `probe` (extracted from the
    /// given probe fields, which may differ from the solution key positions —
    /// e.g. workset records carry the vertex id in a different field).
    /// Copies the record out of its page.
    pub fn lookup_by(&self, probe: &Record, probe_fields: &[usize]) -> Option<Record> {
        let key = Key::extract(probe, probe_fields);
        self.lookup(&key)
    }

    /// Looks up the record stored under `key`, copying it out of its page —
    /// this is the user-facing boundary where a heap [`Record`] is
    /// materialized.  (The iteration drivers probe detached partitions
    /// through their scratch records instead, which does not allocate.)
    pub fn lookup(&self, key: &Key) -> Option<Record> {
        let partition = self.router.route_key(key);
        let p = &self.partitions[partition];
        let handle = *p.index.get(key)?;
        Some(p.store.view(handle).materialize())
    }

    /// Merges one delta record with the `∪̇` semantics.  A surviving delta is
    /// serialized into the partition's paged store; a discarded delta writes
    /// nothing.
    pub fn merge(&mut self, delta: Record) -> MergeOutcome {
        self.merge_ref(&delta)
    }

    /// [`SolutionSet::merge`] by reference — the caller keeps the delta (the
    /// iteration drivers reuse it to feed the workset expansion).
    pub(crate) fn merge_ref(&mut self, delta: &Record) -> MergeOutcome {
        // Routing goes through the record's key fields directly (one hash,
        // or one splitter search); the key itself is only materialised for
        // the index probe.
        let partition = self.router.route(delta, &self.key_fields);
        let key = Key::extract(delta, &self.key_fields);
        self.partitions[partition].merge(&self.comparator, key, delta)
    }

    /// Merges a whole delta set (the `∪̇` of one superstep's delta records),
    /// returning how many were applied (inserted or replaced).
    pub fn merge_all(&mut self, deltas: impl IntoIterator<Item = Record>) -> usize {
        deltas
            .into_iter()
            .map(|delta| self.merge(delta))
            .filter(MergeOutcome::applied)
            .count()
    }

    /// Merges every delta record serialized in `page` with the `∪̇`
    /// semantics, returning how many were applied.  This is the paged
    /// counterpart of [`SolutionSet::merge_all`]: delta sets arriving from
    /// an exchange are applied straight out of their sealed pages through
    /// one scratch record, never materializing a record vector.
    pub fn merge_page(&mut self, page: &RecordPage) -> usize {
        let mut scratch = Record::empty();
        let mut applied = 0usize;
        for view in page.reader() {
            view.read_into(&mut scratch);
            if self.merge_ref(&scratch).applied() {
                applied += 1;
            }
        }
        applied
    }

    /// Merges a sequence of sealed delta pages (see
    /// [`SolutionSet::merge_page`]), returning how many records were applied.
    pub fn merge_all_pages<'a>(
        &mut self,
        pages: impl IntoIterator<Item = &'a RecordPage>,
    ) -> usize {
        pages.into_iter().map(|page| self.merge_page(page)).sum()
    }

    /// Merges every delta record of a spilled run with the `∪̇` semantics,
    /// streaming the run off disk through one scratch record — the
    /// out-of-core counterpart of [`SolutionSet::merge_page`] for delta sets
    /// that exceeded the exchange's memory budget.  Returns how many records
    /// were applied.
    pub fn merge_run(&mut self, run: &SpilledRun) -> Result<usize> {
        let mut cursor = run.cursor()?;
        let mut scratch = Record::empty();
        let mut applied = 0usize;
        while cursor.next_into(&mut scratch)? {
            if self.merge_ref(&scratch).applied() {
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Merges a sequence of spilled delta runs (see
    /// [`SolutionSet::merge_run`]), returning how many records were applied.
    pub fn merge_all_runs<'a>(
        &mut self,
        runs: impl IntoIterator<Item = &'a SpilledRun>,
    ) -> Result<usize> {
        let mut applied = 0usize;
        for run in runs {
            applied += self.merge_run(run)?;
        }
        Ok(applied)
    }

    /// All records of one partition (unspecified order), copied out of the
    /// paged store.
    pub fn partition_records(&self, partition: usize) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.partitions[partition].len());
        self.partitions[partition].for_each_record(|r| out.push(r));
        out
    }

    /// All records of the solution set (unspecified order).
    pub fn records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for partition in &self.partitions {
            partition.for_each_record(|r| out.push(r));
        }
        out
    }

    /// Splits the solution set into its partitions for parallel superstep
    /// processing; [`SolutionSet::reassemble`] puts them back together.
    pub(crate) fn take_partitions(&mut self) -> Vec<PartitionIndex> {
        std::mem::take(&mut self.partitions)
    }

    /// Restores partitions taken with [`SolutionSet::take_partitions`].
    pub(crate) fn restore_partitions(&mut self, partitions: Vec<PartitionIndex>) {
        self.partitions = partitions;
    }

    /// The comparator, if one is installed.
    pub(crate) fn comparator(&self) -> Option<RecordComparator> {
        self.comparator.clone()
    }

    /// Merges a delta record directly into an already-detached partition
    /// index (used by the parallel superstep workers, which own their
    /// partition exclusively during a superstep).  Returns `true` when the
    /// delta was applied; the caller keeps the delta record and feeds the
    /// workset expansion from it — the stored copy is the serialized bytes
    /// in the partition's pages.
    pub(crate) fn merge_detached(
        partition: &mut PartitionIndex,
        comparator: &Option<RecordComparator>,
        key_fields: &[usize],
        delta: &Record,
    ) -> bool {
        let key = Key::extract(delta, key_fields);
        partition.merge(comparator, key, delta).applied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid_comparator() -> RecordComparator {
        // For Connected Components the CPO prefers *smaller* component ids,
        // so the record with the smaller cid is the "larger" (later) state.
        Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1)))
    }

    #[test]
    fn insert_lookup_and_len() {
        let mut s = SolutionSet::new(vec![0], 4);
        assert!(s.is_empty());
        assert_eq!(s.merge(Record::pair(1, 10)), MergeOutcome::Inserted);
        assert_eq!(s.merge(Record::pair(2, 20)), MergeOutcome::Inserted);
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 10);
        assert!(s.lookup(&Key::long(99)).is_none());
    }

    #[test]
    fn merge_without_comparator_always_replaces() {
        let mut s = SolutionSet::new(vec![0], 2);
        s.merge(Record::pair(1, 10));
        assert_eq!(s.merge(Record::pair(1, 99)), MergeOutcome::Replaced);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 99);
    }

    #[test]
    fn comparator_keeps_the_successor_state() {
        let mut s = SolutionSet::new(vec![0], 2).with_comparator(cid_comparator());
        s.merge(Record::pair(1, 10));
        // A larger cid is an older state: discarded.
        assert_eq!(s.merge(Record::pair(1, 50)), MergeOutcome::Discarded);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 10);
        // A smaller cid is a successor state: applied.
        assert_eq!(s.merge(Record::pair(1, 3)), MergeOutcome::Replaced);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 3);
    }

    #[test]
    fn merge_is_idempotent_under_comparator() {
        let mut s = SolutionSet::new(vec![0], 2).with_comparator(cid_comparator());
        s.merge(Record::pair(7, 4));
        let before = s.records();
        // Replaying the same delta (equal cid) must not count as a change.
        assert_eq!(s.merge(Record::pair(7, 4)), MergeOutcome::Discarded);
        let mut after = s.records();
        let mut before = before;
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn merge_all_counts_only_applied_records() {
        let mut s = SolutionSet::new(vec![0], 2).with_comparator(cid_comparator());
        s.merge(Record::pair(1, 5));
        let applied = s.merge_all(vec![
            Record::pair(1, 9), // discarded (worse)
            Record::pair(1, 2), // applied
            Record::pair(2, 7), // inserted
        ]);
        assert_eq!(applied, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_records_builds_the_index() {
        let s = SolutionSet::from_records((0..100).map(|i| Record::pair(i, i * 2)), vec![0], 8);
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            assert_eq!(s.lookup(&Key::long(i)).unwrap().long(1), i * 2);
        }
    }

    #[test]
    fn records_round_trip_across_partitions() {
        let s = SolutionSet::from_records((0..50).map(|i| Record::pair(i, i)), vec![0], 7);
        let mut all = s.records();
        all.sort();
        assert_eq!(all.len(), 50);
        let per_partition: usize = (0..7).map(|p| s.partition_records(p).len()).sum();
        assert_eq!(per_partition, 50);
        // Every record lives in the partition its key hashes to.
        for p in 0..7 {
            for r in s.partition_records(p) {
                assert_eq!(s.partition_of(&r), p);
            }
        }
    }

    #[test]
    fn lookup_by_alternate_probe_fields() {
        let mut s = SolutionSet::new(vec![0], 4);
        s.merge(Record::pair(5, 42));
        // Workset record (candidate, vid) carries the vid in field 1.
        let probe = Record::pair(99, 5);
        assert_eq!(s.lookup_by(&probe, &[1]).unwrap().long(1), 42);
        assert!(s.lookup_by(&probe, &[0]).is_none());
    }

    #[test]
    fn detached_partition_probe_uses_the_scratch_record() {
        let mut s = SolutionSet::new(vec![0], 1);
        s.merge(Record::pair(3, 30));
        s.merge(Record::pair(4, 40));
        let mut partitions = s.take_partitions();
        let p = &mut partitions[0];
        assert_eq!(p.get(&Key::long(3)).unwrap().long(1), 30);
        assert_eq!(p.get(&Key::long(4)).unwrap().long(1), 40);
        assert!(p.get(&Key::long(5)).is_none());
        // Applied deltas write through; the caller keeps the heap record.
        let delta = Record::pair(3, 99);
        assert!(SolutionSet::merge_detached(p, &None, &[0], &delta));
        assert_eq!(p.get(&Key::long(3)).unwrap().long(1), 99);
        s.restore_partitions(partitions);
        assert_eq!(s.lookup(&Key::long(3)).unwrap().long(1), 99);
    }

    #[test]
    fn replacement_churn_compacts_the_paged_store() {
        // One partition, a few keys, many replacements: without compaction
        // the append-only store would keep every dead version (~6 MiB here).
        let mut s = SolutionSet::new(vec![0], 1);
        let keys = 64i64;
        let rounds = 4096;
        for round in 0..rounds {
            for k in 0..keys {
                s.merge(Record::pair(k, round));
            }
        }
        assert_eq!(s.len(), keys as usize);
        for k in 0..keys {
            assert_eq!(s.lookup(&Key::long(k)).unwrap().long(1), rounds - 1);
        }
        // The live set is ~64 records * ~23 bytes; the store must stay near
        // the compaction bound, not hold the full replacement history.
        let stored = s.partitions[0].stored_bytes();
        assert!(
            stored < 3 * COMPACT_MIN_DEAD_BYTES,
            "store held {stored} bytes after churn — compaction did not run"
        );
    }

    #[test]
    fn merge_pages_matches_record_merge() {
        use dataflow::page::PageWriter;
        let deltas: Vec<Record> = (0..200).map(|i| Record::pair(i % 40, i % 7)).collect();

        let mut by_records = SolutionSet::new(vec![0], 4).with_comparator(cid_comparator());
        let applied_records = by_records.merge_all(deltas.iter().cloned());

        // Force several pages so the page boundary is crossed mid-stream.
        let mut writer = PageWriter::with_page_bytes(128);
        for delta in &deltas {
            writer.push(delta);
        }
        let pages = writer.finish();
        assert!(pages.len() > 1);
        let mut by_pages = SolutionSet::new(vec![0], 4).with_comparator(cid_comparator());
        let applied_pages = by_pages.merge_all_pages(pages.iter().map(Arc::as_ref));

        assert_eq!(applied_records, applied_pages);
        let mut a = by_records.records();
        let mut b = by_pages.records();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_spilled_runs_matches_record_merge() {
        use dataflow::page::PageWriter;
        use dataflow::spill::write_run_in;
        let deltas: Vec<Record> = (0..300).map(|i| Record::pair(i % 60, i % 11)).collect();

        let mut by_records = SolutionSet::new(vec![0], 3).with_comparator(cid_comparator());
        let applied_records = by_records.merge_all(deltas.iter().cloned());

        let dir = std::env::temp_dir().join(format!(
            "spinning-spill-test-solution-{}",
            std::process::id()
        ));
        let mut writer = PageWriter::with_page_bytes(128);
        for delta in &deltas[..150] {
            writer.push(delta);
        }
        let first = write_run_in(&dir, &writer.finish(), None).unwrap();
        let mut writer = PageWriter::with_page_bytes(128);
        for delta in &deltas[150..] {
            writer.push(delta);
        }
        let second = write_run_in(&dir, &writer.finish(), None).unwrap();

        let mut by_runs = SolutionSet::new(vec![0], 3).with_comparator(cid_comparator());
        let applied_runs = by_runs.merge_all_runs([&first, &second]).unwrap();
        assert_eq!(applied_records, applied_runs);
        let mut a = by_records.records();
        let mut b = by_runs.records();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        drop((first, second));
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn parallelism_of_zero_is_clamped_to_one() {
        let s = SolutionSet::new(vec![0], 0);
        assert_eq!(s.parallelism(), 1);
    }

    #[test]
    fn range_routed_solution_set_collocates_contiguous_keys() {
        use dataflow::prelude::{PartitionRouter, RangeBounds};
        let bounds = Arc::new(RangeBounds::from_sample(
            (0..100).map(Key::long).collect(),
            4,
        ));
        let mut s = SolutionSet::new(vec![0], 4)
            .with_router(PartitionRouter::range(bounds, 4))
            .with_comparator(cid_comparator());
        assert!(s.router().is_range());
        for i in 0..100 {
            s.merge(Record::pair(i, i + 1000));
        }
        assert_eq!(s.len(), 100);
        // Lookups route through the same splitters as merges.
        for i in 0..100 {
            assert_eq!(s.lookup(&Key::long(i)).unwrap().long(1), i + 1000);
            assert_eq!(
                s.partition_of(&Record::pair(i, 0)),
                s.router().route_key(&Key::long(i))
            );
        }
        // Every partition holds one contiguous, disjoint key interval.
        let mut max_seen = i64::MIN;
        for p in 0..4 {
            let mut keys: Vec<i64> = s.partition_records(p).iter().map(|r| r.long(0)).collect();
            keys.sort_unstable();
            if let (Some(&lo), Some(&hi)) = (keys.first(), keys.last()) {
                assert!(lo > max_seen, "partition {p} overlaps its predecessor");
                max_seen = hi;
            }
        }
        // The merge semantics are unchanged under range routing.
        assert_eq!(s.merge(Record::pair(5, 999)), MergeOutcome::Replaced);
        assert_eq!(s.merge(Record::pair(5, 1001)), MergeOutcome::Discarded);
    }

    #[test]
    #[should_panic(expected = "routing function cannot change")]
    fn router_cannot_change_under_stored_records() {
        use dataflow::prelude::PartitionRouter;
        let mut s = SolutionSet::new(vec![0], 2);
        s.merge(Record::pair(1, 1));
        let _ = s.with_router(PartitionRouter::hash(2));
    }
}
