//! The solution set: a partitioned, keyed index over the partial solution.
//!
//! Incremental iterations keep the partial solution `S` as persistent state
//! across iterations (Section 5.1).  `S` is a set of records uniquely
//! identified by a key; it is hash-partitioned on that key across the worker
//! partitions and each partition stores its share in a primary index
//! (a hash table here, mirroring the execution strategy of Figure 6).
//!
//! The delta set produced by an iteration is merged into `S` with the
//! modified union operator `∪̇`: a delta record replaces the record with the
//! same key.  Because the delta set is a bag, two delta records may target the
//! same key; an optional *comparator* then decides which record survives — the
//! record representing the successor state in the CPO is kept, exactly as
//! described at the end of Section 5.1.

use dataflow::key::FxHashMap;
use dataflow::page::RecordPage;
use dataflow::prelude::{Key, KeyFields, PartitionRouter, Record, Result, SpilledRun};
use std::cmp::Ordering;
use std::sync::Arc;

/// Decides which of two records for the same key is "larger", i.e. closer to
/// the supremum of the CPO.  The larger record is kept in the solution set.
pub type RecordComparator = Arc<dyn Fn(&Record, &Record) -> Ordering + Send + Sync>;

/// Outcome of merging one delta record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The key was not present; the record was inserted.
    Inserted,
    /// The key was present and the delta record replaced the old record.
    Replaced,
    /// The key was present and the comparator kept the existing record; the
    /// delta record was discarded.
    Discarded,
}

impl MergeOutcome {
    /// True if the solution set changed.
    pub fn applied(&self) -> bool {
        !matches!(self, MergeOutcome::Discarded)
    }
}

/// One partition of the solution set (a primary hash index keyed by the
/// record key).  Uses the same Fx hash as partition routing, so a record's
/// partition and its slot in the partition index come from one hash
/// computation.
pub(crate) type PartitionIndex = FxHashMap<Key, Record>;

/// The partitioned solution set.
#[derive(Clone)]
pub struct SolutionSet {
    partitions: Vec<PartitionIndex>,
    key_fields: KeyFields,
    comparator: Option<RecordComparator>,
    /// How records are routed to partitions: Fx hashing (default) or range
    /// splitters.  Everything joining the solution set partition-locally —
    /// the workset, the constant input — must route with the same function,
    /// which the workset driver guarantees by sharing one router.
    router: PartitionRouter,
}

impl std::fmt::Debug for SolutionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolutionSet")
            .field("partitions", &self.partitions.len())
            .field("records", &self.len())
            .field("key_fields", &self.key_fields)
            .field("has_comparator", &self.comparator.is_some())
            .field("range_routed", &self.router.is_range())
            .finish()
    }
}

impl SolutionSet {
    /// Creates an empty solution set partitioned `parallelism` ways, keyed by
    /// the given record fields.
    pub fn new(key_fields: KeyFields, parallelism: usize) -> Self {
        let parallelism = parallelism.max(1);
        SolutionSet {
            partitions: vec![PartitionIndex::default(); parallelism],
            key_fields,
            comparator: None,
            router: PartitionRouter::hash(parallelism),
        }
    }

    /// Installs a comparator resolving conflicting delta records (the larger
    /// record under the comparator is retained).
    pub fn with_comparator(mut self, comparator: RecordComparator) -> Self {
        self.comparator = Some(comparator);
        self
    }

    /// Installs the partition routing function.  Must be set **before** any
    /// record is merged (the index does not re-partition existing records).
    ///
    /// # Panics
    /// If the router's parallelism differs from the set's, or the set
    /// already holds records.
    pub fn with_router(mut self, router: PartitionRouter) -> Self {
        assert_eq!(
            router.parallelism(),
            self.partitions.len(),
            "router parallelism must match the solution set"
        );
        assert!(
            self.is_empty(),
            "the routing function cannot change under stored records"
        );
        self.router = router;
        self
    }

    /// The partition routing function.
    pub fn router(&self) -> &PartitionRouter {
        &self.router
    }

    /// Builds a solution set from an initial set of records (`S0`).
    pub fn from_records(
        records: impl IntoIterator<Item = Record>,
        key_fields: KeyFields,
        parallelism: usize,
    ) -> Self {
        let mut set = SolutionSet::new(key_fields, parallelism);
        for record in records {
            set.merge(record);
        }
        set
    }

    /// The key fields records are identified by.
    pub fn key_fields(&self) -> &[usize] {
        &self.key_fields
    }

    /// Number of partitions.
    pub fn parallelism(&self) -> usize {
        self.partitions.len()
    }

    /// The partition index responsible for `record` (by its key fields).
    pub fn partition_of(&self, record: &Record) -> usize {
        self.router.route(record, &self.key_fields)
    }

    /// Total number of records in the solution set.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(PartitionIndex::len).sum()
    }

    /// True if the solution set holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the record stored for the key of `probe` (extracted from the
    /// given probe fields, which may differ from the solution key positions —
    /// e.g. workset records carry the vertex id in a different field).
    pub fn lookup_by(&self, probe: &Record, probe_fields: &[usize]) -> Option<&Record> {
        let key = Key::extract(probe, probe_fields);
        self.lookup(&key)
    }

    /// Looks up the record stored under `key`.
    pub fn lookup(&self, key: &Key) -> Option<&Record> {
        let partition = self.router.route_key(key);
        self.partitions[partition].get(key)
    }

    /// Merges one delta record with the `∪̇` semantics.  The delta is moved
    /// in; a discarded delta is simply dropped, never copied.
    pub fn merge(&mut self, delta: Record) -> MergeOutcome {
        // Routing goes through the record's key fields directly (one hash,
        // or one splitter search); the key itself is only materialised for
        // the index probe.
        let partition = self.router.route(&delta, &self.key_fields);
        let key = Key::extract(&delta, &self.key_fields);
        Self::merge_into(
            &mut self.partitions[partition],
            &self.comparator,
            key,
            delta,
        )
        .0
    }

    /// Merges a whole delta set (the `∪̇` of one superstep's delta records),
    /// returning how many were applied (inserted or replaced).  Deltas are
    /// consumed, so applied records move into the index and discarded ones
    /// are dropped without ever being cloned.
    pub fn merge_all(&mut self, deltas: impl IntoIterator<Item = Record>) -> usize {
        deltas
            .into_iter()
            .map(|delta| self.merge(delta))
            .filter(MergeOutcome::applied)
            .count()
    }

    /// Merges every delta record serialized in `page` with the `∪̇`
    /// semantics, returning how many were applied.  This is the paged
    /// counterpart of [`SolutionSet::merge_all`]: delta sets arriving from
    /// an exchange are applied straight out of their sealed pages, without
    /// first materializing a record vector.
    pub fn merge_page(&mut self, page: &RecordPage) -> usize {
        page.reader()
            .map(|view| self.merge(view.materialize()))
            .filter(MergeOutcome::applied)
            .count()
    }

    /// Merges a sequence of sealed delta pages (see
    /// [`SolutionSet::merge_page`]), returning how many records were applied.
    pub fn merge_all_pages<'a>(
        &mut self,
        pages: impl IntoIterator<Item = &'a RecordPage>,
    ) -> usize {
        pages.into_iter().map(|page| self.merge_page(page)).sum()
    }

    /// Merges every delta record of a spilled run with the `∪̇` semantics,
    /// streaming the run off disk through one scratch record — the
    /// out-of-core counterpart of [`SolutionSet::merge_page`] for delta sets
    /// that exceeded the exchange's memory budget.  Returns how many records
    /// were applied.
    pub fn merge_run(&mut self, run: &SpilledRun) -> Result<usize> {
        let mut cursor = run.cursor()?;
        let mut applied = 0usize;
        while let Some(record) = cursor.next_record()? {
            if self.merge(record).applied() {
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Merges a sequence of spilled delta runs (see
    /// [`SolutionSet::merge_run`]), returning how many records were applied.
    pub fn merge_all_runs<'a>(
        &mut self,
        runs: impl IntoIterator<Item = &'a SpilledRun>,
    ) -> Result<usize> {
        let mut applied = 0usize;
        for run in runs {
            applied += self.merge_run(run)?;
        }
        Ok(applied)
    }

    /// The `∪̇` merge against one partition index.  The delta record is moved
    /// into the index when it survives; the returned reference points at the
    /// stored record so callers can expand it without copying.  Discarded
    /// deltas are dropped, never cloned.
    fn merge_into<'a>(
        partition: &'a mut PartitionIndex,
        comparator: &Option<RecordComparator>,
        key: Key,
        delta: Record,
    ) -> (MergeOutcome, Option<&'a Record>) {
        use std::collections::hash_map::Entry;
        match partition.entry(key) {
            Entry::Vacant(slot) => (MergeOutcome::Inserted, Some(slot.insert(delta))),
            Entry::Occupied(slot) => {
                let existing = slot.into_mut();
                let replace = match comparator {
                    // Without a comparator the delta always replaces the old
                    // record (plain ∪̇ semantics).
                    None => true,
                    // With a comparator the larger record (the successor
                    // state in the CPO) survives.
                    Some(cmp) => cmp(&delta, existing) == Ordering::Greater,
                };
                if replace {
                    *existing = delta;
                    (MergeOutcome::Replaced, Some(existing))
                } else {
                    (MergeOutcome::Discarded, None)
                }
            }
        }
    }

    /// All records of one partition (unspecified order).
    pub fn partition_records(&self, partition: usize) -> Vec<Record> {
        self.partitions[partition].values().cloned().collect()
    }

    /// All records of the solution set (unspecified order).
    pub fn records(&self) -> Vec<Record> {
        self.partitions
            .iter()
            .flat_map(|p| p.values().cloned())
            .collect()
    }

    /// Splits the solution set into its partitions for parallel superstep
    /// processing; [`SolutionSet::reassemble`] puts them back together.
    pub(crate) fn take_partitions(&mut self) -> Vec<PartitionIndex> {
        std::mem::take(&mut self.partitions)
    }

    /// Restores partitions taken with [`SolutionSet::take_partitions`].
    pub(crate) fn restore_partitions(&mut self, partitions: Vec<PartitionIndex>) {
        self.partitions = partitions;
    }

    /// The comparator, if one is installed.
    pub(crate) fn comparator(&self) -> Option<RecordComparator> {
        self.comparator.clone()
    }

    /// Merges a delta record directly into an already-detached partition
    /// index (used by the parallel superstep workers, which own their
    /// partition exclusively during a superstep).  Returns a reference to
    /// the stored record when the delta was applied, so the caller can feed
    /// the workset expansion without cloning it; `None` means discarded.
    pub(crate) fn merge_detached<'a>(
        partition: &'a mut PartitionIndex,
        comparator: &Option<RecordComparator>,
        key_fields: &[usize],
        delta: Record,
    ) -> Option<&'a Record> {
        let key = Key::extract(&delta, key_fields);
        Self::merge_into(partition, comparator, key, delta).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid_comparator() -> RecordComparator {
        // For Connected Components the CPO prefers *smaller* component ids,
        // so the record with the smaller cid is the "larger" (later) state.
        Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1)))
    }

    #[test]
    fn insert_lookup_and_len() {
        let mut s = SolutionSet::new(vec![0], 4);
        assert!(s.is_empty());
        assert_eq!(s.merge(Record::pair(1, 10)), MergeOutcome::Inserted);
        assert_eq!(s.merge(Record::pair(2, 20)), MergeOutcome::Inserted);
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 10);
        assert!(s.lookup(&Key::long(99)).is_none());
    }

    #[test]
    fn merge_without_comparator_always_replaces() {
        let mut s = SolutionSet::new(vec![0], 2);
        s.merge(Record::pair(1, 10));
        assert_eq!(s.merge(Record::pair(1, 99)), MergeOutcome::Replaced);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 99);
    }

    #[test]
    fn comparator_keeps_the_successor_state() {
        let mut s = SolutionSet::new(vec![0], 2).with_comparator(cid_comparator());
        s.merge(Record::pair(1, 10));
        // A larger cid is an older state: discarded.
        assert_eq!(s.merge(Record::pair(1, 50)), MergeOutcome::Discarded);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 10);
        // A smaller cid is a successor state: applied.
        assert_eq!(s.merge(Record::pair(1, 3)), MergeOutcome::Replaced);
        assert_eq!(s.lookup(&Key::long(1)).unwrap().long(1), 3);
    }

    #[test]
    fn merge_is_idempotent_under_comparator() {
        let mut s = SolutionSet::new(vec![0], 2).with_comparator(cid_comparator());
        s.merge(Record::pair(7, 4));
        let before = s.records();
        // Replaying the same delta (equal cid) must not count as a change.
        assert_eq!(s.merge(Record::pair(7, 4)), MergeOutcome::Discarded);
        let mut after = s.records();
        let mut before = before;
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn merge_all_counts_only_applied_records() {
        let mut s = SolutionSet::new(vec![0], 2).with_comparator(cid_comparator());
        s.merge(Record::pair(1, 5));
        let applied = s.merge_all(vec![
            Record::pair(1, 9), // discarded (worse)
            Record::pair(1, 2), // applied
            Record::pair(2, 7), // inserted
        ]);
        assert_eq!(applied, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_records_builds_the_index() {
        let s = SolutionSet::from_records((0..100).map(|i| Record::pair(i, i * 2)), vec![0], 8);
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            assert_eq!(s.lookup(&Key::long(i)).unwrap().long(1), i * 2);
        }
    }

    #[test]
    fn records_round_trip_across_partitions() {
        let s = SolutionSet::from_records((0..50).map(|i| Record::pair(i, i)), vec![0], 7);
        let mut all = s.records();
        all.sort();
        assert_eq!(all.len(), 50);
        let per_partition: usize = (0..7).map(|p| s.partition_records(p).len()).sum();
        assert_eq!(per_partition, 50);
        // Every record lives in the partition its key hashes to.
        for p in 0..7 {
            for r in s.partition_records(p) {
                assert_eq!(s.partition_of(&r), p);
            }
        }
    }

    #[test]
    fn lookup_by_alternate_probe_fields() {
        let mut s = SolutionSet::new(vec![0], 4);
        s.merge(Record::pair(5, 42));
        // Workset record (candidate, vid) carries the vid in field 1.
        let probe = Record::pair(99, 5);
        assert_eq!(s.lookup_by(&probe, &[1]).unwrap().long(1), 42);
        assert!(s.lookup_by(&probe, &[0]).is_none());
    }

    #[test]
    fn merge_pages_matches_record_merge() {
        use dataflow::page::PageWriter;
        let deltas: Vec<Record> = (0..200).map(|i| Record::pair(i % 40, i % 7)).collect();

        let mut by_records = SolutionSet::new(vec![0], 4).with_comparator(cid_comparator());
        let applied_records = by_records.merge_all(deltas.iter().cloned());

        // Force several pages so the page boundary is crossed mid-stream.
        let mut writer = PageWriter::with_page_bytes(128);
        for delta in &deltas {
            writer.push(delta);
        }
        let pages = writer.finish();
        assert!(pages.len() > 1);
        let mut by_pages = SolutionSet::new(vec![0], 4).with_comparator(cid_comparator());
        let applied_pages = by_pages.merge_all_pages(pages.iter().map(Arc::as_ref));

        assert_eq!(applied_records, applied_pages);
        let mut a = by_records.records();
        let mut b = by_pages.records();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_spilled_runs_matches_record_merge() {
        use dataflow::page::PageWriter;
        use dataflow::spill::write_run_in;
        let deltas: Vec<Record> = (0..300).map(|i| Record::pair(i % 60, i % 11)).collect();

        let mut by_records = SolutionSet::new(vec![0], 3).with_comparator(cid_comparator());
        let applied_records = by_records.merge_all(deltas.iter().cloned());

        let dir = std::env::temp_dir().join(format!(
            "spinning-spill-test-solution-{}",
            std::process::id()
        ));
        let mut writer = PageWriter::with_page_bytes(128);
        for delta in &deltas[..150] {
            writer.push(delta);
        }
        let first = write_run_in(&dir, &writer.finish(), None).unwrap();
        let mut writer = PageWriter::with_page_bytes(128);
        for delta in &deltas[150..] {
            writer.push(delta);
        }
        let second = write_run_in(&dir, &writer.finish(), None).unwrap();

        let mut by_runs = SolutionSet::new(vec![0], 3).with_comparator(cid_comparator());
        let applied_runs = by_runs.merge_all_runs([&first, &second]).unwrap();
        assert_eq!(applied_records, applied_runs);
        let mut a = by_records.records();
        let mut b = by_runs.records();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        drop((first, second));
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn parallelism_of_zero_is_clamped_to_one() {
        let s = SolutionSet::new(vec![0], 0);
        assert_eq!(s.parallelism(), 1);
    }

    #[test]
    fn range_routed_solution_set_collocates_contiguous_keys() {
        use dataflow::prelude::{PartitionRouter, RangeBounds};
        let bounds = Arc::new(RangeBounds::from_sample(
            (0..100).map(Key::long).collect(),
            4,
        ));
        let mut s = SolutionSet::new(vec![0], 4)
            .with_router(PartitionRouter::range(bounds, 4))
            .with_comparator(cid_comparator());
        assert!(s.router().is_range());
        for i in 0..100 {
            s.merge(Record::pair(i, i + 1000));
        }
        assert_eq!(s.len(), 100);
        // Lookups route through the same splitters as merges.
        for i in 0..100 {
            assert_eq!(s.lookup(&Key::long(i)).unwrap().long(1), i + 1000);
            assert_eq!(
                s.partition_of(&Record::pair(i, 0)),
                s.router().route_key(&Key::long(i))
            );
        }
        // Every partition holds one contiguous, disjoint key interval.
        let mut max_seen = i64::MIN;
        for p in 0..4 {
            let mut keys: Vec<i64> = s.partition_records(p).iter().map(|r| r.long(0)).collect();
            keys.sort_unstable();
            if let (Some(&lo), Some(&hi)) = (keys.first(), keys.last()) {
                assert!(lo > max_seen, "partition {p} overlaps its predecessor");
                max_seen = hi;
            }
        }
        // The merge semantics are unchanged under range routing.
        assert_eq!(s.merge(Record::pair(5, 999)), MergeOutcome::Replaced);
        assert_eq!(s.merge(Record::pair(5, 1001)), MergeOutcome::Discarded);
    }

    #[test]
    #[should_panic(expected = "routing function cannot change")]
    fn router_cannot_change_under_stored_records() {
        use dataflow::prelude::PartitionRouter;
        let mut s = SolutionSet::new(vec![0], 2);
        s.merge(Record::pair(1, 1));
        let _ = s.with_router(PartitionRouter::hash(2));
    }
}
