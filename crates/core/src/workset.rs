//! Incremental (workset) iterations — the paper's primary contribution
//! (Section 5).
//!
//! A workset iteration is the complex operator `(Δ, S0, W0)`.  The partial
//! solution `S` is a keyed set of records held in a partitioned index across
//! the workers ([`SolutionSet`]); the working set `W` holds the candidate
//! updates of the current superstep, partitioned the same way.  The step
//! function `Δ` computes, from `Si` and `Wi`, the delta set `Di+1` (records
//! that are merged into `S` with the `∪̇` operator) and the next working set
//! `Wi+1`.
//!
//! The runtime implements `Δ` as the two-stage template of Figures 5 and 6:
//!
//! 1. a **solution-set join** of the working set with `S` on the identifying
//!    key, executing the user's [`UpdateFunction`] — as an `InnerCoGroup`
//!    (one invocation per key with all candidates, the *batch incremental*
//!    variant) or as a `Match` (one invocation per workset record, the
//!    *microstep* variant);
//! 2. a **workset expansion** joining each applied delta record with the
//!    cached, partitioned constant input `N` (e.g. the graph's adjacency
//!    list), executing the user's [`ExpandFunction`] to emit the candidate
//!    updates of the next superstep.
//!
//! Because `S`, `W` and `N` are co-partitioned on the identifying key, both
//! stages run locally inside each partition; only the newly produced workset
//! records may cross partition boundaries, exactly as in the execution plan
//! of Figure 6.  Execution proceeds in supersteps separated by a barrier, or
//! — when the step function meets the conditions of Section 5.2 — fully
//! asynchronously ([`ExecutionMode::AsynchronousMicrostep`], implemented in
//! [`crate::microstep`]).

use crate::checkpoint::{CheckpointPolicy, CheckpointStore};
use crate::solution_set::{PartitionIndex, RecordComparator, SolutionSet};
use crate::stats::{IterationRunStats, IterationStats};
use dataflow::fault::{FaultInjector, FaultSite};
use dataflow::key::{group_ranges, sort_by_key, FxHashMap};
use dataflow::page::{
    denormalize_long, normalize_long, PageHandle, PagePool, PagedRecords, RecordPage,
};
use dataflow::prelude::{
    ChannelId, ClusterSpec, DataflowError, Key, KeyFields, MemoryBudget, PartitionRouter,
    RangeBounds, Record, Result, RunMerger, SharedPageChannel, SpillManager, SpilledRun,
    SpillingWriter, TransportHandle, Value,
};
use dataflow::range::sample_keys_into;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// User code of the solution-set join: decides how the workset candidates for
/// one key change the partial solution.
pub trait UpdateFunction: Send + Sync {
    /// Produces the delta record for `key`, given the current solution record
    /// (if any) and the candidate records from the working set.  Returning
    /// `None` leaves the solution untouched and produces no expansion.
    ///
    /// In batch-incremental mode `candidates` contains *all* workset records
    /// for the key in this superstep; in microstep modes it contains exactly
    /// one record.
    fn update(&self, key: &Key, current: Option<&Record>, candidates: &[Record]) -> Option<Record>;
}

/// Wraps a closure as an [`UpdateFunction`].
pub struct UpdateClosure<F>(pub F);

impl<F> UpdateFunction for UpdateClosure<F>
where
    F: Fn(&Key, Option<&Record>, &[Record]) -> Option<Record> + Send + Sync,
{
    fn update(&self, key: &Key, current: Option<&Record>, candidates: &[Record]) -> Option<Record> {
        (self.0)(key, current, candidates)
    }
}

/// User code of the workset expansion: turns an applied delta record into new
/// workset records for the next superstep.
pub trait ExpandFunction: Send + Sync {
    /// Emits new workset records given the applied delta record and the
    /// records of the constant input that share its key (e.g. the out-edges
    /// of the updated vertex).
    fn expand(&self, delta: &Record, constant_matches: &[Record], out: &mut Vec<Record>);
}

/// Wraps a closure as an [`ExpandFunction`].
pub struct ExpandClosure<F>(pub F);

impl<F> ExpandFunction for ExpandClosure<F>
where
    F: Fn(&Record, &[Record], &mut Vec<Record>) + Send + Sync,
{
    fn expand(&self, delta: &Record, constant_matches: &[Record], out: &mut Vec<Record>) {
        (self.0)(delta, constant_matches, out)
    }
}

/// How the workset iteration is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The `InnerCoGroup` variant: candidates are grouped per key, the update
    /// function runs once per key and superstep, and deltas become visible at
    /// the superstep barrier.
    BatchIncremental,
    /// The `Match` variant: the update function runs once per workset record
    /// and applied deltas are visible immediately within the superstep
    /// (allowed because updates are partition-local, Section 5.3).
    Microstep,
    /// The `Match` variant without superstep barriers: worker partitions
    /// exchange workset records through queues and process them as they
    /// arrive; termination is detected with an in-flight message counter
    /// (Section 5.3's asynchronous execution).
    AsynchronousMicrostep,
}

/// How the solution set, the constant input and the superstep candidate
/// exchange partition their records across the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorksetRouting {
    /// Fx-hash routing (the default).
    #[default]
    Hash,
    /// Range routing: one splitter histogram is sampled from the initial
    /// solution and shared by the solution set, the constant-input index and
    /// every superstep's candidate exchange, so each worker owns one
    /// contiguous key interval for the whole run.  Correctness is identical
    /// to hash routing (equal keys still collocate); what changes is the
    /// delivered layout — the solution set can be read out range-partitioned
    /// and per-partition sorted, the interesting property the optimizer
    /// threads across the loop boundary.
    Range,
}

/// Configuration of a workset iteration run.
#[derive(Debug, Clone)]
pub struct WorksetConfig {
    /// Number of worker partitions.
    pub parallelism: usize,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Safety bound on the number of supersteps.
    pub max_supersteps: usize,
    /// Partition routing scheme for the solution set and candidate exchange.
    pub routing: WorksetRouting,
    /// Budget on the serialized candidate bytes the superstep exchange may
    /// buffer in memory: exceeding it spills sealed candidate pages to disk
    /// as runs sorted on the workset key, and the next superstep consumes
    /// them streaming (microstep) or through a k-way merge (batch).
    /// Unlimited by default.  The asynchronous mode exchanges records
    /// through bounded credit channels and ignores the budget — its memory
    /// is bounded by [`WorksetConfig::channel_credits`] instead.
    pub memory_budget: MemoryBudget,
    /// Credits of the bounded exchange channels — the backpressure knob.
    /// In asynchronous mode each worker→worker edge holds at most this many
    /// records in flight (senders block, with the communication timeout
    /// surfacing genuine stalls as typed errors); in superstep modes each
    /// outbox writer flushes its sealed pages to disk once this many are
    /// buffered, bounding exchange memory at `credits × page_size` per
    /// writer.  `None` (the default) falls back to the
    /// `SPINNING_CHANNEL_CREDITS` environment variable; with neither set,
    /// asynchronous channels use a generous default and superstep outboxes
    /// stay governed by the byte budget alone.  Results are identical either
    /// way — backpressure changes *when* data moves, never *what* is
    /// computed.
    pub channel_credits: Option<usize>,
    /// Superstep checkpointing and recovery policy.  `None` (the default)
    /// disables checkpointing: a failed superstep surfaces as a typed
    /// [`DataflowError`] immediately.  The asynchronous mode has no superstep
    /// boundaries and ignores the policy.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Deterministic fault injector threaded through the run's spill,
    /// checkpoint and pool-dispatch sites.  Defaults to the
    /// environment-configured injector ([`FaultInjector::from_env`]), which
    /// is disabled unless `SPINNING_FAULT_RATE` is set.
    pub fault: FaultInjector,
    /// Disables the page-native batch grouping path, forcing the superstep
    /// join to materialize and sort heap records even where it could group
    /// candidates straight off their sealed pages.  The two paths are
    /// byte-identical (the equivalence tests assert it); the switch exists
    /// for those tests and for isolating regressions.
    pub force_materialized: bool,
    /// The transport the superstep exchange ships its pages through.
    /// Defaults to the in-process backend (a cluster of one).  With a
    /// multi-process transport the run becomes one SPMD worker of a cluster:
    /// every process must call [`WorksetIteration::run`] with the *same*
    /// initial solution, initial workset, constant input and configuration;
    /// each keeps only the partitions it owns and the supersteps stay in
    /// lockstep through the channel and a per-superstep stats barrier.
    pub transport: TransportHandle,
}

impl WorksetConfig {
    /// Batch-incremental execution with the given parallelism.
    pub fn new(parallelism: usize) -> Self {
        WorksetConfig {
            parallelism,
            mode: ExecutionMode::BatchIncremental,
            max_supersteps: 100_000,
            routing: WorksetRouting::Hash,
            memory_budget: MemoryBudget::unlimited(),
            channel_credits: None,
            checkpoint: None,
            fault: FaultInjector::from_env(),
            force_materialized: false,
            transport: TransportHandle::default(),
        }
    }

    /// Sets whether the batch superstep join must materialize heap records
    /// instead of grouping candidates off their sealed pages.
    pub fn with_force_materialized(mut self, force: bool) -> Self {
        self.force_materialized = force;
        self
    }

    /// Sets the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the superstep bound.
    pub fn with_max_supersteps(mut self, max: usize) -> Self {
        self.max_supersteps = max;
        self
    }

    /// Sets the partition routing scheme.
    pub fn with_routing(mut self, routing: WorksetRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Shorthand for [`WorksetRouting::Range`].
    pub fn with_range_routing(self) -> Self {
        self.with_routing(WorksetRouting::Range)
    }

    /// Sets the superstep exchange's memory budget.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Sets the exchange channel credits (see
    /// [`WorksetConfig::channel_credits`]).  Takes precedence over the
    /// `SPINNING_CHANNEL_CREDITS` environment variable.
    pub fn with_channel_credits(mut self, credits: usize) -> Self {
        self.channel_credits = Some(credits.max(1));
        self
    }

    /// Enables superstep checkpointing: every `interval` supersteps the
    /// solution set and the pending workset queues are snapshotted under
    /// `dir`, and a failed superstep restores the newest valid checkpoint
    /// and retries instead of failing the run.
    pub fn with_checkpoint(self, interval: usize, dir: impl Into<PathBuf>) -> Self {
        self.with_checkpoint_policy(CheckpointPolicy::new(interval, dir))
    }

    /// Enables superstep checkpointing with an explicit policy (interval,
    /// directory, retry budget, backoff base).
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Installs a fault injector (replacing the environment-configured one).
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// Installs the transport the superstep exchange runs over (see the
    /// [`WorksetConfig::transport`] field for the SPMD contract).
    pub fn with_transport(mut self, transport: TransportHandle) -> Self {
        self.transport = transport;
        self
    }
}

/// The result of a workset iteration.
#[derive(Debug)]
pub struct WorksetResult {
    /// The partial solution after the last superstep.  Only a fixpoint when
    /// [`WorksetResult::converged`] is `true`.
    pub solution: Vec<Record>,
    /// Number of supersteps executed (1 for asynchronous execution, which has
    /// no superstep structure).
    pub supersteps: usize,
    /// `true` when the working set drained (the fixpoint was reached);
    /// `false` when the run was truncated by
    /// [`WorksetConfig::max_supersteps`] and the solution is partial.
    pub converged: bool,
    /// Per-superstep statistics.
    pub stats: IterationRunStats,
}

/// The incremental iteration operator `(Δ, S0, W0)`.
///
/// See the module documentation for the structure of the step function.
#[derive(Clone)]
pub struct WorksetIteration {
    /// Key fields identifying records in the solution set.
    pub(crate) solution_key: KeyFields,
    /// Fields of a *workset* record holding the key of the solution record it
    /// targets.
    pub(crate) workset_key: KeyFields,
    /// The constant ("topology") input `N`, cached partitioned and indexed.
    pub(crate) constant_input: Arc<Vec<Record>>,
    /// Fields of a *constant input* record forming its join key.
    pub(crate) constant_key: KeyFields,
    /// Fields of a *delta* record used to look up matching constant records.
    pub(crate) delta_key: KeyFields,
    /// The solution-set join UDF.
    pub(crate) update: Arc<dyn UpdateFunction>,
    /// The workset expansion UDF.
    pub(crate) expand: Arc<dyn ExpandFunction>,
    /// Conflict resolution for the `∪̇` merge.
    pub(crate) comparator: Option<RecordComparator>,
}

/// Builder for [`WorksetIteration`].
pub struct WorksetIterationBuilder {
    iteration: WorksetIteration,
}

impl WorksetIteration {
    /// Starts building a workset iteration whose solution records are
    /// identified by `solution_key` and whose workset records carry that key
    /// in `workset_key`.
    pub fn builder(
        solution_key: KeyFields,
        workset_key: KeyFields,
        update: Arc<dyn UpdateFunction>,
        expand: Arc<dyn ExpandFunction>,
    ) -> WorksetIterationBuilder {
        WorksetIterationBuilder {
            iteration: WorksetIteration {
                solution_key,
                workset_key,
                constant_input: Arc::new(Vec::new()),
                constant_key: vec![0],
                delta_key: vec![0],
                update,
                expand,
                comparator: None,
            },
        }
    }

    /// Runs the iteration from the initial solution `S0` and working set `W0`.
    ///
    /// With a multi-process [`WorksetConfig::transport`] this call is one
    /// SPMD worker of a cluster: every process passes the same inputs and
    /// configuration, keeps only the partitions it owns, and the returned
    /// solution holds this process's owned partitions (concatenating the
    /// processes' solutions in index order reproduces the single-process
    /// result byte for byte).
    pub fn run(
        &self,
        initial_solution: Vec<Record>,
        initial_workset: Vec<Record>,
        config: &WorksetConfig,
    ) -> Result<WorksetResult> {
        if config.parallelism == 0 {
            return Err(DataflowError::InvalidPlan(
                "parallelism must be at least 1".into(),
            ));
        }
        let cluster = config.transport.cluster();
        if cluster.processes > 1 {
            // Contiguous equal partition blocks are what keeps ownership a
            // pure division; an uneven split is a configuration error.
            cluster.partitions_per_process(config.parallelism)?;
            if config.mode == ExecutionMode::AsynchronousMicrostep {
                return Err(DataflowError::InvalidPlan(
                    "asynchronous microstep execution is single-process; cluster runs \
                     synchronize through superstep barriers"
                        .into(),
                ));
            }
            if config.checkpoint.is_some() {
                return Err(DataflowError::InvalidPlan(
                    "superstep checkpointing is not supported in cluster mode; a failed \
                     superstep surfaces as a typed error instead"
                        .into(),
                ));
            }
        }
        let start = Instant::now();
        // The router (and, for range routing, its splitter histogram) is
        // built from the *full* inputs so every process derives the same
        // partitioning; ownership filtering happens only afterwards.
        let router = self.build_router(config, &initial_solution, &initial_workset);
        let mut initial_solution = initial_solution;
        if cluster.processes > 1 {
            initial_solution.retain(|record| {
                cluster.owns(router.route(record, &self.solution_key), config.parallelism)
            });
        }
        let mut solution = SolutionSet::new(self.solution_key.clone(), config.parallelism)
            .with_router(router.clone());
        if let Some(cmp) = &self.comparator {
            solution = solution.with_comparator(Arc::clone(cmp));
        }
        solution.merge_all(initial_solution);
        let constant_index = self.build_constant_index_routed(&router, &cluster);

        match config.mode {
            ExecutionMode::AsynchronousMicrostep => crate::microstep::run_async(
                self,
                solution,
                constant_index,
                initial_workset,
                &router,
                config,
                start,
            ),
            _ => self.run_supersteps(
                solution,
                constant_index,
                initial_workset,
                &router,
                config,
                start,
            ),
        }
    }

    /// Builds the run's partition router.  Range routing samples the initial
    /// solution (which covers the key space — every vertex has a record) for
    /// an equi-depth splitter histogram; an empty solution falls back to the
    /// initial workset, and an empty sample degenerates to one effective
    /// partition without panicking.  The one router is shared by the
    /// solution set, the constant-input index and every superstep exchange,
    /// which is exactly the co-partitioning invariant the partition-local
    /// update join relies on.
    fn build_router(
        &self,
        config: &WorksetConfig,
        initial_solution: &[Record],
        initial_workset: &[Record],
    ) -> PartitionRouter {
        match config.routing {
            WorksetRouting::Hash => PartitionRouter::hash(config.parallelism),
            WorksetRouting::Range => {
                let mut sample = Vec::new();
                if initial_solution.is_empty() {
                    sample_keys_into(&mut sample, initial_workset, &self.workset_key);
                } else {
                    sample_keys_into(&mut sample, initial_solution, &self.solution_key);
                }
                PartitionRouter::range(
                    Arc::new(RangeBounds::from_sample(sample, config.parallelism)),
                    config.parallelism,
                )
            }
        }
    }

    /// Partitions and indexes the constant input with the run's router — the
    /// cached hash table of Figure 6.  Constant records live in the
    /// partition their join partners are routed to under either scheme; in a
    /// cluster, partitions owned by other processes stay empty (their owners
    /// build them from the same SPMD input).
    pub(crate) fn build_constant_index_routed(
        &self,
        router: &PartitionRouter,
        cluster: &ClusterSpec,
    ) -> Vec<FxHashMap<Key, Vec<Record>>> {
        let mut index: Vec<FxHashMap<Key, Vec<Record>>> =
            vec![FxHashMap::default(); router.parallelism()];
        for record in self.constant_input.iter() {
            let partition = router.route(record, &self.constant_key);
            if !cluster.owns(partition, router.parallelism()) {
                continue;
            }
            index[partition]
                .entry(Key::extract(record, &self.constant_key))
                .or_default()
                .push(record.clone());
        }
        index
    }

    /// Superstep-synchronised execution (both the batch-incremental and the
    /// microstep variant).
    fn run_supersteps(
        &self,
        mut solution: SolutionSet,
        constant_index: Vec<FxHashMap<Key, Vec<Record>>>,
        initial_workset: Vec<Record>,
        router: &PartitionRouter,
        config: &WorksetConfig,
        start: Instant,
    ) -> Result<WorksetResult> {
        let parallelism = config.parallelism;
        let comparator = solution.comparator();
        // The spill policy of every superstep exchange: the run's budget is
        // split over the parallelism² outbox writers.  Batch-incremental
        // flushes sort candidate runs on the workset key so the consumer can
        // merge-group them without materializing the workset; the microstep
        // consumer streams runs in arrival order, so its flushes skip the
        // sort entirely.
        let sort_on_flush =
            (config.mode != ExecutionMode::Microstep).then(|| self.workset_key.clone());
        // Channel credits cap the sealed pages each outbox writer buffers in
        // memory (flushing excess pages to disk as runs), bounding exchange
        // memory at `credits × page_size` per writer independent of the byte
        // budget.  Unset, the byte budget alone governs.
        let channel_credits = config
            .channel_credits
            .or_else(dataflow::credit::channel_credits_from_env);
        let spill = SpillManager::new(
            config.memory_budget.share(parallelism * parallelism),
            sort_on_flush,
        )
        .with_page_credits(channel_credits)
        .with_fault(config.fault.clone());
        // The run's communication state: one page channel carries every
        // superstep exchange (rounds are attempt-numbered and never reused,
        // so a failed attempt cannot pollute a retry) and one barrier channel
        // carries the per-superstep stats agreement.  Allocation order is
        // part of the SPMD contract — every process allocates these first.
        let comms = SuperstepComms {
            cluster: config.transport.cluster(),
            channel: config.transport.fresh_channel(parallelism),
            stats_channel: ChannelId::new(config.transport.allocate(), 0),
        };
        let mut exchange_round: u64 = 0;

        let mut queues: Vec<WorksetQueue> = Vec::with_capacity(parallelism);
        let per_queue = initial_workset.len() / parallelism + 1;
        for _ in 0..parallelism {
            queues.push(WorksetQueue::with_capacity(per_queue));
        }
        // Every process sees the full initial workset (the SPMD contract),
        // so the cluster-wide pending count is known up front without a
        // barrier — and it is what every process's loop condition starts
        // from, keeping the supersteps in lockstep from round one.
        let mut global_pending = initial_workset.len() as u64;
        // The initial workset is scattered by the driver, which co-owns it
        // with every partition: a local move, not an exchange, so it is not
        // serialized.  Partitions owned by other processes are dropped here;
        // their owners scatter the same records from their own copy.
        for record in initial_workset {
            let partition = router.route(&record, &self.workset_key);
            if comms.cluster.owns(partition, parallelism) {
                queues[partition].records.push(record);
            }
        }

        let mut run_stats = IterationRunStats::default();
        let mut superstep = 0usize;
        // Per-partition scratch buffers, reused across all supersteps instead
        // of re-allocating expansion/delta vectors inside each one.
        let mut scratch: Vec<StepScratch> =
            (0..parallelism).map(|_| StepScratch::default()).collect();
        // Queue buffers recycled from the previous superstep's drained
        // worksets, so steady-state supersteps allocate nothing for routing.
        let mut spare_queues: Vec<Vec<Record>> = Vec::with_capacity(parallelism);

        let store = config
            .checkpoint
            .as_ref()
            .map(|policy| CheckpointStore::new(&policy.dir, parallelism, config.fault.clone()));
        let mut pending = PendingRecoveryStats::default();
        // Checkpoint the initial consistent cut (superstep 0) so a failure in
        // the very first superstep has something to restore.
        if let Some(store) = &store {
            match write_superstep_checkpoint(store, 0, &solution, &queues) {
                Ok(bytes) => {
                    pending.checkpoints_written += 1;
                    pending.checkpoint_bytes += bytes as usize;
                }
                Err(error) => {
                    eprintln!(
                        "warning: checkpoint write for superstep 0 failed ({error}); \
                         the run continues without an initial checkpoint"
                    );
                    pending.checkpoint_write_failures += 1;
                }
            }
        }
        // Consecutive failed attempts at the current superstep (reset on
        // every success); bounded by the policy's retry budget.
        let mut retries_used = 0usize;

        while global_pending > 0 && superstep < config.max_supersteps {
            let attempt = superstep + 1;
            exchange_round += 1;
            match self.superstep_once(
                attempt,
                exchange_round,
                &comms,
                &mut solution,
                &mut queues,
                &mut spare_queues,
                &mut scratch,
                &constant_index,
                &comparator,
                router,
                &spill,
                config,
            ) {
                Ok((mut stats, next_pending)) => {
                    superstep = attempt;
                    global_pending = next_pending;
                    retries_used = 0;
                    if let (Some(store), Some(policy)) = (&store, &config.checkpoint) {
                        if superstep.is_multiple_of(policy.interval) {
                            // A failed checkpoint is not fatal: it only
                            // widens the window the next recovery replays —
                            // but it must be counted, not silently absorbed.
                            match write_superstep_checkpoint(store, superstep, &solution, &queues) {
                                Ok(bytes) => {
                                    pending.checkpoints_written += 1;
                                    pending.checkpoint_bytes += bytes as usize;
                                    store.prune(2);
                                }
                                Err(error) => {
                                    eprintln!(
                                        "warning: checkpoint write for superstep {superstep} \
                                         failed ({error}); a recovery would replay from the \
                                         previous checkpoint"
                                    );
                                    pending.checkpoint_write_failures += 1;
                                }
                            }
                        }
                    }
                    pending.fold_into(&mut stats);
                    run_stats.per_iteration.push(stats);
                }
                Err(error) => {
                    // Without a checkpoint policy the failure is final and
                    // surfaces as the typed error it already is.
                    let (Some(store), Some(policy)) = (&store, &config.checkpoint) else {
                        return Err(error);
                    };
                    retries_used += 1;
                    pending.retries += 1;
                    if retries_used > policy.max_retries {
                        return Err(DataflowError::RecoveryExhausted {
                            superstep: attempt,
                            retries: policy.max_retries,
                            last: Box::new(error),
                        });
                    }
                    std::thread::sleep(policy.backoff_for(retries_used));
                    // Roll back to the newest checkpoint at or before the
                    // last completed superstep; corrupt or partial
                    // checkpoints are skipped inside `restore_latest`.
                    let Some(restored) = store.restore_latest(superstep) else {
                        return Err(error);
                    };
                    let mut rebuilt = SolutionSet::new(self.solution_key.clone(), parallelism)
                        .with_router(router.clone());
                    if let Some(cmp) = &self.comparator {
                        rebuilt = rebuilt.with_comparator(Arc::clone(cmp));
                    }
                    rebuilt.merge_all(restored.solution.into_iter().flatten());
                    solution = rebuilt;
                    // Snapshotted queues were already partition-routed when
                    // they were taken, so they reload as plain local records.
                    queues = restored
                        .workset
                        .into_iter()
                        .map(|records| WorksetQueue {
                            records,
                            pages: Vec::new(),
                            runs: Vec::new(),
                        })
                        .collect();
                    // Checkpointing is rejected in cluster mode, so this is
                    // a single-process run and the local count *is* the
                    // global one.
                    global_pending = queues.iter().map(|q| q.len() as u64).sum();
                    run_stats.per_iteration.truncate(restored.superstep);
                    superstep = restored.superstep;
                    pending.recoveries += 1;
                }
            }
        }
        // Flush counters of trailing checkpoints/recoveries that no later
        // superstep absorbed (e.g. the superstep-0 checkpoint of a run whose
        // workset was empty).
        if let Some(last) = run_stats.per_iteration.last_mut() {
            pending.fold_into(last);
        }
        // The run is over; its checkpoints are dead weight on disk.
        if let Some(store) = &store {
            store.clear();
        }

        // The loop exits either because every queue drained cluster-wide
        // (the fixpoint) or because the superstep bound truncated the run.
        let converged = global_pending == 0;
        run_stats.total_elapsed = start.elapsed();
        Ok(WorksetResult {
            solution: solution.records(),
            supersteps: superstep,
            converged,
            stats: run_stats,
        })
    }

    /// Runs one superstep across all partitions: consumes the queued
    /// worksets, applies deltas to the solution set, and exchanges the next
    /// superstep's candidates back into `queues` through the transport
    /// channel.  Returns the superstep's (cluster-agreed) stats and the
    /// cluster-wide count of pending candidates after the exchange.  On
    /// failure the solution partitions are restored (the pool waits for
    /// every sibling task), but the queue contents of the failed superstep
    /// are consumed — the caller recovers by restoring a checkpoint or
    /// surfacing the error.  (A failure mid-exchange abandons the round's
    /// partial channel state; `round` is never reused, so a retry starts
    /// clean.)
    #[allow(clippy::too_many_arguments)]
    fn superstep_once(
        &self,
        superstep: usize,
        round: u64,
        comms: &SuperstepComms,
        solution: &mut SolutionSet,
        queues: &mut Vec<WorksetQueue>,
        spare_queues: &mut Vec<Vec<Record>>,
        scratch: &mut [StepScratch],
        constant_index: &[FxHashMap<Key, Vec<Record>>],
        comparator: &Option<RecordComparator>,
        router: &PartitionRouter,
        spill: &SpillManager,
        config: &WorksetConfig,
    ) -> Result<(IterationStats, u64)> {
        let parallelism = config.parallelism;
        let step_start = Instant::now();
        let mut next_queues: Vec<WorksetQueue> = Vec::with_capacity(parallelism);
        for _ in 0..parallelism {
            let mut q = spare_queues.pop().unwrap_or_default();
            q.clear();
            next_queues.push(WorksetQueue {
                records: q,
                pages: Vec::new(),
                runs: Vec::new(),
            });
        }
        let worksets = std::mem::replace(queues, next_queues);
        let workset_size: usize = worksets.iter().map(WorksetQueue::len).sum();

        let mut solution_partitions = solution.take_partitions();
        let microstep = config.mode == ExecutionMode::Microstep;
        let page_native = !config.force_materialized;

        // Run the step function locally in every partition, one task per
        // partition on the persistent worker pool.  On the long tail
        // (hundreds of tiny supersteps) this dispatch — a deque push per
        // partition — *is* the superstep cost, which is why the pool
        // replaced the former per-superstep `std::thread::scope` spawns.
        let fault = &config.fault;
        let mut output_slots: Vec<Option<Result<PartitionOutput>>> =
            (0..parallelism).map(|_| None).collect();
        let scope_result = spinning_pool::global().try_scope(|scope| {
            for (partition, (((s_part, workset), scratch), slot)) in solution_partitions
                .iter_mut()
                .zip(worksets)
                .zip(scratch.iter_mut())
                .zip(output_slots.iter_mut())
                .enumerate()
            {
                let constant = &constant_index[partition];
                let comparator = comparator.clone();
                scope.spawn_labeled("workset-superstep", move || {
                    fault.panic_check(FaultSite::WorkerPanic, "workset-superstep");
                    *slot = Some(self.run_partition_superstep(
                        partition,
                        s_part,
                        workset,
                        constant,
                        &comparator,
                        microstep,
                        page_native,
                        router,
                        spill,
                        scratch,
                    ));
                });
            }
        });
        // The pool waits for every task before `try_scope` returns, so the
        // partitions can always be handed back — even when a sibling task
        // panicked or failed.
        solution.restore_partitions(solution_partitions);
        if let Err(panic) = scope_result {
            return Err(DataflowError::WorkerPanic {
                operator: "workset-superstep".into(),
                superstep,
                message: panic.message(),
            });
        }
        let outputs = output_slots
            .into_iter()
            .map(|slot| slot.expect("pool ran every superstep partition"))
            .collect::<Result<Vec<PartitionOutput>>>()?;

        // Exchange the new workset records (the superstep queue switch)
        // through the transport channel.  Records that stayed in their
        // partition are moved as heap objects; everything that crossed a
        // partition boundary travels as sealed pages through the channel —
        // pointer moves on the in-process backend, framed bytes on the wire
        // — or, past the memory budget, as spilled-run handles whose bytes
        // stay on this node's disk (runs bound for a remote process are
        // rematerialized into pages, since the peer can't read them).
        let mut stats = IterationStats::for_iteration(superstep);
        stats.workset_size = workset_size;
        for (partition, output) in outputs.into_iter().enumerate() {
            stats.elements_inspected += output.inspected;
            stats.elements_changed += output.changed;
            stats.messages_sent += output.messages_sent;
            stats.messages_shipped += output.messages_shipped;
            let local = output.outbox_local;
            if !local.is_empty() && queues[partition].records.is_empty() {
                let drained = std::mem::replace(&mut queues[partition].records, local);
                spare_queues.push(drained);
            } else {
                queues[partition].records.extend(local);
            }
            if comms.cluster.owns(partition, parallelism) {
                for (target, writer) in output.outbox_remote.into_iter().enumerate() {
                    let spilled = writer.finish()?;
                    stats.spilled_bytes += spilled.stats.spilled_bytes;
                    stats.spilled_runs += spilled.stats.spilled_runs;
                    stats.queue_high_water = stats.queue_high_water.max(spilled.pages_high_water);
                    if comms.cluster.owns(target, parallelism) {
                        comms
                            .channel
                            .send(round, partition, target, spilled.pages)?;
                        queues[target].runs.extend(spilled.runs);
                    } else {
                        let mut pages = spilled.pages;
                        for run in &spilled.runs {
                            pages.extend(run.read_pages()?);
                        }
                        comms.channel.send(round, partition, target, pages)?;
                    }
                }
                comms.channel.finish_round(round, partition)?;
            }
            // Source partitions owned by other processes ran as empty
            // no-ops here; their owners ship their pages and finish their
            // rounds.
            spare_queues.push(output.drained_workset);
        }
        for target in comms.cluster.owned_range(parallelism) {
            // Blocks until every source partition — local and remote —
            // finished the round; batches arrive ordered by source, the
            // same source-major order the in-process exchange appends in.
            for (_, pages) in comms.channel.recv(round, target)? {
                queues[target].pages.extend(pages);
            }
        }
        // Keep at most one recycled buffer per partition; the rest would
        // otherwise accumulate (with their capacities) for the whole run.
        spare_queues.truncate(parallelism);

        // Agree on the superstep cluster-wide: one all-gather sums the
        // per-process stats and pending-candidate counts, so every process
        // records identical rows and takes the same convergence decision.
        let local_pending: u64 = comms
            .cluster
            .owned_range(parallelism)
            .map(|p| queues[p].len() as u64)
            .sum();
        let local = [
            stats.workset_size as u64,
            stats.elements_inspected as u64,
            stats.elements_changed as u64,
            stats.messages_sent as u64,
            stats.messages_shipped as u64,
            stats.spilled_bytes as u64,
            stats.spilled_runs as u64,
            local_pending,
            stats.queue_high_water as u64,
        ];
        let mut totals = [0u64; 9];
        for values in config
            .transport
            .all_gather(comms.stats_channel, round, &local)?
        {
            for (slot, (total, value)) in totals.iter_mut().zip(&values).enumerate() {
                // Slot 8 is the queue high-water mark, a maximum over the
                // processes; every other counter sums.
                if slot == 8 {
                    *total = (*total).max(*value);
                } else {
                    *total += value;
                }
            }
        }
        stats.workset_size = totals[0] as usize;
        stats.elements_inspected = totals[1] as usize;
        stats.elements_changed = totals[2] as usize;
        stats.messages_sent = totals[3] as usize;
        stats.messages_shipped = totals[4] as usize;
        stats.spilled_bytes = totals[5] as usize;
        stats.spilled_runs = totals[6] as usize;
        stats.queue_high_water = totals[8] as usize;
        stats.elapsed = step_start.elapsed();
        Ok((stats, totals[7]))
    }

    /// Executes one superstep inside one partition.
    #[allow(clippy::too_many_arguments)]
    fn run_partition_superstep(
        &self,
        partition: usize,
        s_part: &mut PartitionIndex,
        mut workset: WorksetQueue,
        constant: &FxHashMap<Key, Vec<Record>>,
        comparator: &Option<RecordComparator>,
        microstep: bool,
        page_native: bool,
        router: &PartitionRouter,
        spill: &SpillManager,
        scratch: &mut StepScratch,
    ) -> Result<PartitionOutput> {
        let mut output = PartitionOutput::new(router.parallelism(), spill);
        let StepScratch {
            expand: expand_buffer,
            deltas,
            page_scratch,
            freelist,
            pool,
            pairs,
            group,
        } = scratch;
        // Page buffers recovered from the workset this partition consumed
        // *last* superstep seed this superstep's outbox writers, closing the
        // recycling loop: at steady state the exchange writes into buffers it
        // drained one superstep earlier instead of allocating fresh pages.
        for writer in &mut output.outbox_remote {
            writer.add_spare_buffers(pool.take(2));
        }

        let mut apply_and_expand =
            |delta: Record, s_part: &mut PartitionIndex, output: &mut PartitionOutput| {
                // A surviving delta is serialized into the partition's paged
                // index; the caller-owned heap record feeds the expansion, so
                // nothing is cloned and discarded deltas write nothing.
                if !SolutionSet::merge_detached(s_part, comparator, &self.solution_key, &delta) {
                    return;
                }
                output.changed += 1;
                let matches = constant
                    .get(&Key::extract(&delta, &self.delta_key))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                expand_buffer.clear();
                self.expand.expand(&delta, matches, expand_buffer);
                for record in expand_buffer.drain(..) {
                    let target = router.route(&record, &self.workset_key);
                    output.messages_sent += 1;
                    if target == partition {
                        // Stays local: moved as a heap object, like a
                        // chained operator.
                        output.outbox_local.push(record);
                    } else {
                        // Leaves the partition: serialized into the target's
                        // open page; the exchange will move sealed pages.
                        output.messages_shipped += 1;
                        output.outbox_remote[target].push(&record);
                    }
                }
            };

        if microstep {
            // Match variant: one workset record at a time, updates visible
            // immediately.  Records that stayed local are consumed in place;
            // shipped candidates are deserialized straight out of the
            // received pages into the update/merge path through one reused
            // scratch record — delta application reads from pages without an
            // intermediate workset copy or per-record allocation.
            let mut records = std::mem::take(&mut workset.records);
            let mut handle =
                |record: &Record, s_part: &mut PartitionIndex, output: &mut PartitionOutput| {
                    output.inspected += 1;
                    let key = Key::extract(record, &self.workset_key);
                    let delta = {
                        let current = s_part.get(&key);
                        self.update
                            .update(&key, current, std::slice::from_ref(record))
                    };
                    if let Some(delta) = delta {
                        apply_and_expand(delta, s_part, output);
                    }
                };
            for record in records.drain(..) {
                handle(&record, s_part, &mut output);
            }
            for page in &workset.pages {
                for view in page.reader() {
                    view.read_into(page_scratch);
                    handle(page_scratch, s_part, &mut output);
                }
            }
            // Spilled candidates stream straight off disk through the same
            // scratch record — the queue never materializes them.
            for run in &workset.runs {
                spill.fault().io_check(FaultSite::SpillRead)?;
                let mut cursor = run.cursor()?;
                while cursor.next_into(page_scratch)? {
                    handle(page_scratch, s_part, &mut output);
                }
            }
            // The consumed pages' buffers feed the next superstep's outbox
            // writers (see the `add_spare_buffers` call above).
            pool.recycle_all(workset.pages.drain(..));
            output.drained_workset = records;
        } else if page_native
            && self.batch_group_paged(
                &workset,
                s_part,
                pool,
                pairs,
                group,
                &mut apply_and_expand,
                &mut output,
            )
        {
            // Page-native InnerCoGroup: the candidates were grouped straight
            // off their sealed pages (sorted by normalized key prefix, read
            // into a bounded group scratch) and each update's delta was
            // applied and expanded in place; only the deltas themselves
            // touch heap records.  The consumed pages recycle into the pool.
            pool.recycle_all(workset.pages.drain(..));
            let mut records = std::mem::take(&mut workset.records);
            freelist.append(&mut records);
            freelist.truncate(FREELIST_RECORDS);
            output.drained_workset = records;
        } else {
            // InnerCoGroup variant: materialize the partition's workset (the
            // local records are already owned; paged candidates are read out
            // of the received pages into records recycled from earlier
            // supersteps) and sort it by key so each group is a contiguous
            // run (no per-superstep map to build), one update per key,
            // deltas applied after the whole group pass (superstep semantics
            // — every lookup sees the previous superstep's state).
            let mut records = std::mem::take(&mut workset.records);
            records.reserve(workset.pages.iter().map(|p| p.record_count()).sum());
            for page in &workset.pages {
                for view in page.reader() {
                    let mut record = freelist.pop().unwrap_or_else(Record::empty);
                    view.read_into(&mut record);
                    records.push(record);
                }
            }
            pool.recycle_all(workset.pages.drain(..));
            sort_by_key(&mut records, &self.workset_key);
            deltas.clear();
            if workset.runs.is_empty() {
                for (group_start, group_end) in group_ranges(&records, &self.workset_key) {
                    output.inspected += 1;
                    let candidates = &records[group_start..group_end];
                    let key = Key::extract(&candidates[0], &self.workset_key);
                    if let Some(delta) = self.update.update(&key, s_part.get(&key), candidates) {
                        deltas.push(delta);
                    }
                }
            } else {
                // Out-of-core grouping: the spilled candidate runs are
                // sorted on the workset key, so merging them with the sorted
                // in-memory residue yields each key's candidates contiguously
                // — one group is buffered at a time, the spilled part of the
                // workset never materializes.  Deltas still apply after the
                // whole pass (superstep semantics are unchanged).
                spill.fault().io_check(FaultSite::SpillRead)?;
                let merger = RunMerger::over_runs(
                    &workset.runs,
                    std::mem::take(&mut records),
                    self.workset_key.clone(),
                )?;
                let inspected = &mut output.inspected;
                merger.for_each_group(|key, candidates| {
                    *inspected += 1;
                    if let Some(delta) = self.update.update(key, s_part.get(key), candidates) {
                        deltas.push(delta);
                    }
                    // Consumed candidates recycle into the freelist —
                    // capped here, per group, so the pass over a
                    // larger-than-memory spilled workset never
                    // accumulates every record buffer it streamed.
                    freelist.append(candidates);
                    freelist.truncate(FREELIST_RECORDS);
                })?;
            }
            for delta in deltas.drain(..) {
                apply_and_expand(delta, s_part, &mut output);
            }
            // Consumed workset records feed the freelist (bounded) so the
            // next superstep's page materialization reuses their buffers.
            freelist.append(&mut records);
            freelist.truncate(FREELIST_RECORDS);
            output.drained_workset = records;
        }
        Ok(output)
    }

    /// The page-native InnerCoGroup build: groups the partition's candidates
    /// by key without materializing a heap record per candidate.  Local
    /// records are serialized into a scratch paged store, shipped pages are
    /// adopted by pointer, and every candidate becomes one `(normalized key
    /// prefix, page handle)` pair.  Sorting the pairs is the key sort
    /// (normalization is order-preserving and, for a single-`Long` key, the
    /// prefix *is* the full key; the handle tiebreak keeps the sort stable),
    /// so each key's candidates are contiguous and are read into a reused
    /// group scratch only for the update call.  Each update's delta is
    /// handed to `apply` (the caller's apply-and-expand) immediately: a key
    /// is updated at most once per pass, so no probe can observe another
    /// key's fresh delta and the in-place application is observably
    /// identical to the materializing path's collect-then-apply — same
    /// groups, same candidate order, same delta and emission order — while
    /// the `∪̇` merge right after the probe reuses the partition's scratch
    /// record instead of re-reading the stored record.
    ///
    /// Returns `false` without touching `output` when the workset
    /// disqualifies the paged path (composite or non-`Long` key, no shipped
    /// pages to adopt, spilled runs that need the merging path); the caller
    /// falls back to materializing.
    #[allow(clippy::too_many_arguments)]
    fn batch_group_paged(
        &self,
        workset: &WorksetQueue,
        s_part: &mut PartitionIndex,
        pool: &mut PagePool,
        pairs: &mut Vec<(u64, PageHandle)>,
        group: &mut Vec<Record>,
        mut apply: impl FnMut(Record, &mut PartitionIndex, &mut PartitionOutput),
        output: &mut PartitionOutput,
    ) -> bool {
        let [key_field] = self.workset_key[..] else {
            return false;
        };
        // Without shipped pages the paged path would serialize every local
        // record just to sort handles — the in-place heap sort is cheaper.
        // Spilled runs take the streaming merge-group path instead.
        if workset.pages.is_empty() || !workset.runs.is_empty() {
            return false;
        }
        pairs.clear();
        let mut store = PagedRecords::new();
        store.add_spare_buffers(pool.take(2));
        let mut complete = true;
        for record in &workset.records {
            let Some(Value::Long(v)) = record.fields().get(key_field) else {
                complete = false;
                break;
            };
            pairs.push((u64::from_be_bytes(normalize_long(*v)), store.append(record)));
        }
        if complete {
            for page in &workset.pages {
                complete = store.adopt_page_scanned(page, |handle, view| {
                    match view.long_key_prefix(key_field) {
                        Some(prefix) => {
                            pairs.push((prefix, handle));
                            true
                        }
                        None => false,
                    }
                });
                if !complete {
                    break;
                }
            }
        }
        if !complete {
            // A non-`Long` key disqualified the page path mid-ingest; no
            // group ran yet, so the fallback re-reads the untouched workset.
            // Locally written page buffers are still worth recovering
            // (adopted pages fail the refcount check and are just dropped).
            pool.recycle_all(store.into_pages());
            return false;
        }
        // The pair sort *is* the candidate sort: same key order as the
        // heap-record sort (order-preserving normalization) and same
        // candidate order within a key (handles are insertion-ordered).
        pairs.sort_unstable();
        let mut start = 0;
        while start < pairs.len() {
            let prefix = pairs[start].0;
            let mut end = start + 1;
            while end < pairs.len() && pairs[end].0 == prefix {
                end += 1;
            }
            let len = end - start;
            if group.len() < len {
                group.resize_with(len, Record::empty);
            }
            for (slot, &(_, handle)) in group[..len].iter_mut().zip(&pairs[start..end]) {
                store.view(handle).read_into(slot);
            }
            output.inspected += 1;
            let key = Key::long(denormalize_long(prefix.to_be_bytes()));
            if let Some(delta) = self.update.update(&key, s_part.get(&key), &group[..len]) {
                apply(delta, s_part, output);
            }
            start = end;
        }
        // Locally written pages recycle; adopted pages are still co-owned by
        // the queue (the caller recycles those after draining it).
        pool.recycle_all(store.into_pages());
        true
    }
}

/// Checkpoint/recovery counters accumulated between successful supersteps and
/// folded into the next pushed [`IterationStats`] row.
#[derive(Default)]
pub(crate) struct PendingRecoveryStats {
    pub(crate) checkpoints_written: usize,
    pub(crate) checkpoint_bytes: usize,
    pub(crate) checkpoint_write_failures: usize,
    pub(crate) recoveries: usize,
    pub(crate) retries: usize,
}

impl PendingRecoveryStats {
    /// Moves the accumulated counters into `stats` and resets them.
    pub(crate) fn fold_into(&mut self, stats: &mut IterationStats) {
        stats.checkpoints_written += self.checkpoints_written;
        stats.checkpoint_bytes += self.checkpoint_bytes;
        stats.checkpoint_write_failures += self.checkpoint_write_failures;
        stats.recoveries += self.recoveries;
        stats.retries += self.retries;
        *self = PendingRecoveryStats::default();
    }
}

/// Materializes one partition's pending workset queue into plain records for
/// a checkpoint snapshot: local records are cloned, sealed pages and spilled
/// runs are read back.  The live queue is left untouched.
fn snapshot_queue(queue: &WorksetQueue) -> std::io::Result<Vec<Record>> {
    let mut records = queue.records.clone();
    records.reserve(queue.pages.iter().map(|p| p.record_count()).sum());
    for page in &queue.pages {
        for view in page.reader() {
            let mut record = Record::empty();
            view.read_into(&mut record);
            records.push(record);
        }
    }
    let mut scratch = Record::empty();
    for run in &queue.runs {
        let mut cursor = run.cursor()?;
        while cursor.next_into(&mut scratch)? {
            records.push(scratch.clone());
        }
    }
    Ok(records)
}

/// Snapshots the solution set and the pending workset queues as the given
/// superstep's checkpoint, returning the bytes written.
fn write_superstep_checkpoint(
    store: &CheckpointStore,
    superstep: usize,
    solution: &SolutionSet,
    queues: &[WorksetQueue],
) -> std::io::Result<u64> {
    let solution_parts: Vec<Vec<Record>> = (0..queues.len())
        .map(|p| solution.partition_records(p))
        .collect();
    let workset_parts = queues
        .iter()
        .map(snapshot_queue)
        .collect::<std::io::Result<Vec<_>>>()?;
    store.write(superstep, &solution_parts, &workset_parts)
}

/// One partition's incoming workset for a superstep: candidate records that
/// never left the partition (moved as heap objects), the sealed pages
/// shipped from peer partitions, and any candidate runs that spilled to disk
/// under the memory budget.
#[derive(Default)]
pub(crate) struct WorksetQueue {
    pub(crate) records: Vec<Record>,
    pub(crate) pages: Vec<Arc<RecordPage>>,
    pub(crate) runs: Vec<SpilledRun>,
}

impl WorksetQueue {
    fn with_capacity(records: usize) -> Self {
        WorksetQueue {
            records: Vec::with_capacity(records),
            pages: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Total candidate records queued.
    pub(crate) fn len(&self) -> usize {
        self.records.len()
            + self.pages.iter().map(|p| p.record_count()).sum::<usize>()
            + self.runs.iter().map(|r| r.record_count()).sum::<usize>()
    }
}

/// Cap on the per-partition record freelist (bounds the memory retained
/// between supersteps while still covering the tail, where worksets are
/// tiny).
const FREELIST_RECORDS: usize = 4096;

/// Cap on the page buffers one partition's pool retains between supersteps.
const POOL_PAGES: usize = 64;

/// Per-partition buffers reused across supersteps by the workset driver.
pub(crate) struct StepScratch {
    /// Buffer handed to the expand UDF.
    expand: Vec<Record>,
    /// Delta records of the current superstep (batch-incremental mode).
    deltas: Vec<Record>,
    /// Scratch record the microstep variant deserializes page views into.
    page_scratch: Record,
    /// Consumed records recycled into the next superstep's page
    /// materialization (batch-incremental mode).
    freelist: Vec<Record>,
    /// Page buffers recovered from consumed workset pages, reissued to the
    /// next superstep's outbox writers (and to the page-native grouping
    /// store), so steady-state supersteps allocate no new pages.
    pool: PagePool,
    /// `(normalized key prefix, handle)` pairs of the page-native grouping.
    pairs: Vec<(u64, PageHandle)>,
    /// Group scratch records the page-native grouping deserializes each
    /// key's candidates into (grows to the largest group, then stays).
    group: Vec<Record>,
}

impl Default for StepScratch {
    fn default() -> Self {
        StepScratch {
            expand: Vec::new(),
            deltas: Vec::new(),
            page_scratch: Record::empty(),
            freelist: Vec::new(),
            pool: PagePool::with_limit(POOL_PAGES),
            pairs: Vec::new(),
            group: Vec::new(),
        }
    }
}

/// The run-wide communication state of the superstep loop: one page channel
/// carries every superstep exchange and one barrier channel carries the
/// per-superstep stats agreement.  Both are allocated before the first
/// superstep, in the same order on every process (the transport's SPMD
/// contract).
struct SuperstepComms {
    /// The cluster shape (a single-process run is a cluster of one).
    cluster: ClusterSpec,
    /// The channel the superstep exchange ships sealed pages through.
    channel: SharedPageChannel,
    /// The barrier channel of the per-superstep stats all-gather.
    stats_channel: ChannelId,
}

/// What one partition produces during a superstep.
pub(crate) struct PartitionOutput {
    /// New workset records that stay in this partition (next superstep's
    /// local queue; moved, never serialized).
    pub(crate) outbox_local: Vec<Record>,
    /// One budgeted page writer per peer partition; the superstep exchange
    /// seals and moves the in-memory pages and the spilled-run handles.
    pub(crate) outbox_remote: Vec<SpillingWriter>,
    /// The (now empty) workset buffer, handed back for reuse as a queue.
    pub(crate) drained_workset: Vec<Record>,
    pub(crate) inspected: usize,
    pub(crate) changed: usize,
    pub(crate) messages_sent: usize,
    pub(crate) messages_shipped: usize,
}

impl PartitionOutput {
    pub(crate) fn new(parallelism: usize, spill: &SpillManager) -> Self {
        PartitionOutput {
            outbox_local: Vec::new(),
            outbox_remote: (0..parallelism).map(|_| spill.writer()).collect(),
            drained_workset: Vec::new(),
            inspected: 0,
            changed: 0,
            messages_sent: 0,
            messages_shipped: 0,
        }
    }
}

impl WorksetIterationBuilder {
    /// Sets the constant ("topology") input and its join keys: `constant_key`
    /// are the key fields of the constant records, `delta_key` the fields of
    /// a delta record used to look them up.
    pub fn constant_input(
        mut self,
        records: Arc<Vec<Record>>,
        constant_key: KeyFields,
        delta_key: KeyFields,
    ) -> Self {
        self.iteration.constant_input = records;
        self.iteration.constant_key = constant_key;
        self.iteration.delta_key = delta_key;
        self
    }

    /// Installs a comparator resolving conflicting delta records during the
    /// `∪̇` merge (the record closer to the supremum of the CPO wins).
    pub fn comparator(mut self, comparator: RecordComparator) -> Self {
        self.iteration.comparator = Some(comparator);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> WorksetIteration {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny "propagate the minimum" iteration over a 4-vertex path graph
    /// 0 - 1 - 2 - 3: solution records are (vid, value), workset records are
    /// (vid, candidate value), and the constant input holds the edges.
    fn min_propagation() -> WorksetIteration {
        let update = Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let best = candidates.iter().map(|r| r.long(1)).min().unwrap();
                match current {
                    Some(c) if c.long(1) <= best => None,
                    _ => Some(Record::pair(key.values()[0].as_long(), best)),
                }
            },
        ));
        let expand = Arc::new(ExpandClosure(
            |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
                for e in edges {
                    out.push(Record::pair(e.long(1), delta.long(1)));
                }
            },
        ));
        let edges: Vec<Record> = vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]
            .into_iter()
            .map(|(a, b)| Record::pair(a, b))
            .collect();
        WorksetIteration::builder(vec![0], vec![0], update, expand)
            .constant_input(Arc::new(edges), vec![0], vec![0])
            .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
            .build()
    }

    fn initial_state() -> (Vec<Record>, Vec<Record>) {
        let solution: Vec<Record> = (0..4).map(|v| Record::pair(v, v + 10)).collect();
        // Seed the workset with each vertex's own value as a candidate for its
        // neighbours.
        let workset = vec![
            Record::pair(1, 10),
            Record::pair(0, 11),
            Record::pair(2, 11),
            Record::pair(1, 12),
            Record::pair(3, 12),
            Record::pair(2, 13),
        ];
        (solution, workset)
    }

    fn check_converged(result: &WorksetResult) {
        let mut solution = result.solution.clone();
        solution.sort();
        assert_eq!(
            solution,
            vec![
                Record::pair(0, 10),
                Record::pair(1, 10),
                Record::pair(2, 10),
                Record::pair(3, 10)
            ]
        );
    }

    #[test]
    fn batch_incremental_reaches_the_fixpoint() {
        let (solution, workset) = initial_state();
        let iteration = min_propagation();
        let result = iteration
            .run(solution, workset, &WorksetConfig::new(2))
            .unwrap();
        check_converged(&result);
        assert!(result.converged);
        assert!(
            result.supersteps >= 3,
            "minimum needs to travel across the path"
        );
    }

    #[test]
    fn microstep_mode_reaches_the_same_fixpoint() {
        let (solution, workset) = initial_state();
        let iteration = min_propagation();
        let result = iteration
            .run(
                solution,
                workset,
                &WorksetConfig::new(2).with_mode(ExecutionMode::Microstep),
            )
            .unwrap();
        check_converged(&result);
    }

    #[test]
    fn parallelism_does_not_change_the_result() {
        let iteration = min_propagation();
        for parallelism in [1, 2, 4, 8] {
            let (solution, workset) = initial_state();
            let result = iteration
                .run(solution, workset, &WorksetConfig::new(parallelism))
                .unwrap();
            check_converged(&result);
        }
    }

    #[test]
    fn empty_workset_terminates_immediately() {
        let iteration = min_propagation();
        let result = iteration
            .run(vec![Record::pair(0, 5)], vec![], &WorksetConfig::new(2))
            .unwrap();
        assert_eq!(result.supersteps, 0);
        assert!(result.converged);
        assert_eq!(result.solution, vec![Record::pair(0, 5)]);
    }

    #[test]
    fn workset_shrinks_as_the_iteration_converges() {
        let (solution, workset) = initial_state();
        let iteration = min_propagation();
        let result = iteration
            .run(solution, workset, &WorksetConfig::new(1))
            .unwrap();
        let sizes: Vec<usize> = result
            .stats
            .per_iteration
            .iter()
            .map(|s| s.workset_size)
            .collect();
        assert!(sizes.last().copied().unwrap_or(0) <= sizes[0]);
        // The last superstep changes nothing (it only confirms convergence).
        assert_eq!(
            result.stats.per_iteration.last().unwrap().elements_changed,
            0
        );
    }

    #[test]
    fn max_supersteps_bounds_the_run() {
        let (solution, workset) = initial_state();
        let iteration = min_propagation();
        let result = iteration
            .run(
                solution,
                workset,
                &WorksetConfig::new(2).with_max_supersteps(1),
            )
            .unwrap();
        assert_eq!(result.supersteps, 1);
        // Hitting the superstep bound must be observable: the solution is
        // truncated, not a fixpoint.
        assert!(!result.converged);
    }

    #[test]
    fn truncated_run_becomes_converged_with_enough_supersteps() {
        let iteration = min_propagation();
        let (solution, workset) = initial_state();
        let full = iteration
            .run(solution, workset, &WorksetConfig::new(2))
            .unwrap();
        assert!(full.converged);
        // Bounding the run below the natural superstep count truncates it
        // (converged == false); at or above, the flag flips back to true.
        for max in 1..full.supersteps + 2 {
            let (solution, workset) = initial_state();
            let result = iteration
                .run(
                    solution,
                    workset,
                    &WorksetConfig::new(2).with_max_supersteps(max),
                )
                .unwrap();
            assert_eq!(
                result.converged,
                max >= full.supersteps,
                "max_supersteps={max}: ran {} supersteps",
                result.supersteps
            );
            if result.converged {
                check_converged(&result);
            }
        }
    }

    #[test]
    fn range_routing_reaches_the_same_fixpoint_in_every_mode() {
        let iteration = min_propagation();
        for mode in [
            ExecutionMode::BatchIncremental,
            ExecutionMode::Microstep,
            ExecutionMode::AsynchronousMicrostep,
        ] {
            for parallelism in [1, 2, 4, 8] {
                let (solution, workset) = initial_state();
                let result = iteration
                    .run(
                        solution,
                        workset,
                        &WorksetConfig::new(parallelism)
                            .with_mode(mode)
                            .with_range_routing(),
                    )
                    .unwrap();
                check_converged(&result);
                assert!(result.converged, "{mode:?} at parallelism {parallelism}");
            }
        }
    }

    #[test]
    fn range_routing_with_empty_inputs_does_not_panic() {
        let iteration = min_propagation();
        let config = WorksetConfig::new(4).with_range_routing();
        // Empty solution: splitters come from the workset sample.
        let result = iteration
            .run(vec![], vec![Record::pair(1, 5)], &config)
            .unwrap();
        assert!(result.converged);
        // Both empty: the degenerate one-partition histogram terminates
        // immediately.
        let result = iteration.run(vec![], vec![], &config).unwrap();
        assert_eq!(result.supersteps, 0);
        assert!(result.converged);
    }

    #[test]
    fn zero_parallelism_is_rejected() {
        let iteration = min_propagation();
        let mut config = WorksetConfig::new(1);
        config.parallelism = 0;
        assert!(iteration.run(vec![], vec![], &config).is_err());
    }

    /// Min propagation over a denser 96-vertex graph (ring plus chords), so
    /// keys receive several candidates per superstep and candidates cross
    /// partitions — the shapes the page-native grouping must reproduce
    /// exactly.
    fn dense_min_propagation() -> (WorksetIteration, Vec<Record>, Vec<Record>) {
        let n = 96i64;
        let update = Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let best = candidates.iter().map(|r| r.long(1)).min().unwrap();
                match current {
                    Some(c) if c.long(1) <= best => None,
                    _ => Some(Record::pair(key.values()[0].as_long(), best)),
                }
            },
        ));
        let expand = Arc::new(ExpandClosure(
            |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
                for e in edges {
                    out.push(Record::pair(e.long(1), delta.long(1)));
                }
            },
        ));
        let mut edges = Vec::new();
        for v in 0..n {
            for u in [(v + 1) % n, (v * 7 + 3) % n] {
                edges.push(Record::pair(v, u));
                edges.push(Record::pair(u, v));
            }
        }
        let iteration = WorksetIteration::builder(vec![0], vec![0], update, expand)
            .constant_input(Arc::new(edges), vec![0], vec![0])
            .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
            .build();
        let solution: Vec<Record> = (0..n).map(|v| Record::pair(v, v + 1000)).collect();
        let workset: Vec<Record> = (0..n)
            .map(|v| Record::pair((v + 1) % n, v + 1000))
            .collect();
        (iteration, solution, workset)
    }

    /// The page-native grouping path must be indistinguishable from the
    /// materializing path — same solution records in the same order, same
    /// superstep structure, same counters — across execution modes, routing
    /// schemes, parallelism and memory budgets (including the spill-forced
    /// budget, where the paged path defers to the run-merging fallback).
    #[test]
    fn page_native_path_is_byte_identical_to_materializing() {
        let (iteration, solution, workset) = dense_min_propagation();
        for mode in [ExecutionMode::BatchIncremental, ExecutionMode::Microstep] {
            for routing in [WorksetRouting::Hash, WorksetRouting::Range] {
                for parallelism in [1usize, 4] {
                    for budget in [MemoryBudget::unlimited(), MemoryBudget::bytes(0)] {
                        let config = WorksetConfig::new(parallelism)
                            .with_mode(mode)
                            .with_routing(routing)
                            .with_memory_budget(budget);
                        let label = format!(
                            "{mode:?}/{routing:?}/p{parallelism}/budget {:?}",
                            budget.limit()
                        );
                        let paged = iteration
                            .run(solution.clone(), workset.clone(), &config)
                            .unwrap();
                        let materialized = iteration
                            .run(
                                solution.clone(),
                                workset.clone(),
                                &config.clone().with_force_materialized(true),
                            )
                            .unwrap();
                        // Unsorted equality: the paths must agree on the
                        // records *and* the order the index emits them in.
                        assert_eq!(paged.solution, materialized.solution, "{label}");
                        assert_eq!(paged.supersteps, materialized.supersteps, "{label}");
                        assert!(paged.converged, "{label}");
                        for (a, b) in paged
                            .stats
                            .per_iteration
                            .iter()
                            .zip(&materialized.stats.per_iteration)
                        {
                            assert_eq!(a.workset_size, b.workset_size, "{label}");
                            assert_eq!(a.elements_inspected, b.elements_inspected, "{label}");
                            assert_eq!(a.elements_changed, b.elements_changed, "{label}");
                            assert_eq!(a.messages_sent, b.messages_sent, "{label}");
                            assert_eq!(a.messages_shipped, b.messages_shipped, "{label}");
                        }
                        // The zero budget must actually exercise the spilled
                        // path wherever candidates ship between partitions.
                        if budget == MemoryBudget::bytes(0) && parallelism > 1 {
                            assert!(
                                paged.stats.total_spilled_bytes() > 0,
                                "{label}: expected spilled candidates"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn non_long_keys_fall_back_without_changing_the_result() {
        use dataflow::prelude::Value;
        // Text-keyed min propagation on a 3-vertex path: the page-native
        // grouping cannot prefix-sort Text keys, so the paged and forced
        // materializing runs must take the same fallback and agree exactly.
        let update = Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let best = candidates.iter().map(|r| r.long(1)).min().unwrap();
                match current {
                    Some(c) if c.long(1) <= best => None,
                    _ => Some(Record::new(vec![
                        key.values()[0].clone(),
                        Value::Long(best),
                    ])),
                }
            },
        ));
        let expand = Arc::new(ExpandClosure(
            |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
                for e in edges {
                    out.push(Record::new(vec![
                        e.fields()[1].clone(),
                        delta.fields()[1].clone(),
                    ]));
                }
            },
        ));
        let names = ["a", "b", "c"];
        let mut edges = Vec::new();
        for w in [["a", "b"], ["b", "c"]] {
            edges.push(Record::new(vec![
                Value::Text(w[0].into()),
                Value::Text(w[1].into()),
            ]));
            edges.push(Record::new(vec![
                Value::Text(w[1].into()),
                Value::Text(w[0].into()),
            ]));
        }
        let iteration = WorksetIteration::builder(vec![0], vec![0], update, expand)
            .constant_input(Arc::new(edges), vec![0], vec![0])
            .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
            .build();
        let solution: Vec<Record> = names
            .iter()
            .enumerate()
            .map(|(i, n)| Record::new(vec![Value::Text((*n).into()), Value::Long(10 + i as i64)]))
            .collect();
        let workset: Vec<Record> = vec![
            Record::new(vec![Value::Text("b".into()), Value::Long(10)]),
            Record::new(vec![Value::Text("c".into()), Value::Long(11)]),
        ];
        let config = WorksetConfig::new(2);
        let paged = iteration
            .run(solution.clone(), workset.clone(), &config)
            .unwrap();
        let materialized = iteration
            .run(
                solution,
                workset,
                &config.clone().with_force_materialized(true),
            )
            .unwrap();
        assert_eq!(paged.solution, materialized.solution);
        assert!(paged.converged);
        assert!(paged.solution.iter().all(|r| r.long(1) == 10));
    }

    #[test]
    fn failed_checkpoint_writes_are_counted_not_fatal() {
        let (solution, workset) = initial_state();
        let iteration = min_propagation();
        let dir =
            std::env::temp_dir().join(format!("spinning-ckpt-fail-test-{}", std::process::id()));
        // The very first checkpoint write (the superstep-0 snapshot) fails;
        // the run must proceed on no checkpoint, reach the fixpoint, and
        // report the failure in its stats instead of erroring out.
        let config = WorksetConfig::new(2)
            .with_checkpoint(1, &dir)
            .with_fault(FaultInjector::failing_nth(FaultSite::CheckpointWrite, 0));
        let result = iteration.run(solution, workset, &config).unwrap();
        check_converged(&result);
        assert_eq!(result.stats.total_checkpoint_write_failures(), 1);
        // Later checkpoints (the injector fires exactly once) still landed.
        assert!(result.stats.total_checkpoints_written() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_track_inspections_and_changes() {
        let (solution, workset) = initial_state();
        let iteration = min_propagation();
        let result = iteration
            .run(solution, workset, &WorksetConfig::new(1))
            .unwrap();
        let total_changed: usize = result
            .stats
            .per_iteration
            .iter()
            .map(|s| s.elements_changed)
            .sum();
        // Vertices 0..=3 all improve at least once (to value 10).
        assert!(total_changed >= 4);
        assert!(result.stats.per_iteration[0].elements_inspected > 0);
        assert!(result.stats.total_messages() > 0);
    }

    /// Binds an ephemeral port and frees it, yielding an address a test
    /// cluster can use as its coordinator without colliding with parallel
    /// tests.
    fn free_coordinator_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        addr.to_string()
    }

    /// Runs `min_propagation` as a 2-process TCP cluster (both processes in
    /// this test process, connected through real sockets) and returns both
    /// workers' results in index order.
    fn run_tcp_cluster(
        configure: impl Fn(WorksetConfig) -> WorksetConfig + Send + Sync,
    ) -> Vec<WorksetResult> {
        let coordinator = free_coordinator_addr();
        let configure = &configure;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|index| {
                    let coordinator = coordinator.clone();
                    scope.spawn(move || {
                        let spec = ClusterSpec::new(2, index).expect("spec");
                        let transport = TransportHandle::tcp_cluster(
                            spec,
                            &coordinator,
                            &FaultInjector::disabled(),
                        )
                        .expect("cluster connects");
                        let (solution, workset) = initial_state();
                        min_propagation()
                            .run(
                                solution,
                                workset,
                                &configure(WorksetConfig::new(4).with_transport(transport)),
                            )
                            .expect("cluster run")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread"))
                .collect()
        })
    }

    /// Asserts that concatenating the cluster's per-worker results in index
    /// order reproduces the single-process oracle byte for byte — same
    /// solution records, same superstep count, and identical per-superstep
    /// stats rows on every worker.
    fn assert_matches_oracle(results: &[WorksetResult], oracle: &WorksetResult) {
        let combined: Vec<Record> = results
            .iter()
            .flat_map(|r| r.solution.iter().cloned())
            .collect();
        assert_eq!(combined, oracle.solution);
        for result in results {
            assert_eq!(result.supersteps, oracle.supersteps);
            assert_eq!(result.converged, oracle.converged);
            assert_eq!(
                result.stats.per_iteration.len(),
                oracle.stats.per_iteration.len()
            );
            for (ours, theirs) in result
                .stats
                .per_iteration
                .iter()
                .zip(&oracle.stats.per_iteration)
            {
                assert_eq!(ours.workset_size, theirs.workset_size);
                assert_eq!(ours.elements_inspected, theirs.elements_inspected);
                assert_eq!(ours.elements_changed, theirs.elements_changed);
                assert_eq!(ours.messages_sent, theirs.messages_sent);
                assert_eq!(ours.messages_shipped, theirs.messages_shipped);
            }
        }
    }

    #[test]
    fn tcp_cluster_matches_the_single_process_run_superstep_for_superstep() {
        let (solution, workset) = initial_state();
        let oracle = min_propagation()
            .run(solution, workset, &WorksetConfig::new(4))
            .unwrap();
        let results = run_tcp_cluster(|config| config);
        assert_matches_oracle(&results, &oracle);
    }

    #[test]
    fn tcp_cluster_matches_the_oracle_in_microstep_and_range_modes() {
        for (mode, routing) in [
            (ExecutionMode::Microstep, WorksetRouting::Hash),
            (ExecutionMode::BatchIncremental, WorksetRouting::Range),
        ] {
            let (solution, workset) = initial_state();
            let oracle = min_propagation()
                .run(
                    solution,
                    workset,
                    &WorksetConfig::new(4).with_mode(mode).with_routing(routing),
                )
                .unwrap();
            let results = run_tcp_cluster(|config| config.with_mode(mode).with_routing(routing));
            assert_matches_oracle(&results, &oracle);
        }
    }

    #[test]
    fn tcp_cluster_ships_spilled_candidate_runs_to_remote_partitions() {
        // A zero budget spills every sealed candidate page; runs bound for
        // the remote process must be rematerialized and shipped as pages.
        let (solution, workset) = initial_state();
        let oracle = min_propagation()
            .run(
                solution,
                workset,
                &WorksetConfig::new(4).with_memory_budget(MemoryBudget::bytes(0)),
            )
            .unwrap();
        let results = run_tcp_cluster(|config| config.with_memory_budget(MemoryBudget::bytes(0)));
        assert_matches_oracle(&results, &oracle);
    }

    /// A transport stub that reports a multi-process cluster but is never
    /// exercised — for validation paths that must reject before any
    /// communication happens.
    struct TwoProcessStub;

    impl dataflow::transport::Transport<RecordPage> for TwoProcessStub {
        fn cluster(&self) -> ClusterSpec {
            ClusterSpec {
                processes: 2,
                index: 0,
            }
        }

        fn allocate(&self) -> u64 {
            unreachable!("validation rejects before allocating channels")
        }

        fn channel(&self, _id: ChannelId, _partitions: usize) -> SharedPageChannel {
            unreachable!("validation rejects before opening channels")
        }

        fn all_gather(
            &self,
            _id: ChannelId,
            _round: u64,
            _values: &[u64],
        ) -> std::result::Result<Vec<Vec<u64>>, dataflow::prelude::CommError> {
            unreachable!("validation rejects before gathering")
        }
    }

    #[test]
    fn cluster_mode_rejects_unsupported_configurations() {
        let distributed = || TransportHandle::from_transport(Arc::new(TwoProcessStub));
        let iteration = min_propagation();
        let (solution, workset) = initial_state();
        // Parallelism must split evenly over the processes.
        let err = iteration
            .run(
                solution.clone(),
                workset.clone(),
                &WorksetConfig::new(3).with_transport(distributed()),
            )
            .unwrap_err();
        assert!(matches!(err, DataflowError::CommSetup(_)), "{err}");
        // Asynchronous execution has no superstep barrier to synchronize on.
        let err = iteration
            .run(
                solution.clone(),
                workset.clone(),
                &WorksetConfig::new(4)
                    .with_mode(ExecutionMode::AsynchronousMicrostep)
                    .with_transport(distributed()),
            )
            .unwrap_err();
        assert!(matches!(err, DataflowError::InvalidPlan(_)), "{err}");
        // Checkpointing is single-process.
        let err = iteration
            .run(
                solution,
                workset,
                &WorksetConfig::new(4)
                    .with_checkpoint(1, std::env::temp_dir().join("never-written"))
                    .with_transport(distributed()),
            )
            .unwrap_err();
        assert!(matches!(err, DataflowError::InvalidPlan(_)), "{err}");
    }
}
