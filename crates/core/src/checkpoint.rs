//! Superstep-boundary checkpointing for iterative dataflows.
//!
//! A workset iteration's superstep barriers (and a bulk iteration's
//! iteration boundaries) are natural consistent cuts: between supersteps the
//! whole iteration state is exactly the solution set plus the pending
//! workset.  This module persists that cut — one checksummed framed-page
//! file per partition, reusing the spill format of [`dataflow::spill`] —
//! under an atomically-renamed `MANIFEST`, and restores the newest *valid*
//! cut after a failure.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/ckpt-<superstep>/
//!     solution-<p>.run    one per partition, v2 framed pages + CRC-32
//!     workset-<p>.run
//!     MANIFEST            written last, via tmp-file + atomic rename
//! ```
//!
//! The manifest names every data file with its record count.  A checkpoint
//! directory without a `MANIFEST` is by definition incomplete (the crash
//! happened mid-write) and is skipped during recovery; a data file whose
//! page checksums or record count disagree with the manifest marks the whole
//! checkpoint invalid, and recovery falls back to the next older one.

use dataflow::fault::{FaultInjector, FaultSite};
use dataflow::record::Record;
use dataflow::spill::{read_records_from, write_records_to};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// First line of every checkpoint manifest.
const MANIFEST_HEADER: &str = "spinning-checkpoint v1";

/// How a driver checkpoints: every `interval` supersteps into `dir`, with
/// `max_retries` recovery attempts per superstep under exponential backoff.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint every this many supersteps (1 = every superstep).
    pub interval: usize,
    /// Root directory the `ckpt-<superstep>` directories are created in.
    pub dir: PathBuf,
    /// Recovery attempts per failing superstep before giving up.
    pub max_retries: usize,
    /// Base backoff slept before the first retry; doubles per attempt.
    pub backoff: Duration,
}

impl CheckpointPolicy {
    /// A policy checkpointing every `interval` supersteps into `dir`, with
    /// 3 retries and a 1 ms base backoff.
    pub fn new(interval: usize, dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            interval: interval.max(1),
            dir: dir.into(),
            max_retries: 3,
            backoff: Duration::from_millis(1),
        }
    }

    /// Overrides the retry bound.
    pub fn with_max_retries(mut self, max_retries: usize) -> CheckpointPolicy {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the base backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> CheckpointPolicy {
        self.backoff = backoff;
        self
    }

    /// The backoff before retry number `retry` (1-based): base × 2^(retry−1).
    pub fn backoff_for(&self, retry: usize) -> Duration {
        self.backoff
            .saturating_mul(1u32 << (retry.saturating_sub(1)).min(20) as u32)
    }
}

/// A restored consistent cut: the solution-set records and pending workset
/// records of every partition as of `superstep`.
#[derive(Debug)]
pub struct RestoredCheckpoint {
    /// The superstep the checkpoint was taken after.
    pub superstep: usize,
    /// Solution-set records per partition.
    pub solution: Vec<Vec<Record>>,
    /// Pending workset records per partition.
    pub workset: Vec<Vec<Record>>,
}

/// Reads and writes the checkpoints of one iteration run.
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    parallelism: usize,
    fault: FaultInjector,
}

impl CheckpointStore {
    /// A store rooted at `root` for a run with `parallelism` partitions.
    /// `fault` is consulted on every write ([`FaultSite::CheckpointWrite`])
    /// and every restore attempt ([`FaultSite::CheckpointRead`]).
    pub fn new(root: impl Into<PathBuf>, parallelism: usize, fault: FaultInjector) -> Self {
        CheckpointStore {
            root: root.into(),
            parallelism,
            fault,
        }
    }

    fn checkpoint_dir(&self, superstep: usize) -> PathBuf {
        self.root.join(format!("ckpt-{superstep}"))
    }

    /// Persists the cut taken after `superstep`.  Data files are written and
    /// fsynced first; the manifest is written to a temp file and atomically
    /// renamed into place last, so a crash at any point leaves either a
    /// complete checkpoint or one that recovery recognizes as incomplete.
    /// On failure the partial directory is removed and the error returned —
    /// the caller decides whether a missed checkpoint fails the run.
    /// Returns the total bytes written.
    pub fn write(
        &self,
        superstep: usize,
        solution: &[Vec<Record>],
        workset: &[Vec<Record>],
    ) -> io::Result<u64> {
        let dir = self.checkpoint_dir(superstep);
        let result = self.write_inner(&dir, superstep, solution, workset);
        if result.is_err() {
            let _ = fs::remove_dir_all(&dir);
        }
        result
    }

    fn write_inner(
        &self,
        dir: &Path,
        superstep: usize,
        solution: &[Vec<Record>],
        workset: &[Vec<Record>],
    ) -> io::Result<u64> {
        self.fault.io_check(FaultSite::CheckpointWrite)?;
        assert_eq!(solution.len(), self.parallelism, "one file per partition");
        assert_eq!(workset.len(), self.parallelism, "one file per partition");
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::create_dir_all(dir)?;
        let mut manifest = String::new();
        manifest.push_str(MANIFEST_HEADER);
        manifest.push('\n');
        manifest.push_str(&format!("superstep {superstep}\n"));
        manifest.push_str(&format!("parallelism {}\n", self.parallelism));
        let mut total = 0u64;
        for (kind, parts) in [("solution", solution), ("workset", workset)] {
            for (p, records) in parts.iter().enumerate() {
                total += write_records_to(&dir.join(format!("{kind}-{p}.run")), records)?;
                manifest.push_str(&format!("{kind} {p} {}\n", records.len()));
            }
        }
        manifest.push_str("end\n");

        let tmp = dir.join("MANIFEST.tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(manifest.as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, dir.join("MANIFEST"))?;
        total += manifest.len() as u64;
        Ok(total)
    }

    /// Restores the newest valid checkpoint taken at or before
    /// `max_superstep`.  Incomplete (no manifest), corrupt (checksum or
    /// count mismatch), and unreadable checkpoints are skipped in favor of
    /// the next older one; `None` when no valid checkpoint remains.
    pub fn restore_latest(&self, max_superstep: usize) -> Option<RestoredCheckpoint> {
        let mut supersteps: Vec<usize> = self.list_checkpoints();
        supersteps.retain(|&s| s <= max_superstep);
        supersteps.sort_unstable_by(|a, b| b.cmp(a));
        for superstep in supersteps {
            if let Ok(restored) = self.read_checkpoint(superstep) {
                return Some(restored);
            }
        }
        None
    }

    fn read_checkpoint(&self, superstep: usize) -> io::Result<RestoredCheckpoint> {
        self.fault.io_check(FaultSite::CheckpointRead)?;
        let dir = self.checkpoint_dir(superstep);
        let manifest = fs::read_to_string(dir.join("MANIFEST"))?;
        let counts = parse_manifest(&manifest, superstep, self.parallelism)
            .map_err(|detail| io::Error::new(io::ErrorKind::InvalidData, detail))?;
        let mut restored = RestoredCheckpoint {
            superstep,
            solution: Vec::with_capacity(self.parallelism),
            workset: Vec::with_capacity(self.parallelism),
        };
        for (kind, expected, out) in [
            ("solution", &counts.solution, &mut restored.solution),
            ("workset", &counts.workset, &mut restored.workset),
        ] {
            for (p, &count) in expected.iter().enumerate() {
                out.push(read_records_from(
                    &dir.join(format!("{kind}-{p}.run")),
                    Some(count),
                )?);
            }
        }
        Ok(restored)
    }

    /// Superstep numbers of all checkpoint directories under the root
    /// (complete or not).
    fn list_checkpoints(&self) -> Vec<usize> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|entry| {
                entry
                    .file_name()
                    .to_str()?
                    .strip_prefix("ckpt-")?
                    .parse()
                    .ok()
            })
            .collect()
    }

    /// Removes all checkpoints except the newest `keep` — bounding the disk
    /// footprint of a long run to a couple of cuts.
    pub fn prune(&self, keep: usize) {
        let mut supersteps = self.list_checkpoints();
        supersteps.sort_unstable_by(|a, b| b.cmp(a));
        for &superstep in supersteps.iter().skip(keep) {
            let _ = fs::remove_dir_all(self.checkpoint_dir(superstep));
        }
    }

    /// Removes every checkpoint of the run — called after successful
    /// convergence so passing runs leak no files (the CI leak assertion
    /// covers checkpoint directories).
    pub fn clear(&self) {
        self.prune(0);
    }
}

/// The per-partition record counts a manifest promises.
struct ManifestCounts {
    solution: Vec<usize>,
    workset: Vec<usize>,
}

/// Parses and cross-checks a manifest.  Every deviation — wrong header,
/// wrong superstep, wrong parallelism, missing `end` (a torn manifest
/// cannot exist thanks to the atomic rename, but cheap to verify) — makes
/// the checkpoint invalid.
fn parse_manifest(
    manifest: &str,
    superstep: usize,
    parallelism: usize,
) -> Result<ManifestCounts, String> {
    let mut lines = manifest.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err("bad manifest header".into());
    }
    if lines.next() != Some(&format!("superstep {superstep}")) {
        return Err("manifest superstep mismatch".into());
    }
    if lines.next() != Some(&format!("parallelism {parallelism}")) {
        return Err("manifest parallelism mismatch".into());
    }
    let mut counts = ManifestCounts {
        solution: Vec::with_capacity(parallelism),
        workset: Vec::with_capacity(parallelism),
    };
    for (kind, out) in [
        ("solution", &mut counts.solution),
        ("workset", &mut counts.workset),
    ] {
        for p in 0..parallelism {
            let line = lines.next().ok_or("manifest truncated")?;
            let rest = line
                .strip_prefix(kind)
                .and_then(|r| r.strip_prefix(' '))
                .and_then(|r| r.strip_prefix(&format!("{p} ")))
                .ok_or_else(|| format!("unexpected manifest line {line:?}"))?;
            out.push(
                rest.parse()
                    .map_err(|_| format!("bad record count in {line:?}"))?,
            );
        }
    }
    if lines.next() != Some("end") {
        return Err("manifest missing end marker".into());
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_root(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spinning-ckpt-test-{}-{name}", std::process::id()))
    }

    fn parts(offset: i64) -> Vec<Vec<Record>> {
        (0..2)
            .map(|p| {
                (0..30)
                    .map(|i| Record::pair(offset + p * 100 + i, i))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn checkpoints_round_trip_and_restore_the_newest() {
        let root = test_root("roundtrip");
        let store = CheckpointStore::new(&root, 2, FaultInjector::disabled());
        let bytes = store.write(3, &parts(0), &parts(1000)).unwrap();
        assert!(bytes > 0);
        store.write(6, &parts(50), &parts(2000)).unwrap();

        let restored = store.restore_latest(usize::MAX).unwrap();
        assert_eq!(restored.superstep, 6);
        assert_eq!(restored.solution, parts(50));
        assert_eq!(restored.workset, parts(2000));

        // A cap below the newest falls back to the older checkpoint.
        let restored = store.restore_latest(5).unwrap();
        assert_eq!(restored.superstep, 3);
        assert_eq!(restored.solution, parts(0));

        store.clear();
        assert!(store.restore_latest(usize::MAX).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_checkpoints_are_skipped_in_favor_of_older_ones() {
        let root = test_root("skip-corrupt");
        let store = CheckpointStore::new(&root, 2, FaultInjector::disabled());
        store.write(2, &parts(0), &parts(10)).unwrap();
        store.write(4, &parts(7), &parts(20)).unwrap();
        // Flip a byte inside a data page of the newer checkpoint.
        let victim = root.join("ckpt-4").join("solution-1.run");
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();

        let restored = store.restore_latest(usize::MAX).unwrap();
        assert_eq!(restored.superstep, 2, "corrupt ckpt-4 must be skipped");
        assert_eq!(restored.solution, parts(0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn a_checkpoint_without_a_manifest_is_incomplete() {
        let root = test_root("no-manifest");
        let store = CheckpointStore::new(&root, 2, FaultInjector::disabled());
        store.write(1, &parts(0), &parts(10)).unwrap();
        store.write(5, &parts(9), &parts(90)).unwrap();
        // Simulate a crash between the data files and the manifest rename.
        fs::remove_file(root.join("ckpt-5").join("MANIFEST")).unwrap();
        let restored = store.restore_latest(usize::MAX).unwrap();
        assert_eq!(restored.superstep, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_write_faults_clean_up_the_partial_directory() {
        let root = test_root("inject-write");
        let store = CheckpointStore::new(
            &root,
            2,
            FaultInjector::failing_nth(FaultSite::CheckpointWrite, 0),
        );
        store
            .write(1, &parts(0), &parts(10))
            .expect_err("injected fault");
        assert!(!root.join("ckpt-1").exists());
        // The next attempt (event 1) succeeds.
        store.write(1, &parts(0), &parts(10)).unwrap();
        assert_eq!(store.restore_latest(usize::MAX).unwrap().superstep, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_read_faults_skip_to_an_older_checkpoint() {
        let root = test_root("inject-read");
        let writer = CheckpointStore::new(&root, 2, FaultInjector::disabled());
        writer.write(2, &parts(0), &parts(10)).unwrap();
        writer.write(4, &parts(5), &parts(50)).unwrap();
        // The first read attempt (the newest checkpoint) faults; the second
        // (the older one) proceeds.
        let reader = CheckpointStore::new(
            &root,
            2,
            FaultInjector::failing_nth(FaultSite::CheckpointRead, 0),
        );
        let restored = reader.restore_latest(usize::MAX).unwrap();
        assert_eq!(restored.superstep, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_keeps_the_newest_checkpoints() {
        let root = test_root("prune");
        let store = CheckpointStore::new(&root, 1, FaultInjector::disabled());
        for s in [1, 3, 5, 7] {
            store
                .write(s, &[vec![Record::pair(s as i64, 0)]], &[Vec::new()])
                .unwrap();
        }
        store.prune(2);
        assert!(!root.join("ckpt-1").exists());
        assert!(!root.join("ckpt-3").exists());
        assert!(root.join("ckpt-5").exists());
        assert!(root.join("ckpt-7").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let policy = CheckpointPolicy::new(1, "/tmp/x").with_backoff(Duration::from_millis(2));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(2));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(4));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(8));
    }

    #[test]
    fn manifest_mismatches_invalidate_the_checkpoint() {
        let root = test_root("manifest-tamper");
        let store = CheckpointStore::new(&root, 1, FaultInjector::disabled());
        store
            .write(2, &[vec![Record::pair(1, 2)]], &[Vec::new()])
            .unwrap();
        // Lie about the record count; the data file no longer matches.
        let manifest_path = root.join("ckpt-2").join("MANIFEST");
        let tampered = fs::read_to_string(&manifest_path)
            .unwrap()
            .replace("solution 0 1", "solution 0 2");
        fs::write(&manifest_path, tampered).unwrap();
        assert!(store.restore_latest(usize::MAX).is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
