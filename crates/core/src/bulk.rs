//! Bulk iterations (Section 4).
//!
//! A bulk iteration is the complex operator `(G, I, O, T)`: a step dataflow
//! `G` that consumes the previous partial solution through the source `I`,
//! produces the next partial solution at the sink `O`, and is repeated until
//! the termination criterion `T` fires (or a fixed number of iterations `n`
//! has run).
//!
//! The runtime uses the *feedback-channel* execution strategy of Section 4.2:
//! the same physical plan is reused for every iteration; the partial solution
//! produced at `O` is materialised (the feedback dam) and becomes `I`'s data
//! in the next iteration.  Loop-invariant inputs on the constant data path are
//! shipped once and then served from the executor's intermediate cache, as
//! decided by the optimizer (Section 4.3).

use crate::checkpoint::{CheckpointPolicy, CheckpointStore};
use crate::stats::{IterationRunStats, IterationStats};
use crate::workset::PendingRecoveryStats;
use dataflow::fault::FaultInjector;
use dataflow::prelude::{
    DataflowError, ExecConfig, ExecutionResult, Executor, IntermediateCache, MemoryBudget,
    OperatorId, Plan, Record, Result,
};
use optimizer::{Annotations, IterationSpec, Optimizer};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A user-supplied convergence check comparing the previous and next partial
/// solutions.
pub type ConvergenceCheck = Arc<dyn Fn(&[Record], &[Record]) -> bool + Send + Sync>;

/// When to stop iterating.
#[derive(Clone)]
pub enum TerminationCriterion {
    /// Run exactly `n` iterations — the `(G, I, O, n)` form.
    FixedIterations(usize),
    /// Stop after the iteration in which the named sink (the termination
    /// criterion dataflow `T`) produces no records, or after `max_iterations`.
    EmptySink {
        /// Name of the sink produced by `T`.
        sink: String,
        /// Upper bound on the number of iterations.
        max_iterations: usize,
    },
    /// Stop when a user-supplied convergence check on the previous and next
    /// partial solutions returns `true`, or after `max_iterations`.
    Converged {
        /// Returns `true` when `previous` and `next` are considered equal
        /// (the fixpoint has been reached).
        check: ConvergenceCheck,
        /// Upper bound on the number of iterations.
        max_iterations: usize,
    },
}

impl std::fmt::Debug for TerminationCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminationCriterion::FixedIterations(n) => write!(f, "FixedIterations({n})"),
            TerminationCriterion::EmptySink {
                sink,
                max_iterations,
            } => {
                write!(f, "EmptySink(sink={sink}, max={max_iterations})")
            }
            TerminationCriterion::Converged { max_iterations, .. } => {
                write!(f, "Converged(max={max_iterations})")
            }
        }
    }
}

impl TerminationCriterion {
    fn max_iterations(&self) -> usize {
        match self {
            TerminationCriterion::FixedIterations(n) => *n,
            TerminationCriterion::EmptySink { max_iterations, .. }
            | TerminationCriterion::Converged { max_iterations, .. } => *max_iterations,
        }
    }
}

/// Configuration of a bulk iteration run.
#[derive(Debug, Clone)]
pub struct BulkConfig {
    /// Degree of parallelism of the step dataflow.
    pub parallelism: usize,
    /// If `true` (the default), the step plan is optimized with the
    /// iteration-aware cost-based optimizer; otherwise the naive rule-based
    /// physical plan is used.
    pub use_optimizer: bool,
    /// Field-copy annotations passed to the optimizer.
    pub annotations: Annotations,
    /// Expected number of iterations used to weight the dynamic data path.
    /// Defaults to the termination criterion's maximum.
    pub expected_iterations: Option<f64>,
    /// Budget on the bytes the step plan's exchanges (and the loop-invariant
    /// cache) may buffer in memory before spilling sealed pages to disk.
    /// Unlimited by default.
    pub memory_budget: MemoryBudget,
    /// Iteration-boundary checkpointing and recovery policy.  `None` (the
    /// default) disables checkpointing: a failed iteration surfaces as a
    /// typed [`DataflowError`] immediately.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Deterministic fault injector threaded through the step executions'
    /// spill and pool-dispatch sites.  Defaults to the
    /// environment-configured injector ([`FaultInjector::from_env`]).
    pub fault: FaultInjector,
    /// Disables chain fusion and the page-native operator paths in the step
    /// executions — the escape hatch pinning every streaming path against
    /// the materializing oracle.  Off by default.
    pub force_materialized: bool,
    /// Per-edge credit bound of the step executions' fused chains; `None`
    /// (the default) defers to `SPINNING_CHANNEL_CREDITS` / the executor
    /// default.
    pub channel_credits: Option<usize>,
}

impl BulkConfig {
    /// Default configuration for the given parallelism.
    pub fn new(parallelism: usize) -> Self {
        BulkConfig {
            parallelism,
            use_optimizer: true,
            annotations: Annotations::new(),
            expected_iterations: None,
            memory_budget: MemoryBudget::unlimited(),
            checkpoint: None,
            fault: FaultInjector::from_env(),
            force_materialized: false,
            channel_credits: None,
        }
    }

    /// Sets the optimizer annotations.
    pub fn with_annotations(mut self, annotations: Annotations) -> Self {
        self.annotations = annotations;
        self
    }

    /// Disables the cost-based optimizer (useful for plan comparisons).
    pub fn without_optimizer(mut self) -> Self {
        self.use_optimizer = false;
        self
    }

    /// Sets the memory budget of the per-iteration executions.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Enables iteration-boundary checkpointing: every `interval` iterations
    /// the partial solution is snapshotted under `dir`, and a failed
    /// iteration restores the newest valid checkpoint and retries instead of
    /// failing the run.
    pub fn with_checkpoint(self, interval: usize, dir: impl Into<PathBuf>) -> Self {
        self.with_checkpoint_policy(CheckpointPolicy::new(interval, dir))
    }

    /// Enables checkpointing with an explicit policy.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Installs a fault injector (replacing the environment-configured one).
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// Forces the materializing executor paths (see
    /// [`BulkConfig::force_materialized`]).
    pub fn with_force_materialized(mut self, force: bool) -> Self {
        self.force_materialized = force;
        self
    }

    /// Sets the per-edge credit bound of fused chains in the step
    /// executions.
    pub fn with_channel_credits(mut self, credits: usize) -> Self {
        self.channel_credits = Some(credits.max(1));
        self
    }
}

/// The result of running a bulk iteration.
#[derive(Debug)]
pub struct BulkIterationResult {
    /// The final partial solution (the contents of `O` after the last
    /// iteration).
    pub solution: Vec<Record>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// `true` when the termination criterion fired ([`TerminationCriterion::
    /// FixedIterations`] runs are always converged); `false` when the run was
    /// cut off by `max_iterations` before `T` fired, in which case the
    /// solution is truncated rather than a fixpoint.
    pub converged: bool,
    /// Per-iteration statistics.
    pub stats: IterationRunStats,
}

/// The bulk iteration operator `(G, I, O, T)`.
#[derive(Debug, Clone)]
pub struct BulkIteration {
    plan: Plan,
    input: OperatorId,
    output_sink: String,
    termination: TerminationCriterion,
}

impl BulkIteration {
    /// Creates a bulk iteration from the step dataflow `plan` (`G`), the
    /// source operator that carries the partial solution into the step
    /// function (`I`), the name of the sink producing the next partial
    /// solution (`O`), and the termination criterion (`T` / `n`).
    pub fn new(
        plan: Plan,
        input: OperatorId,
        output_sink: impl Into<String>,
        termination: TerminationCriterion,
    ) -> Self {
        BulkIteration {
            plan,
            input,
            output_sink: output_sink.into(),
            termination,
        }
    }

    /// The step dataflow.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Runs the iteration starting from the initial partial solution.
    pub fn run(&self, initial: Vec<Record>, config: &BulkConfig) -> Result<BulkIterationResult> {
        if config.parallelism == 0 {
            return Err(DataflowError::InvalidPlan(
                "parallelism must be at least 1".into(),
            ));
        }
        let start = Instant::now();
        let output_op = self
            .plan
            .sink_by_name(&self.output_sink)
            .ok_or_else(|| DataflowError::UnknownSink(self.output_sink.clone()))?;
        let max_iterations = self.termination.max_iterations();
        if max_iterations == 0 {
            return Ok(BulkIterationResult {
                solution: initial,
                iterations: 0,
                // Zero requested iterations is only a completed run for the
                // fixed-count form; for the criterion-driven forms `T` never
                // got a chance to fire.
                converged: matches!(self.termination, TerminationCriterion::FixedIterations(_)),
                stats: IterationRunStats {
                    per_iteration: vec![],
                    total_elapsed: start.elapsed(),
                },
            });
        }

        // Plan the step dataflow once; the same physical plan is reused for
        // every iteration (feedback-channel execution).
        let mut physical = if config.use_optimizer {
            let spec = IterationSpec {
                dynamic_sources: vec![self.input],
                feedback: vec![(output_op, self.input)],
                expected_iterations: config.expected_iterations.unwrap_or(max_iterations as f64),
            };
            Optimizer::new(config.parallelism)
                .optimize_iterative(&self.plan, &config.annotations, &spec)?
                .physical
        } else {
            dataflow::physical::default_physical_plan(&self.plan, config.parallelism)?
        };

        let mut exec_config = ExecConfig::new()
            .with_memory_budget(config.memory_budget)
            .with_fault(config.fault.clone())
            .with_force_materialized(config.force_materialized);
        if let Some(credits) = config.channel_credits {
            exec_config = exec_config.with_channel_credits(credits);
        }
        let executor = Executor::with_config(exec_config);
        let mut cache = IntermediateCache::new().with_memory_budget(config.memory_budget);
        let mut current = Arc::new(initial);
        let mut run_stats = IterationRunStats::default();
        let mut converged = false;

        // Bulk checkpoints snapshot the one materialized state the feedback
        // channel carries — the partial solution — as a single partition with
        // an empty workset.
        let store = config
            .checkpoint
            .as_ref()
            .map(|policy| CheckpointStore::new(&policy.dir, 1, config.fault.clone()));
        let mut pending = PendingRecoveryStats::default();
        if let Some(store) = &store {
            match store.write(0, &[(*current).clone()], &[Vec::new()]) {
                Ok(bytes) => {
                    pending.checkpoints_written += 1;
                    pending.checkpoint_bytes += bytes as usize;
                }
                Err(_) => pending.checkpoint_write_failures += 1,
            }
        }
        let mut iteration = 0usize;
        let mut retries_used = 0usize;

        while iteration < max_iterations && !converged {
            let attempt = iteration + 1;
            let iter_start = Instant::now();
            let attempt_result = physical
                .plan
                .replace_source_data(self.input, Arc::clone(&current))
                .and_then(|()| executor.execute_with_cache(&physical, &mut cache));
            let result: ExecutionResult = match attempt_result {
                Ok(result) => result,
                Err(error) => {
                    // The executor reports pool panics without iteration
                    // context; stamp the iteration number on before
                    // surfacing or retrying.
                    let error = match error {
                        DataflowError::WorkerPanic {
                            operator, message, ..
                        } => DataflowError::WorkerPanic {
                            operator,
                            superstep: attempt,
                            message,
                        },
                        other => other,
                    };
                    let (Some(store), Some(policy)) = (&store, &config.checkpoint) else {
                        return Err(error);
                    };
                    retries_used += 1;
                    pending.retries += 1;
                    if retries_used > policy.max_retries {
                        return Err(DataflowError::RecoveryExhausted {
                            superstep: attempt,
                            retries: policy.max_retries,
                            last: Box::new(error),
                        });
                    }
                    std::thread::sleep(policy.backoff_for(retries_used));
                    let Some(restored) = store.restore_latest(iteration) else {
                        return Err(error);
                    };
                    current = Arc::new(restored.solution.into_iter().flatten().collect());
                    run_stats.per_iteration.truncate(restored.superstep);
                    iteration = restored.superstep;
                    // The intermediate cache may hold state from the failed
                    // execution; rebuild it so loop-invariant inputs re-ship.
                    cache = IntermediateCache::new().with_memory_budget(config.memory_budget);
                    pending.recoveries += 1;
                    continue;
                }
            };
            iteration = attempt;
            retries_used = 0;

            // Decide termination on the borrowed result, then move the next
            // partial solution out of it without copying the records.
            let empty_termination_sink = match &self.termination {
                TerminationCriterion::EmptySink { sink, .. } => result.sink_is_empty(sink)?,
                _ => false,
            };
            let execution_stats = result.stats.clone();
            let next = result.into_sink(&self.output_sink)?;

            let mut stats = IterationStats::for_iteration(iteration);
            stats.workset_size = current.len();
            stats.elements_inspected = current.len();
            stats.elements_changed = next.len();
            stats.messages_sent = execution_stats.shipped_records + execution_stats.local_records;
            stats.messages_shipped = execution_stats.shipped_records;
            stats.spilled_bytes = execution_stats.spilled_bytes;
            stats.spilled_runs = execution_stats.spilled_runs;
            stats.execution = Some(execution_stats);
            stats.elapsed = iter_start.elapsed();

            let done = match &self.termination {
                TerminationCriterion::FixedIterations(n) => iteration >= *n,
                TerminationCriterion::EmptySink { .. } => empty_termination_sink,
                TerminationCriterion::Converged { check, .. } => check(&current, &next),
            };
            current = Arc::new(next);
            if done {
                converged = true;
            }
            if let (Some(store), Some(policy)) = (&store, &config.checkpoint) {
                if !converged && iteration.is_multiple_of(policy.interval) {
                    // Non-fatal, but counted: a lost checkpoint widens the
                    // window the next recovery replays.
                    match store.write(iteration, &[(*current).clone()], &[Vec::new()]) {
                        Ok(bytes) => {
                            pending.checkpoints_written += 1;
                            pending.checkpoint_bytes += bytes as usize;
                            store.prune(2);
                        }
                        Err(_) => pending.checkpoint_write_failures += 1,
                    }
                }
            }
            pending.fold_into(&mut stats);
            run_stats.per_iteration.push(stats);
        }
        if let Some(last) = run_stats.per_iteration.last_mut() {
            pending.fold_into(last);
        }
        if let Some(store) = &store {
            store.clear();
        }

        run_stats.total_elapsed = start.elapsed();
        Ok(BulkIterationResult {
            solution: Arc::try_unwrap(current).unwrap_or_else(|arc| (*arc).clone()),
            iterations: run_stats.per_iteration.len(),
            converged,
            stats: run_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::prelude::*;

    /// A step function that increments field 1 of every record by 1.
    fn increment_plan() -> (Plan, OperatorId) {
        let mut plan = Plan::new();
        let input = plan.source("partial-solution", vec![]);
        let map = plan.map(
            "increment",
            input,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(Record::pair(r.long(0), r.long(1) + 1));
            })),
        );
        plan.sink("next", map);
        (plan, input)
    }

    #[test]
    fn fixed_iteration_count_runs_exactly_n_times() {
        let (plan, input) = increment_plan();
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::FixedIterations(5),
        );
        let result = iteration
            .run(
                vec![Record::pair(0, 0), Record::pair(1, 10)],
                &BulkConfig::new(2),
            )
            .unwrap();
        assert_eq!(result.iterations, 5);
        assert!(result.converged, "fixed-count runs are always converged");
        let mut solution = result.solution;
        solution.sort();
        assert_eq!(solution, vec![Record::pair(0, 5), Record::pair(1, 15)]);
        assert_eq!(result.stats.iterations(), 5);
    }

    #[test]
    fn zero_iterations_returns_the_initial_solution() {
        let (plan, input) = increment_plan();
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::FixedIterations(0),
        );
        let result = iteration
            .run(vec![Record::pair(7, 7)], &BulkConfig::new(2))
            .unwrap();
        assert_eq!(result.iterations, 0);
        assert!(result.converged);
        assert_eq!(result.solution, vec![Record::pair(7, 7)]);
    }

    #[test]
    fn converged_criterion_stops_at_the_fixpoint() {
        // Step function: cap field 1 at 8 (monotone, reaches a fixpoint).
        let mut plan = Plan::new();
        let input = plan.source("partial-solution", vec![]);
        let map = plan.map(
            "cap",
            input,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(Record::pair(r.long(0), (r.long(1) + 1).min(8)));
            })),
        );
        plan.sink("next", map);
        let check = Arc::new(|prev: &[Record], next: &[Record]| {
            let mut a = prev.to_vec();
            let mut b = next.to_vec();
            a.sort();
            b.sort();
            a == b
        });
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::Converged {
                check,
                max_iterations: 100,
            },
        );
        let result = iteration
            .run(vec![Record::pair(0, 0)], &BulkConfig::new(2))
            .unwrap();
        // Reaches 8 after 8 iterations; the 9th confirms the fixpoint.
        assert_eq!(result.iterations, 9);
        assert!(result.converged);
        assert_eq!(result.solution, vec![Record::pair(0, 8)]);
    }

    #[test]
    fn hitting_max_iterations_reports_non_convergence() {
        // Same capped-increment fixpoint as above, but the bound cuts the run
        // off after 3 iterations — far from the fixpoint at 8.
        let mut plan = Plan::new();
        let input = plan.source("partial-solution", vec![]);
        let map = plan.map(
            "cap",
            input,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(Record::pair(r.long(0), (r.long(1) + 1).min(8)));
            })),
        );
        plan.sink("next", map);
        let check = Arc::new(|prev: &[Record], next: &[Record]| prev == next);
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::Converged {
                check,
                max_iterations: 3,
            },
        );
        let result = iteration
            .run(vec![Record::pair(0, 0)], &BulkConfig::new(2))
            .unwrap();
        assert_eq!(result.iterations, 3);
        assert!(
            !result.converged,
            "truncated run must not report a fixpoint"
        );
        assert_eq!(result.solution, vec![Record::pair(0, 3)]);
    }

    #[test]
    fn empty_sink_criterion_uses_the_termination_dataflow() {
        // Step: increment; termination dataflow T emits a record while any
        // value is still below 3.
        let mut plan = Plan::new();
        let input = plan.source("partial-solution", vec![]);
        let map = plan.map(
            "increment",
            input,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(Record::pair(r.long(0), r.long(1) + 1));
            })),
        );
        plan.sink("next", map);
        let t = plan.map(
            "still-running",
            map,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                if r.long(1) < 3 {
                    out.collect(r.clone());
                }
            })),
        );
        plan.sink("termination", t);
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::EmptySink {
                sink: "termination".into(),
                max_iterations: 50,
            },
        );
        let result = iteration
            .run(vec![Record::pair(0, 0)], &BulkConfig::new(2))
            .unwrap();
        assert_eq!(result.iterations, 3);
        assert!(result.converged);
        assert_eq!(result.solution, vec![Record::pair(0, 3)]);
    }

    #[test]
    fn zero_parallelism_is_rejected() {
        let (plan, input) = increment_plan();
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::FixedIterations(1),
        );
        let mut config = BulkConfig::new(1);
        config.parallelism = 0;
        assert!(iteration.run(vec![Record::pair(0, 0)], &config).is_err());
    }

    #[test]
    fn unknown_output_sink_is_rejected() {
        let (plan, input) = increment_plan();
        let iteration = BulkIteration::new(
            plan,
            input,
            "missing",
            TerminationCriterion::FixedIterations(1),
        );
        assert!(iteration.run(vec![], &BulkConfig::new(1)).is_err());
    }

    #[test]
    fn optimizer_and_default_plans_agree_on_the_result() {
        let (plan, input) = increment_plan();
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::FixedIterations(3),
        );
        let initial: Vec<Record> = (0..20).map(|i| Record::pair(i, i)).collect();
        let with_opt = iteration.run(initial.clone(), &BulkConfig::new(4)).unwrap();
        let without_opt = iteration
            .run(initial, &BulkConfig::new(4).without_optimizer())
            .unwrap();
        let mut a = with_opt.solution;
        let mut b = without_opt.solution;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn per_iteration_stats_are_recorded() {
        let (plan, input) = increment_plan();
        let iteration = BulkIteration::new(
            plan,
            input,
            "next",
            TerminationCriterion::FixedIterations(4),
        );
        let result = iteration
            .run(
                (0..10).map(|i| Record::pair(i, 0)).collect(),
                &BulkConfig::new(2),
            )
            .unwrap();
        assert_eq!(result.stats.per_iteration.len(), 4);
        for (i, s) in result.stats.per_iteration.iter().enumerate() {
            assert_eq!(s.iteration, i + 1);
            assert_eq!(s.workset_size, 10);
            assert_eq!(s.elements_changed, 10);
            assert!(s.execution.is_some());
        }
    }
}
