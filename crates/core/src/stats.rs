//! Per-iteration statistics.
//!
//! The paper's evaluation plots per-iteration runtimes, the number of
//! elements in the working set, the number of partial-solution elements
//! inspected and changed, and the number of messages exchanged (Figures 2, 8,
//! 10, 11, 12).  Every iteration runtime in this crate therefore records an
//! [`IterationStats`] per iteration/superstep, which the benchmark harness
//! prints as the corresponding data series.

use dataflow::prelude::ExecutionStats;
use std::time::Duration;

/// Counters for one iteration (bulk) or one superstep (incremental).
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    /// 1-based iteration / superstep number.
    pub iteration: usize,
    /// Wall-clock time of the iteration.
    pub elapsed: Duration,
    /// Size of the working set consumed in this iteration (for bulk
    /// iterations: the size of the partial solution fed in).
    pub workset_size: usize,
    /// Number of partial-solution elements inspected (groups or records the
    /// update function was invoked on).
    pub elements_inspected: usize,
    /// Number of partial-solution elements that were actually changed (the
    /// size of the applied delta set).
    pub elements_changed: usize,
    /// Records emitted into the next working set ("messages sent").
    pub messages_sent: usize,
    /// Of those, how many crossed partition boundaries.
    pub messages_shipped: usize,
    /// Serialized bytes the superstep exchange (or the backing dataflow
    /// execution) moved to disk as spilled runs under a memory budget.
    pub spilled_bytes: usize,
    /// Number of spilled runs written.
    pub spilled_runs: usize,
    /// Superstep checkpoints persisted while producing this iteration.
    pub checkpoints_written: usize,
    /// Bytes those checkpoints wrote to disk (data files plus manifests).
    pub checkpoint_bytes: usize,
    /// Checkpoint writes that failed.  Such failures are non-fatal — the run
    /// continues on the previous checkpoint — but each one widens the window
    /// the next recovery has to replay, so they must stay observable.
    pub checkpoint_write_failures: usize,
    /// Completed recoveries (checkpoint restores after a failure) performed
    /// before this iteration succeeded.
    pub recoveries: usize,
    /// Failed attempts at this iteration that were retried (each retry that
    /// led to a recovery counts once).
    pub retries: usize,
    /// Queue high-water mark of the bounded exchange channels: the maximum
    /// records any single worker→worker edge held (asynchronous microsteps)
    /// or the maximum sealed pages any outbox writer buffered in memory
    /// (superstep exchanges).  Never exceeds the configured channel credits
    /// when backpressure is on — the invariant the backpressure smoke tests
    /// assert.  In cluster runs this is the cluster-wide maximum, agreed at
    /// the superstep barrier.
    pub queue_high_water: usize,
    /// Statistics of the dataflow execution backing this iteration, if the
    /// iteration ran as a dataflow plan (bulk iterations).
    pub execution: Option<ExecutionStats>,
}

impl IterationStats {
    /// Creates a stats record for the given iteration number.
    pub fn for_iteration(iteration: usize) -> Self {
        IterationStats {
            iteration,
            ..Default::default()
        }
    }

    /// The iteration's wall-clock time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// Aggregated statistics of a whole iterative job.
#[derive(Debug, Clone, Default)]
pub struct IterationRunStats {
    /// Per-iteration counters, in order.
    pub per_iteration: Vec<IterationStats>,
    /// Total wall-clock time of the whole run (including setup such as
    /// building indexes and the initial working set).
    pub total_elapsed: Duration,
}

impl IterationRunStats {
    /// Number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.per_iteration.len()
    }

    /// Sum of messages sent over all iterations.
    pub fn total_messages(&self) -> usize {
        self.per_iteration.iter().map(|s| s.messages_sent).sum()
    }

    /// Sum of changed partial-solution elements over all iterations.
    pub fn total_changes(&self) -> usize {
        self.per_iteration.iter().map(|s| s.elements_changed).sum()
    }

    /// Sum of spilled bytes over all iterations — nonzero proves the run
    /// actually exercised the out-of-core path.
    pub fn total_spilled_bytes(&self) -> usize {
        self.per_iteration.iter().map(|s| s.spilled_bytes).sum()
    }

    /// Sum of spilled runs over all iterations.
    pub fn total_spilled_runs(&self) -> usize {
        self.per_iteration.iter().map(|s| s.spilled_runs).sum()
    }

    /// Sum of completed recoveries over all iterations — nonzero proves the
    /// run actually survived injected (or real) failures.
    pub fn total_recoveries(&self) -> usize {
        self.per_iteration.iter().map(|s| s.recoveries).sum()
    }

    /// Sum of retried attempts over all iterations.
    pub fn total_retries(&self) -> usize {
        self.per_iteration.iter().map(|s| s.retries).sum()
    }

    /// Sum of checkpoints written over all iterations.
    pub fn total_checkpoints_written(&self) -> usize {
        self.per_iteration
            .iter()
            .map(|s| s.checkpoints_written)
            .sum()
    }

    /// Sum of checkpoint bytes over all iterations.
    pub fn total_checkpoint_bytes(&self) -> usize {
        self.per_iteration.iter().map(|s| s.checkpoint_bytes).sum()
    }

    /// Sum of failed checkpoint writes over all iterations — nonzero means
    /// recovery windows were silently widened and the checkpoint storage
    /// deserves attention.
    pub fn total_checkpoint_write_failures(&self) -> usize {
        self.per_iteration
            .iter()
            .map(|s| s.checkpoint_write_failures)
            .sum()
    }

    /// Maximum queue high-water mark over all iterations — compared against
    /// the configured channel credits to prove backpressure held.
    pub fn max_queue_high_water(&self) -> usize {
        self.per_iteration
            .iter()
            .map(|s| s.queue_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Renders the per-iteration series as a text table (one row per
    /// iteration), the format used by the figure-reproduction binaries.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "iter", "millis", "workset", "inspected", "changed", "messages"
        ));
        for s in &self.per_iteration {
            out.push_str(&format!(
                "{:>5} {:>12.2} {:>12} {:>12} {:>12} {:>12}\n",
                s.iteration,
                s.millis(),
                s.workset_size,
                s.elements_inspected,
                s.elements_changed,
                s.messages_sent
            ));
        }
        out.push_str(&format!(
            "total: {:.2} ms, {} iterations, {} messages\n",
            self.total_elapsed.as_secs_f64() * 1e3,
            self.iterations(),
            self.total_messages()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_iterations() {
        let mut run = IterationRunStats::default();
        for i in 1..=3 {
            run.per_iteration.push(IterationStats {
                iteration: i,
                messages_sent: 10 * i,
                elements_changed: i,
                ..Default::default()
            });
        }
        assert_eq!(run.iterations(), 3);
        assert_eq!(run.total_messages(), 60);
        assert_eq!(run.total_changes(), 6);
    }

    #[test]
    fn table_contains_one_row_per_iteration() {
        let mut run = IterationRunStats::default();
        run.per_iteration.push(IterationStats::for_iteration(1));
        run.per_iteration.push(IterationStats::for_iteration(2));
        let table = run.to_table();
        assert_eq!(table.lines().count(), 1 + 2 + 1);
    }

    #[test]
    fn millis_reflects_duration() {
        let s = IterationStats {
            elapsed: Duration::from_millis(250),
            ..Default::default()
        };
        assert!((s.millis() - 250.0).abs() < 1e-9);
    }
}
