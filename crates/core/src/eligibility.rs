//! Microstep-eligibility analysis (Section 5.2).
//!
//! An incremental iteration may be executed in microsteps (and hence
//! asynchronously) only if its step function `Δ` satisfies the structural
//! conditions the paper states:
//!
//! 1. `Δ` consists solely of record-at-a-time operators (Map, Match, Cross);
//!    group-at-a-time operators (Reduce, CoGroup) need a whole superstep to
//!    delimit their groups.
//! 2. Binary operators have at most one input on the dynamic data path, and
//!    the dynamic data path has no branches — each dynamic operator has a
//!    single dynamic successor (otherwise `Wi+1` could depend on `Wi` through
//!    more than the single element `d`).
//! 3. Updates to the partial solution stay within the worker partition that
//!    produced them: the identifying key must be constant along the path from
//!    the solution set to the delta set, and every keyed operation on that
//!    path must use the identifying key (checked here via the field-copy
//!    annotations used by the optimizer).
//!
//! The check operates on the logical [`Plan`] representation of `Δ`, so it is
//! usable both for diagnosing hand-built plans and in tests that assert the
//! Connected Components `Match` variant is eligible while the `CoGroup`
//! variant is not.

use dataflow::plan::{OperatorKind, Plan};
use dataflow::prelude::OperatorId;
use optimizer::Annotations;
use std::collections::HashSet;

/// The outcome of the eligibility analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eligibility {
    /// Reasons why the plan is *not* eligible; empty means eligible.
    pub violations: Vec<String>,
}

impl Eligibility {
    /// True if the step function may be executed in microsteps.
    pub fn is_eligible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks whether the step function `plan`, whose dynamic data path starts at
/// `dynamic_sources` (the working set and solution set inputs) and ends at
/// `delta_sink`, may be executed in microsteps.
///
/// `solution_key` is the identifying key of the solution set expressed in the
/// field space of the delta sink's records; `annotations` provide the
/// field-copy information used to verify the key is preserved along the
/// dynamic path.
pub fn check_microstep_eligibility(
    plan: &Plan,
    dynamic_sources: &[OperatorId],
    delta_sink: OperatorId,
    solution_key: &[usize],
    annotations: &Annotations,
) -> Eligibility {
    let mut violations = Vec::new();

    // The dynamic data path: everything downstream of a dynamic source.
    let mut dynamic: HashSet<OperatorId> = HashSet::new();
    for &source in dynamic_sources {
        for op in plan.downstream_closure(source) {
            dynamic.insert(op);
        }
    }

    for &id in &dynamic {
        let op = plan.operator(id);

        // Condition 1: record-at-a-time operators only.
        if !op.kind.is_record_at_a_time() {
            violations.push(format!(
                "operator '{}' uses the group-at-a-time contract {}, which requires supersteps",
                op.name,
                op.kind.contract_name()
            ));
        }

        // Condition 2a: binary operators may have at most one dynamic input.
        let dynamic_inputs = op
            .inputs
            .iter()
            .filter(|input| dynamic.contains(input))
            .count();
        if op.inputs.len() >= 2 && dynamic_inputs > 1 {
            violations.push(format!(
                "operator '{}' has {} inputs on the dynamic data path; microsteps allow at most one",
                op.name, dynamic_inputs
            ));
        }

        // Condition 2b: no branches on the dynamic data path.  The paper
        // explicitly excepts the edge that connects to the delta set `D`, so
        // the delta sink does not count as a successor here.
        let dynamic_consumers: Vec<OperatorId> = plan
            .consumers(id)
            .into_iter()
            .filter(|c| dynamic.contains(c) && *c != delta_sink)
            .collect();
        if dynamic_consumers.len() > 1 {
            violations.push(format!(
                "operator '{}' has {} successors on the dynamic data path; the path must not branch",
                op.name,
                dynamic_consumers.len()
            ));
        }
    }

    // Condition 3: the identifying key must be preserved along the dynamic
    // path into the delta sink.  Walk upstream from the delta sink through
    // dynamic operators, mapping the key backwards; if at any step the key
    // cannot be traced to a single input, the updates may leave the partition.
    let mut current = delta_sink;
    let mut key: Vec<usize> = solution_key.to_vec();
    loop {
        let op = plan.operator(current);
        let dynamic_inputs: Vec<(usize, OperatorId)> = op
            .inputs
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, input)| dynamic.contains(input))
            .collect();
        if dynamic_inputs.is_empty() {
            break;
        }
        if dynamic_inputs.len() > 1 {
            // Already reported as a branch violation above.
            break;
        }
        let (slot, input) = dynamic_inputs[0];
        // Sinks and unions forward records unchanged; other operators must
        // declare the copy through annotations.
        let mapped = match op.kind {
            OperatorKind::Sink { .. } | OperatorKind::Union => Some(key.clone()),
            _ => annotations.map_key_backward(current, slot, &key),
        };
        match mapped {
            Some(mapped) => key = mapped,
            None => {
                violations.push(format!(
                    "operator '{}' does not preserve the solution-set key; updates could cross partitions",
                    op.name
                ));
                break;
            }
        }
        if dynamic_sources.contains(&input) {
            break;
        }
        current = input;
    }

    violations.sort();
    violations.dedup();
    Eligibility { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::prelude::*;
    use optimizer::FieldCopy;
    use std::sync::Arc;

    /// The Connected Components Δ dataflow of Figure 5, with the solution-set
    /// join built either as a record-at-a-time `Match` (microstep variant) or
    /// as an `InnerCoGroup` (batch incremental variant).
    fn cc_delta_plan(use_match: bool) -> (Plan, Vec<OperatorId>, OperatorId, Annotations) {
        let mut plan = Plan::new();
        let workset = plan.source("workset", vec![]);
        let solution = plan.source("solution-set", vec![]);
        let neighbours = plan.source("neighbours", vec![]);
        let mut ann = Annotations::new();
        let update = if use_match {
            let join = plan.match_join(
                "update-components",
                workset,
                solution,
                vec![0],
                vec![0],
                Arc::new(MatchClosure(
                    |w: &Record, _s: &Record, out: &mut Collector| out.collect(w.clone()),
                )),
            );
            ann.add_copy(
                join,
                FieldCopy {
                    slot: 0,
                    in_field: 0,
                    out_field: 0,
                },
            );
            join
        } else {
            let cg = plan.inner_cogroup(
                "update-components",
                workset,
                solution,
                vec![0],
                vec![0],
                Arc::new(CoGroupClosure(
                    |_k: &[Value], w: &[Record], _s: &[Record], out: &mut Collector| {
                        out.collect(w[0].clone())
                    },
                )),
            );
            ann.add_copy(
                cg,
                FieldCopy {
                    slot: 0,
                    in_field: 0,
                    out_field: 0,
                },
            );
            cg
        };
        let delta_sink = plan.sink("delta", update);
        let expand = plan.match_join(
            "candidates-for-neighbours",
            update,
            neighbours,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |d: &Record, n: &Record, out: &mut Collector| {
                    out.collect(Record::pair(n.long(1), d.long(1)))
                },
            )),
        );
        plan.sink("next-workset", expand);
        (plan, vec![workset], delta_sink, ann)
    }

    #[test]
    fn match_variant_is_microstep_eligible() {
        let (plan, dynamic, delta_sink, ann) = cc_delta_plan(true);
        let eligibility = check_microstep_eligibility(&plan, &dynamic, delta_sink, &[0], &ann);
        assert!(
            eligibility.is_eligible(),
            "violations: {:?}",
            eligibility.violations
        );
    }

    #[test]
    fn cogroup_variant_requires_supersteps() {
        let (plan, dynamic, delta_sink, ann) = cc_delta_plan(false);
        let eligibility = check_microstep_eligibility(&plan, &dynamic, delta_sink, &[0], &ann);
        assert!(!eligibility.is_eligible());
        assert!(eligibility
            .violations
            .iter()
            .any(|v| v.contains("group-at-a-time")));
    }

    #[test]
    fn key_modifying_update_is_rejected() {
        // Same Match plan but without the field-copy annotation: the system
        // cannot prove the key stays put, so updates might cross partitions.
        let (plan, dynamic, delta_sink, _) = cc_delta_plan(true);
        let no_annotations = Annotations::new();
        let eligibility =
            check_microstep_eligibility(&plan, &dynamic, delta_sink, &[0], &no_annotations);
        assert!(!eligibility.is_eligible());
        assert!(eligibility
            .violations
            .iter()
            .any(|v| v.contains("preserve")));
    }

    #[test]
    fn branching_dynamic_path_is_rejected() {
        let mut plan = Plan::new();
        let workset = plan.source("workset", vec![]);
        let a = plan.map(
            "a",
            workset,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        // Two dynamic consumers of the same operator: a branch.
        let b = plan.map(
            "b",
            a,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        let c = plan.map(
            "c",
            a,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        let delta = plan.sink("delta", b);
        plan.sink("next-workset", c);
        let mut ann = Annotations::new();
        for op in [a, b, c] {
            ann.add_copy(
                op,
                FieldCopy {
                    slot: 0,
                    in_field: 0,
                    out_field: 0,
                },
            );
        }
        let eligibility = check_microstep_eligibility(&plan, &[workset], delta, &[0], &ann);
        assert!(!eligibility.is_eligible());
        assert!(eligibility
            .violations
            .iter()
            .any(|v| v.contains("branch") || v.contains("successors")));
    }
}
