//! Asynchronous microstep execution (Sections 2.2 and 5.2/5.3).
//!
//! When the step function of a workset iteration consists solely of
//! record-at-a-time operators and the path from the solution set to the delta
//! set preserves the identifying key (see [`crate::eligibility`]), the
//! iteration can drop the superstep barrier entirely: every worker partition
//! processes workset elements as they arrive, updates its share of the
//! partial solution immediately, and pushes the resulting candidate updates
//! into the queues of the target partitions.
//!
//! Termination is detected with an in-flight record counter in the spirit of
//! the message-counting termination-detection algorithms for processor
//! networks referenced by the paper: the counter is incremented for every
//! record enqueued and decremented when its processing (including all sends
//! it caused) has finished, so the counter reaching zero proves that no
//! worker holds or will ever receive another record.
//!
//! # Fault tolerance
//!
//! Asynchronous execution has no superstep boundaries, so it ignores
//! [`WorksetConfig::checkpoint`] and performs no fault injection of its own.
//! The one guarantee it does make: a worker that panics (e.g. in a user
//! update/expand function) releases its in-flight credit on unwind, letting
//! the sibling workers drain and terminate, and the run surfaces the panic
//! as a typed [`DataflowError::WorkerPanic`] instead of aborting the
//! process.

use crate::solution_set::SolutionSet;
use crate::stats::{IterationRunStats, IterationStats};
use crate::workset::{WorksetConfig, WorksetIteration, WorksetResult};
use dataflow::key::FxHashMap;
use dataflow::prelude::{DataflowError, Key, PartitionRouter, Record, Result};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker waits for new records before re-checking the in-flight
/// counter.  Purely a liveness knob; correctness does not depend on it.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Releases one in-flight credit on drop, so a record's credit is returned
/// even when the user's update/expand function panics mid-processing —
/// otherwise the sibling workers would wait forever for the counter to drain.
struct CreditGuard<'a>(&'a AtomicI64);

impl Drop for CreditGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-worker counters returned when the worker shuts down.
struct WorkerOutcome {
    processed: usize,
    changed: usize,
    messages_sent: usize,
    messages_shipped: usize,
}

/// Runs the iteration asynchronously.  Called by
/// [`WorksetIteration::run`] when the mode is
/// [`crate::workset::ExecutionMode::AsynchronousMicrostep`].
pub(crate) fn run_async(
    iteration: &WorksetIteration,
    mut solution: SolutionSet,
    constant_index: Vec<FxHashMap<Key, Vec<Record>>>,
    initial_workset: Vec<Record>,
    router: &PartitionRouter,
    config: &WorksetConfig,
    start: Instant,
) -> Result<WorksetResult> {
    let parallelism = config.parallelism;
    let comparator = solution.comparator();

    // One queue per partition; every worker can send to every queue.
    let mut senders: Vec<Sender<Record>> = Vec::with_capacity(parallelism);
    let mut receivers: Vec<Receiver<Record>> = Vec::with_capacity(parallelism);
    for _ in 0..parallelism {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }

    // The in-flight counter: one credit per record currently enqueued or
    // being processed.
    let in_flight = Arc::new(AtomicI64::new(0));
    for record in initial_workset {
        let target = router.route(&record, &iteration.workset_key);
        in_flight.fetch_add(1, Ordering::SeqCst);
        senders[target]
            .send(record)
            .expect("receiver alive while seeding the initial workset");
    }

    // The asynchronous workers block in `recv_timeout` until the in-flight
    // counter drains, so they must not run on the shared global pool (they
    // would starve other scopes).  A dedicated pool sized to the partition
    // count is created once per run and its workers live for the whole
    // asynchronous execution — exactly the thread usage of the former
    // per-run `std::thread::scope`, minus respawns on repeated runs of the
    // same driver thread pattern.
    let pool = spinning_pool::ThreadPool::new(parallelism);
    let mut solution_partitions = solution.take_partitions();
    let mut outcome_slots: Vec<Option<WorkerOutcome>> = (0..parallelism).map(|_| None).collect();
    let scope_result = pool.try_scope(|scope| {
        for (partition, ((s_part, receiver), slot)) in solution_partitions
            .iter_mut()
            .zip(receivers)
            .zip(outcome_slots.iter_mut())
            .enumerate()
        {
            let senders = senders.clone();
            let in_flight = Arc::clone(&in_flight);
            let comparator = comparator.clone();
            let constant = &constant_index[partition];
            scope.spawn_labeled("async-microstep", move || {
                let mut outcome = WorkerOutcome {
                    processed: 0,
                    changed: 0,
                    messages_sent: 0,
                    messages_shipped: 0,
                };
                let mut expand_buffer: Vec<Record> = Vec::new();
                loop {
                    match receiver.recv_timeout(IDLE_POLL) {
                        Ok(record) => {
                            let _credit = CreditGuard(&in_flight);
                            outcome.processed += 1;
                            let key = Key::extract(&record, &iteration.workset_key);
                            let delta = {
                                let current = s_part.get(&key);
                                iteration.update.update(
                                    &key,
                                    current,
                                    std::slice::from_ref(&record),
                                )
                            };
                            if let Some(delta) = delta {
                                // A surviving delta serializes into the paged
                                // index; this worker's heap copy feeds the
                                // expansion (no clone).
                                let applied = SolutionSet::merge_detached(
                                    s_part,
                                    &comparator,
                                    &iteration.solution_key,
                                    &delta,
                                );
                                if applied {
                                    outcome.changed += 1;
                                    let matches = constant
                                        .get(&Key::extract(&delta, &iteration.delta_key))
                                        .map(Vec::as_slice)
                                        .unwrap_or(&[]);
                                    expand_buffer.clear();
                                    iteration.expand.expand(&delta, matches, &mut expand_buffer);
                                    for new_record in expand_buffer.drain(..) {
                                        let target =
                                            router.route(&new_record, &iteration.workset_key);
                                        outcome.messages_sent += 1;
                                        if target != partition {
                                            outcome.messages_shipped += 1;
                                        }
                                        in_flight.fetch_add(1, Ordering::SeqCst);
                                        // Sends cannot fail: every receiver
                                        // only exits once in_flight is zero,
                                        // which cannot happen while this
                                        // record's credit is still held.
                                        senders[target]
                                            .send(new_record)
                                            .expect("peer worker exited with records in flight");
                                    }
                                }
                            }
                            // `_credit` drops here, releasing this record's
                            // credit only after all the records it caused
                            // have been credited — and also on unwind, so a
                            // panicking worker cannot wedge its siblings.
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                *slot = Some(outcome);
            });
        }
    });
    solution.restore_partitions(solution_partitions);
    drop(senders);
    if let Err(panic) = scope_result {
        return Err(DataflowError::WorkerPanic {
            operator: "async-microstep".into(),
            superstep: 1,
            message: panic.message(),
        });
    }

    let outcomes = outcome_slots
        .into_iter()
        .map(|slot| slot.expect("pool ran every asynchronous worker"));
    let mut stats = IterationStats::for_iteration(1);
    for outcome in outcomes {
        stats.workset_size += outcome.processed;
        stats.elements_inspected += outcome.processed;
        stats.elements_changed += outcome.changed;
        stats.messages_sent += outcome.messages_sent;
        stats.messages_shipped += outcome.messages_shipped;
    }
    stats.elapsed = start.elapsed();
    let run_stats = IterationRunStats {
        per_iteration: vec![stats],
        total_elapsed: start.elapsed(),
    };
    Ok(WorksetResult {
        solution: solution.records(),
        supersteps: 1,
        // Counter-based termination only fires at the fixpoint: the in-flight
        // count reaching zero proves no record is queued or being processed.
        converged: true,
        stats: run_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workset::{ExecutionMode, ExpandClosure, UpdateClosure, WorksetIteration};

    /// Asynchronous minimum propagation over a ring of `n` vertices.
    fn ring_iteration(n: i64) -> (WorksetIteration, Vec<Record>, Vec<Record>) {
        let update = Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let candidate = candidates.iter().map(|r| r.long(1)).min().unwrap();
                match current {
                    Some(c) if c.long(1) <= candidate => None,
                    _ => Some(Record::pair(key.values()[0].as_long(), candidate)),
                }
            },
        ));
        let expand = Arc::new(ExpandClosure(
            |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
                for e in edges {
                    out.push(Record::pair(e.long(1), delta.long(1)));
                }
            },
        ));
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Record::pair(v, (v + 1) % n));
            edges.push(Record::pair((v + 1) % n, v));
        }
        let iteration = WorksetIteration::builder(vec![0], vec![0], update, expand)
            .constant_input(Arc::new(edges), vec![0], vec![0])
            .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
            .build();
        let solution: Vec<Record> = (0..n).map(|v| Record::pair(v, v + 100)).collect();
        let workset: Vec<Record> = (0..n)
            .flat_map(|v| {
                vec![
                    Record::pair((v + 1) % n, v + 100),
                    Record::pair((v + n - 1) % n, v + 100),
                ]
            })
            .collect();
        (iteration, solution, workset)
    }

    #[test]
    fn asynchronous_execution_reaches_the_fixpoint() {
        let (iteration, solution, workset) = ring_iteration(64);
        let config = WorksetConfig::new(4).with_mode(ExecutionMode::AsynchronousMicrostep);
        let result = iteration.run(solution, workset, &config).unwrap();
        assert_eq!(result.solution.len(), 64);
        // The minimum initial value (100, at vertex 0) floods the whole ring.
        assert!(result.solution.iter().all(|r| r.long(1) == 100));
        assert_eq!(result.supersteps, 1);
        assert!(result.stats.per_iteration[0].elements_changed >= 63);
    }

    #[test]
    fn asynchronous_matches_superstep_execution() {
        let (iteration, solution, workset) = ring_iteration(32);
        let sync_result = iteration
            .run(solution.clone(), workset.clone(), &WorksetConfig::new(3))
            .unwrap();
        let async_result = iteration
            .run(
                solution,
                workset,
                &WorksetConfig::new(3).with_mode(ExecutionMode::AsynchronousMicrostep),
            )
            .unwrap();
        let mut a = sync_result.solution;
        let mut b = async_result.solution;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_workset_finishes_without_work() {
        let (iteration, solution, _workset) = ring_iteration(8);
        let config = WorksetConfig::new(2).with_mode(ExecutionMode::AsynchronousMicrostep);
        let result = iteration.run(solution.clone(), vec![], &config).unwrap();
        assert_eq!(result.solution.len(), solution.len());
        assert_eq!(result.stats.per_iteration[0].messages_sent, 0);
    }

    #[test]
    fn single_worker_asynchronous_execution_works() {
        let (iteration, solution, workset) = ring_iteration(16);
        let config = WorksetConfig::new(1).with_mode(ExecutionMode::AsynchronousMicrostep);
        let result = iteration.run(solution, workset, &config).unwrap();
        assert!(result.solution.iter().all(|r| r.long(1) == 100));
    }
}
