//! Asynchronous microstep execution (Sections 2.2 and 5.2/5.3).
//!
//! When the step function of a workset iteration consists solely of
//! record-at-a-time operators and the path from the solution set to the delta
//! set preserves the identifying key (see [`crate::eligibility`]), the
//! iteration can drop the superstep barrier entirely: every worker partition
//! processes workset elements as they arrive, updates its share of the
//! partial solution immediately, and pushes the resulting candidate updates
//! into the queues of the target partitions.
//!
//! Termination is detected with an in-flight record counter in the spirit of
//! the message-counting termination-detection algorithms for processor
//! networks referenced by the paper: the counter is incremented for every
//! record enqueued and decremented when its processing (including all sends
//! it caused) has finished, so the counter reaching zero proves that no
//! worker holds or will ever receive another record.
//!
//! # Backpressure
//!
//! The queues between workers are bounded [`dataflow::credit`] channels:
//! every worker→worker edge holds at most `credits` records (from
//! [`WorksetConfig::channel_credits`], the `SPINNING_CHANNEL_CREDITS`
//! environment variable, or [`DEFAULT_ASYNC_CREDITS`]), so an adversarial
//! expansion fan-out is bounded to `credits × edges` queued records instead
//! of exhausting memory.  A worker blocked on a full queue keeps draining its
//! *own* inbox while it waits — in a cycle of mutually-full queues every
//! blocked worker is then emptying someone's full queue, so the system always
//! makes progress; a genuine stall (e.g. a user function that never returns)
//! surfaces as a typed [`DataflowError::CommTimeout`] after the
//! `SPINNING_COMM_TIMEOUT_SECS` bound instead of a hang.
//!
//! The queues hold individual records, not spillable pages, so a configured
//! [`WorksetConfig::memory_budget`] cannot be honoured here: asynchronous
//! runs ignore it and say so with a one-time stderr warning instead of
//! silently pretending to be bounded (the superstep modes honour the budget
//! through the spilling exchange).  Use the channel credits to bound the
//! queues' memory.
//!
//! # Fault tolerance
//!
//! Asynchronous execution has no superstep boundaries, so it ignores
//! [`WorksetConfig::checkpoint`] and performs no fault injection of its own.
//! The one guarantee it does make: a worker that panics (e.g. in a user
//! update/expand function) releases its in-flight credits on unwind — both
//! the credit of the record being processed and those of routed expansions
//! not yet enqueued — letting the sibling workers drain and terminate, and
//! the run surfaces the panic as a typed [`DataflowError::WorkerPanic`]
//! instead of aborting the process.

use crate::solution_set::SolutionSet;
use crate::stats::{IterationRunStats, IterationStats};
use crate::workset::{WorksetConfig, WorksetIteration, WorksetResult};
use dataflow::credit::{
    channel_credits_from_env, credit_channel, timeout_from_env, CreditReceiver, CreditSender,
    RecvTimeoutError, SendError, TrySendError, CHANNEL_CREDITS_ENV,
};
use dataflow::key::FxHashMap;
use dataflow::prelude::{DataflowError, Key, MemoryBudget, PartitionRouter, Record, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker waits for new records before re-checking the in-flight
/// counter.  Purely a liveness knob; correctness does not depend on it.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Per-edge record credits when neither [`WorksetConfig::channel_credits`]
/// nor the environment configures them.  Generous — the default bounds
/// pathological fan-outs without throttling healthy runs.
pub const DEFAULT_ASYNC_CREDITS: usize = 1024;

/// Releases one in-flight credit on drop, so a record's credit is returned
/// even when the user's update/expand function panics mid-processing —
/// otherwise the sibling workers would wait forever for the counter to drain.
struct CreditGuard<'a>(&'a AtomicI64);

impl Drop for CreditGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Routed expansions that hold an in-flight credit but are not yet enqueued
/// (their target queue had no free channel credit at expansion time).  Drop
/// releases the held credits, so a worker that panics or aborts with unsent
/// records cannot wedge its siblings' termination detection.
struct PendingSends<'a> {
    items: VecDeque<(usize, Record)>,
    in_flight: &'a AtomicI64,
}

impl<'a> PendingSends<'a> {
    fn new(in_flight: &'a AtomicI64) -> PendingSends<'a> {
        PendingSends {
            items: VecDeque::new(),
            in_flight,
        }
    }

    /// Takes the in-flight credit for `record` and queues it for sending.
    fn push(&mut self, target: usize, record: Record) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.items.push_back((target, record));
    }

    /// Drops `record` (its queue is gone) and releases its in-flight credit.
    fn abandon(&mut self, record: Record) {
        drop(record);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for PendingSends<'_> {
    fn drop(&mut self) {
        if !self.items.is_empty() {
            self.in_flight
                .fetch_sub(self.items.len() as i64, Ordering::SeqCst);
        }
    }
}

/// The warning printed when an asynchronous run is configured with a finite
/// memory budget it cannot honour (the record queues never spill).  A pure
/// function so the test suite can pin the wording without capturing stderr.
fn ignored_budget_warning(budget: &MemoryBudget) -> String {
    let limit = budget
        .limit()
        .expect("only finite budgets trigger the warning");
    format!(
        "warning: asynchronous microstep execution ignores the configured memory budget \
         of {limit} bytes (its record queues never spill); bound queue memory with \
         WorksetConfig::with_channel_credits or {CHANNEL_CREDITS_ENV} instead"
    )
}

/// Warns (once per process, the budget is typically identical across runs)
/// that the configured memory budget does not apply to asynchronous
/// execution.
fn warn_ignored_budget_once(budget: &MemoryBudget) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| eprintln!("{}", ignored_budget_warning(budget)));
}

/// Per-worker counters returned when the worker shuts down.
struct WorkerOutcome {
    processed: usize,
    changed: usize,
    messages_sent: usize,
    messages_shipped: usize,
    queue_high_water: usize,
}

/// Runs the iteration asynchronously.  Called by
/// [`WorksetIteration::run`] when the mode is
/// [`crate::workset::ExecutionMode::AsynchronousMicrostep`].
pub(crate) fn run_async(
    iteration: &WorksetIteration,
    mut solution: SolutionSet,
    constant_index: Vec<FxHashMap<Key, Vec<Record>>>,
    initial_workset: Vec<Record>,
    router: &PartitionRouter,
    config: &WorksetConfig,
    start: Instant,
) -> Result<WorksetResult> {
    let parallelism = config.parallelism;
    if !config.memory_budget.is_unlimited() {
        warn_ignored_budget_once(&config.memory_budget);
    }
    let comparator = solution.comparator();
    let credits = config
        .channel_credits
        .or_else(channel_credits_from_env)
        .unwrap_or(DEFAULT_ASYNC_CREDITS);
    let stall_timeout = timeout_from_env();

    // One bounded queue per partition; every worker (and the seeding driver)
    // sends through its own cloned edges, each with a full credit pool.
    let mut senders: Vec<CreditSender<Record>> = Vec::with_capacity(parallelism);
    let mut receivers: Vec<CreditReceiver<Record>> = Vec::with_capacity(parallelism);
    for _ in 0..parallelism {
        let (tx, rx) = credit_channel(credits, stall_timeout);
        senders.push(tx);
        receivers.push(rx);
    }

    // The in-flight counter: one credit per record currently enqueued,
    // pending, or being processed.  The bounded queues mean the initial
    // workset must be seeded *while* the workers drain (seeding everything
    // up front could exceed the credit pools), so a held seeding credit
    // keeps the fixpoint unreachable until every seed is enqueued.
    let in_flight = Arc::new(AtomicI64::new(0));
    in_flight.fetch_add(1, Ordering::SeqCst);
    // Any worker that exits — fixpoint, stall, disconnection, or panic —
    // flips this so every sibling exits too instead of polling forever on
    // credits a dead worker can no longer release.
    let aborted = Arc::new(AtomicBool::new(false));

    // The asynchronous workers block in `recv_timeout` until the in-flight
    // counter drains, so they must not run on the shared global pool (they
    // would starve other scopes).  A dedicated pool sized to the partition
    // count is created once per run and its workers live for the whole
    // asynchronous execution.
    let pool = spinning_pool::ThreadPool::new(parallelism);
    let mut solution_partitions = solution.take_partitions();
    let mut outcome_slots: Vec<Option<Result<WorkerOutcome>>> =
        (0..parallelism).map(|_| None).collect();
    let mut seed_error: Option<DataflowError> = None;
    let scope_result = pool.try_scope(|scope| {
        for (partition, ((s_part, receiver), slot)) in solution_partitions
            .iter_mut()
            .zip(receivers)
            .zip(outcome_slots.iter_mut())
            .enumerate()
        {
            let senders: Vec<CreditSender<Record>> = senders.to_vec();
            let in_flight = Arc::clone(&in_flight);
            let aborted = Arc::clone(&aborted);
            let comparator = comparator.clone();
            let constant = &constant_index[partition];
            scope.spawn_labeled("async-microstep", move || {
                let result = run_worker(
                    partition,
                    iteration,
                    s_part,
                    constant,
                    &comparator,
                    router,
                    &receiver,
                    &senders,
                    &in_flight,
                    &aborted,
                    stall_timeout,
                );
                // However this worker ended, its siblings must not keep
                // polling for credits it can no longer release.
                aborted.store(true, Ordering::SeqCst);
                *slot = Some(result);
            });
        }

        // Seed the initial workset from the driver thread while the workers
        // drain; the blocking send applies backpressure with the same typed
        // timeout the workers use.
        let seed_senders: Vec<CreditSender<Record>> = senders.to_vec();
        for record in initial_workset {
            let target = router.route(&record, &iteration.workset_key);
            in_flight.fetch_add(1, Ordering::SeqCst);
            if let Err(error) = seed_senders[target].send(record) {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                seed_error = Some(match error {
                    SendError::Timeout(_) => DataflowError::CommTimeout(format!(
                        "seeding the asynchronous workset stalled: no queue credit \
                         for partition {target} within {stall_timeout:?}"
                    )),
                    // A worker died; the scope/worker error explains why.
                    SendError::Disconnected(_) => DataflowError::ExecutionFailed(
                        "a worker exited while the initial workset was being seeded".into(),
                    ),
                });
                break;
            }
        }
        // Release the seeding credit: the fixpoint is now reachable.
        in_flight.fetch_sub(1, Ordering::SeqCst);
    });
    solution.restore_partitions(solution_partitions);
    drop(senders);
    if let Err(panic) = scope_result {
        return Err(DataflowError::WorkerPanic {
            operator: "async-microstep".into(),
            superstep: 1,
            message: panic.message(),
        });
    }

    let mut stats = IterationStats::for_iteration(1);
    let mut first_error = None;
    for slot in outcome_slots {
        match slot.expect("pool ran every asynchronous worker") {
            Ok(outcome) => {
                stats.workset_size += outcome.processed;
                stats.elements_inspected += outcome.processed;
                stats.elements_changed += outcome.changed;
                stats.messages_sent += outcome.messages_sent;
                stats.messages_shipped += outcome.messages_shipped;
                stats.queue_high_water = stats.queue_high_water.max(outcome.queue_high_water);
            }
            Err(error) => first_error = first_error.or(Some(error)),
        }
    }
    if let Some(error) = first_error.or(seed_error) {
        return Err(error);
    }
    stats.elapsed = start.elapsed();
    let run_stats = IterationRunStats {
        per_iteration: vec![stats],
        total_elapsed: start.elapsed(),
    };
    Ok(WorksetResult {
        solution: solution.records(),
        supersteps: 1,
        // Counter-based termination only fires at the fixpoint: the in-flight
        // count reaching zero proves no record is queued or being processed.
        converged: true,
        stats: run_stats,
    })
}

/// One asynchronous worker: drains its bounded queue, updates its solution
/// partition, and routes expansions — servicing its own inbox whenever a
/// target queue is full, so cycles of full queues drain instead of
/// deadlocking.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    partition: usize,
    iteration: &WorksetIteration,
    s_part: &mut crate::solution_set::PartitionIndex,
    constant: &FxHashMap<Key, Vec<Record>>,
    comparator: &Option<crate::solution_set::RecordComparator>,
    router: &PartitionRouter,
    receiver: &CreditReceiver<Record>,
    senders: &[CreditSender<Record>],
    in_flight: &AtomicI64,
    aborted: &AtomicBool,
    stall_timeout: Duration,
) -> Result<WorkerOutcome> {
    let mut outcome = WorkerOutcome {
        processed: 0,
        changed: 0,
        messages_sent: 0,
        messages_shipped: 0,
        queue_high_water: 0,
    };
    let mut expand_buffer: Vec<Record> = Vec::new();
    let mut pending = PendingSends::new(in_flight);
    // Set while every pending flush *and* the inbox make no progress; a
    // stall outliving the comm timeout is a deadlock surfaced as an error.
    let mut stalled_since: Option<Instant> = None;

    macro_rules! process {
        ($record:expr) => {{
            let record: Record = $record;
            let _credit = CreditGuard(in_flight);
            outcome.processed += 1;
            let key = Key::extract(&record, &iteration.workset_key);
            let delta = {
                let current = s_part.get(&key);
                iteration
                    .update
                    .update(&key, current, std::slice::from_ref(&record))
            };
            if let Some(delta) = delta {
                // A surviving delta serializes into the paged index; this
                // worker's heap copy feeds the expansion (no clone).
                let applied = SolutionSet::merge_detached(
                    s_part,
                    comparator,
                    &iteration.solution_key,
                    &delta,
                );
                if applied {
                    outcome.changed += 1;
                    let matches = constant
                        .get(&Key::extract(&delta, &iteration.delta_key))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]);
                    expand_buffer.clear();
                    iteration.expand.expand(&delta, matches, &mut expand_buffer);
                    for new_record in expand_buffer.drain(..) {
                        let target = router.route(&new_record, &iteration.workset_key);
                        outcome.messages_sent += 1;
                        if target != partition {
                            outcome.messages_shipped += 1;
                        }
                        // The expansion takes an in-flight credit now; the
                        // queue credit is acquired when the flush loop
                        // enqueues it.
                        pending.push(target, new_record);
                    }
                }
            }
            // `_credit` drops here, releasing this record's credit only
            // after all the records it caused are accounted in-flight —
            // and also on unwind, so a panicking worker cannot wedge its
            // siblings.
        }};
    }

    'run: loop {
        // Flush pending expansions before taking new work.
        if let Some((target, record)) = pending.items.pop_front() {
            match senders[target].try_send(record) {
                Ok(()) => {
                    stalled_since = None;
                }
                Err(TrySendError::Full(record)) => {
                    pending.items.push_front((target, record));
                    // The target queue is full: service our own inbox so the
                    // cycle keeps draining (the consumer we are waiting on
                    // may itself be blocked sending to us).
                    match receiver.try_recv() {
                        Ok(record) => {
                            process!(record);
                            stalled_since = None;
                        }
                        Err(_) => {
                            if aborted.load(Ordering::SeqCst) {
                                break 'run;
                            }
                            // Nothing to service: park on the blocked edge
                            // briefly so the consumer's next dequeue wakes
                            // us immediately.
                            let (target, record) =
                                pending.items.pop_front().expect("pushed back above");
                            match senders[target].send_deadline(record, IDLE_POLL) {
                                Ok(()) => {
                                    stalled_since = None;
                                }
                                Err(SendError::Timeout(record)) => {
                                    pending.items.push_front((target, record));
                                    let since = *stalled_since.get_or_insert_with(Instant::now);
                                    if since.elapsed() >= stall_timeout {
                                        return Err(DataflowError::CommTimeout(format!(
                                            "asynchronous microstep worker {partition} made no \
                                             progress for {stall_timeout:?}: no queue credit for \
                                             partition {target} and nothing to drain"
                                        )));
                                    }
                                }
                                Err(SendError::Disconnected(record)) => {
                                    pending.abandon(record);
                                    break 'run;
                                }
                            }
                        }
                    }
                }
                Err(TrySendError::Disconnected(record)) => {
                    // The target worker is gone (panic or abort); drop the
                    // record, release its credit, and shut down — the run is
                    // surfacing an error elsewhere.
                    pending.abandon(record);
                    break 'run;
                }
            }
            continue 'run;
        }
        match receiver.recv_timeout(IDLE_POLL) {
            Ok(record) => {
                process!(record);
                stalled_since = None;
            }
            Err(RecvTimeoutError::Timeout) => {
                if in_flight.load(Ordering::SeqCst) == 0 || aborted.load(Ordering::SeqCst) {
                    break 'run;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break 'run,
        }
    }
    outcome.queue_high_water = receiver.high_water();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workset::{ExecutionMode, ExpandClosure, UpdateClosure, WorksetIteration};

    /// Asynchronous minimum propagation over a ring of `n` vertices.
    fn ring_iteration(n: i64) -> (WorksetIteration, Vec<Record>, Vec<Record>) {
        let update = Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let candidate = candidates.iter().map(|r| r.long(1)).min().unwrap();
                match current {
                    Some(c) if c.long(1) <= candidate => None,
                    _ => Some(Record::pair(key.values()[0].as_long(), candidate)),
                }
            },
        ));
        let expand = Arc::new(ExpandClosure(
            |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
                for e in edges {
                    out.push(Record::pair(e.long(1), delta.long(1)));
                }
            },
        ));
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Record::pair(v, (v + 1) % n));
            edges.push(Record::pair((v + 1) % n, v));
        }
        let iteration = WorksetIteration::builder(vec![0], vec![0], update, expand)
            .constant_input(Arc::new(edges), vec![0], vec![0])
            .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
            .build();
        let solution: Vec<Record> = (0..n).map(|v| Record::pair(v, v + 100)).collect();
        let workset: Vec<Record> = (0..n)
            .flat_map(|v| {
                vec![
                    Record::pair((v + 1) % n, v + 100),
                    Record::pair((v + n - 1) % n, v + 100),
                ]
            })
            .collect();
        (iteration, solution, workset)
    }

    #[test]
    fn asynchronous_execution_reaches_the_fixpoint() {
        let (iteration, solution, workset) = ring_iteration(64);
        let config = WorksetConfig::new(4).with_mode(ExecutionMode::AsynchronousMicrostep);
        let result = iteration.run(solution, workset, &config).unwrap();
        assert_eq!(result.solution.len(), 64);
        // The minimum initial value (100, at vertex 0) floods the whole ring.
        assert!(result.solution.iter().all(|r| r.long(1) == 100));
        assert_eq!(result.supersteps, 1);
        assert!(result.stats.per_iteration[0].elements_changed >= 63);
    }

    #[test]
    fn asynchronous_matches_superstep_execution() {
        let (iteration, solution, workset) = ring_iteration(32);
        let sync_result = iteration
            .run(solution.clone(), workset.clone(), &WorksetConfig::new(3))
            .unwrap();
        let async_result = iteration
            .run(
                solution,
                workset,
                &WorksetConfig::new(3).with_mode(ExecutionMode::AsynchronousMicrostep),
            )
            .unwrap();
        let mut a = sync_result.solution;
        let mut b = async_result.solution;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_workset_finishes_without_work() {
        let (iteration, solution, _workset) = ring_iteration(8);
        let config = WorksetConfig::new(2).with_mode(ExecutionMode::AsynchronousMicrostep);
        let result = iteration.run(solution.clone(), vec![], &config).unwrap();
        assert_eq!(result.solution.len(), solution.len());
        assert_eq!(result.stats.per_iteration[0].messages_sent, 0);
    }

    #[test]
    fn single_worker_asynchronous_execution_works() {
        let (iteration, solution, workset) = ring_iteration(16);
        let config = WorksetConfig::new(1).with_mode(ExecutionMode::AsynchronousMicrostep);
        let result = iteration.run(solution, workset, &config).unwrap();
        assert!(result.solution.iter().all(|r| r.long(1) == 100));
    }

    #[test]
    fn tight_credit_bound_still_reaches_the_fixpoint() {
        // One credit per edge: maximum backpressure, including on the
        // seeding driver and on self-sends.  The fixpoint must be identical
        // and the queue high-water mark must respect the bound.
        let (iteration, solution, workset) = ring_iteration(48);
        let config = WorksetConfig::new(4)
            .with_mode(ExecutionMode::AsynchronousMicrostep)
            .with_channel_credits(1);
        let result = iteration.run(solution, workset, &config).unwrap();
        assert!(result.solution.iter().all(|r| r.long(1) == 100));
        let high_water = result.stats.per_iteration[0].queue_high_water;
        assert!(high_water <= 1, "high water {high_water} exceeds 1 credit");
        assert!(high_water >= 1, "a 48-ring run must enqueue something");
    }

    #[test]
    fn ignored_budget_warning_names_the_budget_and_the_remedy() {
        let message = ignored_budget_warning(&MemoryBudget::bytes(4096));
        assert!(message.starts_with("warning:"), "message: {message}");
        assert!(message.contains("4096 bytes"), "message: {message}");
        assert!(message.contains("ignores"), "message: {message}");
        assert!(
            message.contains("with_channel_credits") && message.contains(CHANNEL_CREDITS_ENV),
            "the warning must point at the knob that does apply: {message}"
        );
    }

    #[test]
    fn finite_budget_still_reaches_the_fixpoint_asynchronously() {
        // The budget is ignored (with a warning) — the run itself must be
        // unaffected.
        let (iteration, solution, workset) = ring_iteration(24);
        let config = WorksetConfig::new(3)
            .with_mode(ExecutionMode::AsynchronousMicrostep)
            .with_memory_budget(MemoryBudget::bytes(1024));
        let result = iteration.run(solution, workset, &config).unwrap();
        assert!(result.solution.iter().all(|r| r.long(1) == 100));
    }

    #[test]
    fn bounded_channels_match_the_generous_default() {
        let (iteration, solution, workset) = ring_iteration(32);
        let generous = iteration
            .run(
                solution.clone(),
                workset.clone(),
                &WorksetConfig::new(3).with_mode(ExecutionMode::AsynchronousMicrostep),
            )
            .unwrap();
        let tight = iteration
            .run(
                solution,
                workset,
                &WorksetConfig::new(3)
                    .with_mode(ExecutionMode::AsynchronousMicrostep)
                    .with_channel_credits(2),
            )
            .unwrap();
        let mut a = generous.solution;
        let mut b = tight.solution;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(tight.stats.per_iteration[0].queue_high_water <= 2);
    }
}
