//! # spinning-core — bulk and incremental iterations for parallel dataflows
//!
//! This crate implements the contribution of *Spinning Fast Iterative Data
//! Flows* (Ewen, Tzoumas, Kaufmann, Markl — VLDB 2012): embedding iterations
//! into a parallel dataflow system such that algorithms with sparse
//! computational dependencies run as fast as in specialized systems, while
//! keeping the general dataflow abstraction.
//!
//! * [`bulk`] — **bulk iterations** `(G, I, O, T)`: the step dataflow `G` is
//!   re-executed with feedback-channel semantics until the termination
//!   criterion fires; loop-invariant inputs are cached, and the step plan is
//!   optimized with iteration-aware costs (Section 4).
//! * [`workset`] — **incremental (workset) iterations** `(Δ, S0, W0)`: the
//!   partial solution lives in a partitioned, keyed [`SolutionSet`] index
//!   that persists across supersteps; the step function produces a *delta
//!   set* merged with the `∪̇` operator and the next working set (Section 5).
//!   Supports the batch-incremental (`InnerCoGroup`) and microstep (`Match`)
//!   variants.
//! * [`microstep`] — asynchronous microstep execution without superstep
//!   barriers, with counter-based termination detection (Sections 2.2, 5.3).
//! * [`eligibility`] — the structural conditions under which a step function
//!   may execute in microsteps (Section 5.2).
//! * [`stats`] — per-iteration counters (runtime, working-set size, elements
//!   inspected/changed, messages) backing the reproduction of the paper's
//!   figures.
//!
//! ```
//! use spinning_core::prelude::*;
//! use dataflow::prelude::*;
//! use std::sync::Arc;
//!
//! // Propagate the minimum label through a 3-vertex path 0-1-2.
//! let update = Arc::new(UpdateClosure(|key: &Key, cur: Option<&Record>, cands: &[Record]| {
//!     let best = cands.iter().map(|r| r.long(1)).min().unwrap();
//!     match cur {
//!         Some(c) if c.long(1) <= best => None,
//!         _ => Some(Record::pair(key.values()[0].as_long(), best)),
//!     }
//! }));
//! let expand = Arc::new(ExpandClosure(|d: &Record, edges: &[Record], out: &mut Vec<Record>| {
//!     for e in edges {
//!         out.push(Record::pair(e.long(1), d.long(1)));
//!     }
//! }));
//! let edges = vec![Record::pair(0, 1), Record::pair(1, 0), Record::pair(1, 2), Record::pair(2, 1)];
//! let iteration = WorksetIteration::builder(vec![0], vec![0], update, expand)
//!     .constant_input(Arc::new(edges), vec![0], vec![0])
//!     .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
//!     .build();
//! let solution = vec![Record::pair(0, 7), Record::pair(1, 8), Record::pair(2, 9)];
//! let workset = vec![Record::pair(1, 7), Record::pair(0, 8), Record::pair(2, 8), Record::pair(1, 9)];
//! let result = iteration.run(solution, workset, &WorksetConfig::new(2)).unwrap();
//! assert!(result.solution.iter().all(|r| r.long(1) == 7));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bulk;
pub mod checkpoint;
pub mod eligibility;
pub mod microstep;
pub mod solution_set;
pub mod stats;
pub mod workset;

/// Commonly used types for building iterative dataflow programs.
pub mod prelude {
    pub use crate::bulk::{BulkConfig, BulkIteration, BulkIterationResult, TerminationCriterion};
    pub use crate::checkpoint::{CheckpointPolicy, CheckpointStore, RestoredCheckpoint};
    pub use crate::eligibility::{check_microstep_eligibility, Eligibility};
    pub use crate::solution_set::{MergeOutcome, RecordComparator, SolutionSet};
    pub use crate::stats::{IterationRunStats, IterationStats};
    pub use crate::workset::{
        ExecutionMode, ExpandClosure, ExpandFunction, UpdateClosure, UpdateFunction, WorksetConfig,
        WorksetIteration, WorksetIterationBuilder, WorksetResult, WorksetRouting,
    };
}

pub use prelude::*;
