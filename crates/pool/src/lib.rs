//! # spinning-pool — a persistent work-stealing worker pool
//!
//! The iteration runtimes of this workspace execute many very small parallel
//! regions: one per operator local phase, one per superstep.  On long-tail
//! workloads (the paper's Webbase Connected Components needs 700+ supersteps,
//! most of which process a tiny working set) the dominant cost of a late
//! superstep is not the work but the `std::thread::spawn` round per
//! partition.  This crate replaces those per-region spawns with a pool of
//! persistent workers: scheduling a partition task becomes a deque push plus,
//! at worst, one unpark.
//!
//! The design is the classic work-stealing arrangement, hand-rolled on `std`
//! only (the workspace builds offline with no external dependencies):
//!
//! * one **deque per worker** — a worker pushes tasks it spawns (e.g. from a
//!   nested scope) onto its own deque and pops from it first;
//! * a **global injector** queue fed by threads outside the pool (the driver
//!   thread submitting a superstep);
//! * **stealing** — an idle worker drains the injector, then steals from its
//!   siblings' deques before giving up;
//! * **parking/unparking** — workers with nothing to do park on a condvar;
//!   submitting a task unparks one worker iff any are sleeping, with a
//!   SeqCst pending-counter handshake that makes lost wakeups impossible.
//!
//! The API mirrors `std::thread::scope`, so call sites migrate by swapping
//! the scope constructor:
//!
//! ```
//! let pool = spinning_pool::ThreadPool::new(4);
//! let mut results = vec![0u64; 8];
//! pool.scope(|s| {
//!     for (i, slot) in results.iter_mut().enumerate() {
//!         s.spawn(move || *slot = (i as u64) * 2);
//!     }
//! });
//! assert_eq!(results[7], 14);
//! ```
//!
//! [`ThreadPool::scope`] blocks until every spawned task has finished — while
//! waiting, the calling thread *helps* by executing queued tasks itself.
//! That property makes nested scopes deadlock-free even on a single-worker
//! pool, and means a scope over `N` partitions always has `N + 1` threads
//! available to run them.  A panic in a task is caught, forwarded, and
//! re-raised from `scope` on the submitting thread (the first panic wins, all
//! other tasks still run to completion).
//!
//! Most callers want [`global`], the shared process-wide pool sized to the
//! available hardware parallelism.  Tasks that **block** (e.g. the
//! asynchronous microstep workers, which poll channels until a termination
//! counter drains) must not run on the shared pool — they would starve other
//! scopes; such callers create a dedicated [`ThreadPool`] sized to their
//! partition count instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased, lifetime-erased task.  Tasks are truly `'scope`-bounded;
/// [`Scope::spawn`] erases the lifetime, which is sound because
/// [`ThreadPool::scope`] never returns before every task of the scope has
/// completed.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Defensive upper bound on a worker's park time.  Neither correctness nor
/// liveness relies on it: the SeqCst handshake in [`Shared::push`] /
/// [`Shared::worker_loop`] prevents lost wakeups, and even a worker that
/// never woke could not stall a scope (the scope owner's help loop runs
/// queued tasks itself).  The long timeout only bounds the throughput damage
/// of a hypothetical protocol bug while keeping idle workers cheap
/// (2 wakes/second each).
const PARK_TIMEOUT: Duration = Duration::from_millis(500);

/// How long a helping thread waits for scope completion before re-checking
/// the queues for newly spawned tasks it could run itself.
const HELP_POLL: Duration = Duration::from_micros(200);

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this thread,
    /// if any.  Lets spawns from worker threads target their own deque and
    /// lets a waiting scope pop from the right queues.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// Tasks submitted by threads outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker; workers push nested spawns here and siblings
    /// steal from it.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Tasks queued but not yet popped.  Incremented *before* the task is
    /// pushed, decremented when it is popped, so `pending == 0` while a
    /// worker holds the park lock proves there is nothing to pick up.
    pending: AtomicUsize,
    /// Workers currently inside (or committed to) a condvar wait.
    sleepers: AtomicUsize,
    /// Lock of the parking protocol; guards the condvar and brackets the
    /// sleepers/pending handshake on the worker side.
    park: Mutex<()>,
    /// Parked workers wait here.
    unpark: Condvar,
    /// Set by `Drop`; parked workers exit when they observe it.
    shutdown: AtomicBool,
    /// Distinguishes the deques of different pools in `CURRENT_WORKER`.
    id: usize,
}

impl Shared {
    /// Submits a task, unparking one worker if any are asleep.
    fn push(&self, job: Job) {
        // Increment before pushing: a worker that observes `pending == 0`
        // under the park lock can safely sleep, because this increment is
        // SeqCst-ordered against its `sleepers` increment (see worker_loop).
        self.pending.fetch_add(1, Ordering::SeqCst);
        match self.current_worker() {
            Some(w) => self.deques[w].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock before notifying closes the window in which the
            // worker has advertised itself as a sleeper but has not entered
            // the condvar wait yet.
            let _guard = self.park.lock().unwrap();
            self.unpark.notify_one();
        }
    }

    /// Pops a task: own deque first (when called from a worker), then the
    /// injector, then steal from sibling deques.
    fn find_job(&self, worker: Option<usize>) -> Option<Job> {
        if let Some(w) = worker {
            if let Some(job) = self.deques[w].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.deques.len();
        let first = worker.map(|w| w + 1).unwrap_or(0);
        for offset in 0..n {
            let victim = (first + offset) % n;
            if Some(victim) == worker {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// The calling thread's worker index in *this* pool, if it is one of this
    /// pool's workers.
    fn current_worker(&self) -> Option<usize> {
        CURRENT_WORKER.with(|w| match w.get() {
            Some((pool, index)) if pool == self.id => Some(index),
            _ => None,
        })
    }

    /// The main loop of one pool worker.
    fn worker_loop(self: &Arc<Self>, index: usize) {
        CURRENT_WORKER.with(|w| w.set(Some((self.id, index))));
        loop {
            if let Some(job) = self.find_job(Some(index)) {
                job();
                continue;
            }
            let guard = self.park.lock().unwrap();
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Advertise the sleep *before* re-checking for work: push()
            // increments `pending` before reading `sleepers`, so under the
            // SeqCst total order either this worker sees the new task and
            // skips the wait, or the pusher sees the sleeper and notifies.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.pending.load(Ordering::SeqCst) == 0 {
                let (guard, _timeout) = self.unpark.wait_timeout(guard, PARK_TIMEOUT).unwrap();
                drop(guard);
            } else {
                drop(guard);
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A caught task panic: the payload plus the static label the task was
/// spawned with (see [`Scope::spawn_labeled`]), so callers of
/// [`ThreadPool::try_scope`] can report *which* kind of task failed instead
/// of re-raising an opaque unwind.
pub struct ScopePanic {
    label: Option<&'static str>,
    payload: Box<dyn Any + Send>,
}

impl ScopePanic {
    /// The label passed at spawn, if the task was spawned with one.
    pub fn label(&self) -> Option<&'static str> {
        self.label
    }

    /// The panic message, when the payload was a string (the overwhelmingly
    /// common case: `panic!("...")` or a failed `expect`).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// The raw panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send> {
        self.payload
    }

    /// Re-raises the panic on the calling thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for ScopePanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopePanic")
            .field("label", &self.label)
            .field("message", &self.message())
            .finish()
    }
}

/// Book-keeping of one [`ThreadPool::scope`]: the number of unfinished tasks
/// and the first panic payload, if any.
struct ScopeState {
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<ScopePanic>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            remaining: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
    }

    /// Called by the wrapper of every task when it finishes (normally or by
    /// panic).  The AcqRel RMW chain makes every task's writes visible to the
    /// scope owner once it observes `remaining == 0`.
    fn complete(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock().unwrap();
            self.done.notify_all();
        }
    }

    /// Briefly waits for the scope to complete; wakes early when the last
    /// task finishes, or after [`HELP_POLL`] to look for newly spawned tasks.
    fn wait_brief(&self) {
        let guard = self.done_lock.lock().unwrap();
        if !self.is_done() {
            let _ = self.done.wait_timeout(guard, HELP_POLL).unwrap();
        }
    }

    /// Records the first panic of the scope; later panics are dropped (they
    /// would otherwise abort the process during the unwind of the first).
    fn store_panic(&self, label: Option<&'static str>, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(ScopePanic { label, payload });
        }
    }
}

/// A persistent pool of worker threads executing scoped tasks.
///
/// Create one with [`ThreadPool::new`] or use the shared [`global`] pool.
/// Dropping the pool parks no new work, wakes all workers and joins them.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        static POOL_IDS: AtomicUsize = AtomicUsize::new(0);
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
            shutdown: AtomicBool::new(false),
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spinning-pool-{index}"))
                    .spawn(move || shared.worker_loop(index))
                    .expect("spawn pool worker thread")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing `'env` data can be
    /// spawned, and blocks until every spawned task has completed.
    ///
    /// Mirrors [`std::thread::scope`]: tasks may borrow anything that
    /// outlives the call, and the calling thread participates in executing
    /// queued tasks while it waits (which makes nested scopes deadlock-free).
    /// If a task panics, the panic is re-raised here after all tasks of the
    /// scope have finished.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        match self.try_scope(f) {
            Ok(value) => value,
            Err(panic) => panic.resume(),
        }
    }

    /// Like [`ThreadPool::scope`], but a task panic is *returned* as a
    /// [`ScopePanic`] (payload + spawn label) instead of re-raised — the hook
    /// that lets an executor convert a worker crash into a typed error and
    /// recover.  All tasks of the scope still run to completion first, and a
    /// panic in the scope *body* (the caller's own code) is still re-raised.
    pub fn try_scope<'env, F, R>(&'env self, f: F) -> Result<R, ScopePanic>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: &state,
            scope: PhantomData,
            env: PhantomData,
        };
        // Run the scope body, but even if it panics, wait for the tasks it
        // already spawned — they borrow stack data of this frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        let worker = self.shared.current_worker();
        while !state.is_done() {
            match self.shared.find_job(worker) {
                Some(job) => job(),
                None => state.wait_brief(),
            }
        }

        let task_panic = state.panic.lock().unwrap().take();
        match result {
            // The body's own panic takes precedence: it is the caller's
            // unwind, not a worker failure, and must not be swallowed.
            Err(payload) => resume_unwind(payload),
            Ok(value) => match task_panic {
                Some(panic) => Err(panic),
                None => Ok(value),
            },
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.park.lock().unwrap();
            self.shared.unpark.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The shared process-wide pool, created on first use and sized to the
/// available hardware parallelism.
///
/// All non-blocking parallel regions (operator local phases, superstep
/// partitions, baseline-engine partitions) run here, so their dispatch cost
/// is a deque push regardless of how many drivers are active.  Do **not**
/// submit tasks that block indefinitely — give them a dedicated
/// [`ThreadPool`] instead.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(threads)
    })
}

/// Handle for spawning tasks inside one [`ThreadPool::scope`] call.
///
/// The two lifetimes mirror [`std::thread::Scope`]: `'scope` is the duration
/// of the scope itself, `'env` the environment the tasks may borrow.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: &'scope Arc<ScopeState>,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the pool.  The task may borrow `'env` data (e.g.
    /// `&mut` slots of a result vector, one per task); the surrounding
    /// [`ThreadPool::scope`] call returns only after the task has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_inner(None, f)
    }

    /// Like [`Scope::spawn`] with a static label naming the kind of task; if
    /// the task panics, the label travels with the payload in the
    /// [`ScopePanic`] so the scope owner can report which dispatch site
    /// failed.
    pub fn spawn_labeled<F>(&self, label: &'static str, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_inner(Some(label), f)
    }

    fn spawn_inner<F>(&self, label: Option<&'static str>, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.remaining.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.store_panic(label, payload);
            }
            state.complete();
        });
        // SAFETY: the job only borrows data that outlives 'env ⊇ 'scope, and
        // `ThreadPool::scope` does not return (normally or by unwind) before
        // `state.remaining` has dropped to zero — i.e. before this job has
        // run to completion and been dropped.  The erased box therefore never
        // outlives the borrows it captures.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.shared.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_more_tasks_than_workers() {
        let pool = ThreadPool::new(2);
        let mut results = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, &r) in results.iter().enumerate() {
            assert_eq!(r, i * i);
        }
    }

    #[test]
    fn tasks_borrow_the_environment_mutably() {
        let pool = ThreadPool::new(3);
        let mut data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&mut [u64]> = data.chunks_mut(17).collect();
        pool.scope(|s| {
            for chunk in chunks {
                s.spawn(move || {
                    for x in chunk.iter_mut() {
                        *x *= 3;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == 3 * i as u64));
    }

    #[test]
    fn scope_returns_the_closure_result() {
        let pool = ThreadPool::new(1);
        let n = pool.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(n, 42);
    }

    #[test]
    fn zero_thread_request_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut hit = false;
        pool.scope(|s| s.spawn(|| hit = true));
        assert!(hit);
    }

    #[test]
    fn nested_scopes_complete_even_on_a_single_worker() {
        // A task opening its own scope must not deadlock: the worker running
        // it helps execute the nested tasks, and the driver thread helps too.
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn sibling_tasks_spawned_from_a_task_are_stolen() {
        // Tasks spawned from a worker land on its own deque; with several
        // workers the siblings steal them.  Assert they all run.
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                pool.scope(|inner| {
                    for _ in 0..64 {
                        inner.spawn(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is the original message");
        assert_eq!(message, "task exploded");
        // The panic does not cancel the scope's other tasks.
        assert_eq!(finished.load(Ordering::Relaxed), 8);

        // The pool survives a panicked scope.
        let mut ok = false;
        pool.scope(|s| s.spawn(|| ok = true));
        assert!(ok);
    }

    #[test]
    fn panic_in_the_scope_body_still_waits_for_tasks() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("scope body exploded");
            });
        }));
        assert!(result.is_err());
        // All tasks ran before the panic resumed (they borrow this frame).
        assert_eq!(finished.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn many_tiny_sequential_scopes_reuse_the_workers() {
        // The superstep pattern: hundreds of scopes, each with a handful of
        // sub-millisecond tasks.  This is the dispatch path the pool exists
        // to make cheap; here we only assert it stays correct.
        let pool = ThreadPool::new(2);
        let mut total = 0u64;
        for round in 0..500u64 {
            let mut slots = [0u64; 4];
            pool.scope(|s| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    s.spawn(move || *slot = round + i as u64);
                }
            });
            total += slots.iter().sum::<u64>();
        }
        assert_eq!(total, (0..500u64).map(|r| 4 * r + 6).sum::<u64>());
    }

    #[test]
    fn concurrent_scopes_from_external_threads_share_the_pool() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|ts| {
            for _ in 0..4 {
                ts.spawn(|| {
                    for _ in 0..50 {
                        pool.scope(|s| {
                            for _ in 0..4 {
                                s.spawn(|| {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 50 * 4);
    }

    #[test]
    fn global_pool_is_shared_and_usable() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
        let mut x = 0;
        global().scope(|s| s.spawn(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.scope(|_| 5), 5);
    }

    #[test]
    fn try_scope_returns_the_panic_with_its_label() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = pool.try_scope(|s| {
            s.spawn_labeled("superstep-partition", || panic!("worker {} died", 3));
            for _ in 0..8 {
                s.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let panic = result.expect_err("try_scope must surface the task panic");
        assert_eq!(panic.label(), Some("superstep-partition"));
        assert_eq!(panic.message(), "worker 3 died");
        // A task panic does not cancel the scope's other tasks.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // And the pool keeps working afterwards.
        assert!(pool.try_scope(|s| s.spawn(|| {})).is_ok());
    }

    #[test]
    fn try_scope_without_panic_returns_the_body_result() {
        let pool = ThreadPool::new(2);
        let value = pool.try_scope(|s| {
            s.spawn(|| {});
            11
        });
        assert_eq!(value.unwrap(), 11);
    }

    #[test]
    fn unlabeled_panics_have_no_label_but_keep_the_message() {
        let pool = ThreadPool::new(1);
        let panic = pool
            .try_scope(|s| s.spawn(|| panic!("plain")))
            .expect_err("panic expected");
        assert_eq!(panic.label(), None);
        assert_eq!(panic.message(), "plain");
        // resume() re-raises the original payload.
        let raised = catch_unwind(AssertUnwindSafe(|| panic.resume())).unwrap_err();
        assert_eq!(raised.downcast_ref::<&str>(), Some(&"plain"));
    }

    #[test]
    fn dropping_the_pool_joins_all_workers() {
        let pool = ThreadPool::new(3);
        let mut slots = [0usize; 8];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i + 1);
            }
        });
        drop(pool);
        assert!(slots.iter().all(|&s| s > 0));
    }
}
