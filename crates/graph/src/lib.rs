//! # graphdata — graph substrate for the evaluation workloads
//!
//! Provides the graphs the iterative algorithms run on:
//!
//! * [`graph`] — an immutable CSR [`Graph`] with a sequential
//!   union-find connected-components oracle used for testing.
//! * [`generators`] — synthetic generators (R-MAT power-law graphs, chains,
//!   rings, stars, Erdős–Rényi) standing in for the paper's non-redistributable
//!   corpora.
//! * [`datasets`] — named profiles matching Table 2 of the paper
//!   (Wikipedia-EN, Webbase, Hollywood, Twitter) plus the FOAF subgraph of
//!   Figure 2, generated at a configurable downscale factor.
//! * [`sample`] — the 9-vertex walkthrough graph of Figure 1.
//! * [`io`] — plain-text edge-list reading and writing for running on real
//!   data.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod generators;
pub mod graph;
pub mod io;
pub mod rng;
pub mod sample;

pub use crate::datasets::{DatasetProfile, GraphShape, GraphSummary};
pub use crate::generators::{chain, erdos_renyi, ring, rmat, star, RmatParams};
pub use crate::graph::{Graph, VertexId};
pub use crate::io::{parse_edge_list, parse_weighted_edge_list, read_edge_list, write_edge_list};
pub use crate::rng::SmallRng;
pub use crate::sample::{figure1_expected_components, figure1_graph};
