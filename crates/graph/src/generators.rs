//! Synthetic graph generators.
//!
//! The paper evaluates on four graphs from the University of Milan Web Data
//! Set Repository (Wikipedia-EN, Webbase-2001, Hollywood, Twitter) and the
//! FOAF subgraph of the Billion Triple Challenge crawl.  Those corpora are
//! not redistributable with this repository, so the benchmark harness
//! generates synthetic graphs with matched *shape*: recursive-matrix (R-MAT)
//! graphs reproduce the skewed degree distributions of web and social graphs,
//! long chains reproduce the huge-diameter component that makes Connected
//! Components on Webbase run for 744 iterations, and Erdős–Rényi graphs serve
//! as a uniform-degree control.

use crate::graph::{Graph, VertexId};
use crate::rng::SmallRng;

/// R-MAT quadrant probabilities.  The defaults (0.57, 0.19, 0.19, 0.05) are
/// the standard "web graph like" parameterisation.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    /// Probability of recursing into the bottom-right quadrant.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    /// Parameters producing a denser, more social-network-like graph (heavier
    /// tail, more clustering of high-degree vertices).
    pub fn social() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }
}

/// Generates a directed R-MAT graph with `num_vertices` (rounded up to a
/// power of two internally, then truncated) and approximately `num_edges`
/// edges.
pub fn rmat(num_vertices: usize, num_edges: usize, params: RmatParams, seed: u64) -> Graph {
    assert!(num_vertices > 1, "graphs need at least two vertices");
    let levels = (num_vertices as f64).log2().ceil() as u32;
    let side = 1usize << levels;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let (mut row_lo, mut row_hi) = (0usize, side);
        let (mut col_lo, mut col_hi) = (0usize, side);
        while row_hi - row_lo > 1 {
            let r: f64 = rng.gen_f64();
            let (down, right) = if r < params.a {
                (false, false)
            } else if r < params.a + params.b {
                (false, true)
            } else if r < params.a + params.b + params.c {
                (true, false)
            } else {
                (true, true)
            };
            let row_mid = (row_lo + row_hi) / 2;
            let col_mid = (col_lo + col_hi) / 2;
            if down {
                row_lo = row_mid;
            } else {
                row_hi = row_mid;
            }
            if right {
                col_lo = col_mid;
            } else {
                col_hi = col_mid;
            }
        }
        let s = row_lo % num_vertices;
        let t = col_lo % num_vertices;
        if s != t {
            edges.push((s as VertexId, t as VertexId));
        }
    }
    Graph::from_edges(num_vertices, &edges)
}

/// Generates an Erdős–Rényi style graph with the given expected average
/// out-degree.
pub fn erdos_renyi(num_vertices: usize, avg_degree: f64, seed: u64) -> Graph {
    assert!(num_vertices > 1, "graphs need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_edges = (num_vertices as f64 * avg_degree) as usize;
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let s = rng.gen_range(num_vertices as u64) as VertexId;
        let t = rng.gen_range(num_vertices as u64) as VertexId;
        if s != t {
            edges.push((s, t));
        }
    }
    Graph::from_edges(num_vertices, &edges)
}

/// A simple path (chain) of `num_vertices` vertices: the maximum-diameter
/// connected graph, used to reproduce the Webbase long-tail behaviour.
pub fn chain(num_vertices: usize) -> Graph {
    assert!(num_vertices > 1, "graphs need at least two vertices");
    let edges: Vec<(VertexId, VertexId)> = (0..num_vertices as VertexId - 1)
        .map(|v| (v, v + 1))
        .collect();
    Graph::undirected_from_edges(num_vertices, &edges)
}

/// A ring of `num_vertices` vertices.
pub fn ring(num_vertices: usize) -> Graph {
    assert!(num_vertices > 2, "rings need at least three vertices");
    let n = num_vertices as VertexId;
    let edges: Vec<(VertexId, VertexId)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    Graph::undirected_from_edges(num_vertices, &edges)
}

/// A star: vertex 0 connected to every other vertex.  Converges in very few
/// iterations and exercises the high-degree hub case.
pub fn star(num_vertices: usize) -> Graph {
    assert!(num_vertices > 1, "graphs need at least two vertices");
    let edges: Vec<(VertexId, VertexId)> = (1..num_vertices as VertexId).map(|v| (0, v)).collect();
    Graph::undirected_from_edges(num_vertices, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_produces_requested_size_and_is_deterministic() {
        let g1 = rmat(1000, 8000, RmatParams::default(), 42);
        let g2 = rmat(1000, 8000, RmatParams::default(), 42);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1000);
        // Duplicates are removed, so the edge count is close to but at most
        // the requested number.
        assert!(g1.num_edges() > 6000 && g1.num_edges() <= 8000);
    }

    #[test]
    fn rmat_seeds_differ() {
        let g1 = rmat(512, 4096, RmatParams::default(), 1);
        let g2 = rmat(512, 4096, RmatParams::default(), 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn rmat_has_a_skewed_degree_distribution() {
        let g = rmat(4096, 65536, RmatParams::default(), 7);
        // Power-law-ish: the maximum degree is far above the average.
        assert!(g.max_degree() as f64 > 10.0 * g.avg_degree());
    }

    #[test]
    fn erdos_renyi_is_close_to_uniform() {
        let g = erdos_renyi(2048, 8.0, 3);
        assert!((g.avg_degree() - 8.0).abs() < 1.0);
        // Uniform graphs have no extreme hubs.
        assert!((g.max_degree() as f64) < 8.0 * g.avg_degree());
    }

    #[test]
    fn chain_ring_and_star_shapes() {
        let c = chain(100);
        assert_eq!(c.num_edges(), 2 * 99);
        assert_eq!(c.count_components(), 1);
        let r = ring(10);
        assert!(r.vertices().all(|v| r.degree(v) == 2));
        let s = star(50);
        assert_eq!(s.degree(0), 49);
        assert_eq!(s.count_components(), 1);
    }
}
