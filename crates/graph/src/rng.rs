//! A small, dependency-free deterministic pseudo-random number generator.
//!
//! The generators and the property-based tests only need reproducible,
//! reasonably well-mixed randomness — not cryptographic strength — so a
//! SplitMix64 generator (Steele, Lea, Flood: "Fast splittable pseudorandom
//! number generators", OOPSLA 2014) is used instead of an external crate.
//! SplitMix64 passes BigCrush, has a full 2^64 period, and every seed gives
//! an independent-looking stream, which is exactly what the deterministic
//! graph generators require.

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.  Equal seeds produce equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`; `bound` must be positive.  Uses
    /// the widening-multiply trick, which avoids the modulo bias without a
    /// rejection loop.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_produce_equal_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_are_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_index(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
