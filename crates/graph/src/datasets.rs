//! Dataset profiles standing in for the paper's evaluation graphs.
//!
//! Table 2 of the paper lists the four evaluation graphs:
//!
//! | data set     | vertices    | edges         | avg. degree |
//! |--------------|-------------|---------------|-------------|
//! | Wikipedia-EN | 16,513,969  | 219,505,928   | 13.29       |
//! | Webbase      | 115,657,290 | 1,736,677,821 | 15.02       |
//! | Hollywood    | 1,985,306   | 228,985,632   | 115.34      |
//! | Twitter      | 41,652,230  | 1,468,365,182 | 35.25       |
//!
//! plus the FOAF subgraph of the Billion Triple Challenge crawl (1.2 M
//! vertices, 7 M edges) used for Figure 2.  The original corpora cannot ship
//! with this repository, so [`DatasetProfile::generate`] produces synthetic
//! graphs with the same vertex/edge *ratio* and a matching degree character
//! (power-law web/social shape, plus a grafted long-diameter chain for the
//! Webbase profile), scaled down by a configurable factor so benchmarks run
//! on one machine.

use crate::generators::{chain, rmat, RmatParams};
use crate::graph::Graph;

/// The shape of a dataset profile's degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// Web-graph-like power law (Wikipedia, Webbase).
    Web,
    /// Denser social-network-like power law (Hollywood, Twitter).
    Social,
    /// Web-graph-like power law plus a long chain component, reproducing the
    /// ~744-iteration diameter of the Webbase graph's largest component.
    WebLongDiameter,
}

/// A named dataset profile: the paper's graph, its full-scale statistics, and
/// a recipe to generate a shape-matched synthetic graph.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Profile name as used in the paper ("Wikipedia-EN", ...).
    pub name: &'static str,
    /// Vertex count of the original graph (Table 2).
    pub paper_vertices: u64,
    /// Edge count of the original graph (Table 2).
    pub paper_edges: u64,
    /// Degree-distribution shape used for the synthetic stand-in.
    pub shape: GraphShape,
    /// Seed of the generator, so every run sees the same graph.
    pub seed: u64,
}

impl DatasetProfile {
    /// The Wikipedia-EN link graph profile.
    pub fn wikipedia() -> Self {
        DatasetProfile {
            name: "Wikipedia-EN",
            paper_vertices: 16_513_969,
            paper_edges: 219_505_928,
            shape: GraphShape::Web,
            seed: 0x5741_4b49,
        }
    }

    /// The Webbase-2001 web crawl profile (long-diameter largest component).
    pub fn webbase() -> Self {
        DatasetProfile {
            name: "Webbase",
            paper_vertices: 115_657_290,
            paper_edges: 1_736_677_821,
            shape: GraphShape::WebLongDiameter,
            seed: 0x5745_4242,
        }
    }

    /// The Hollywood co-appearance graph profile (dense social graph).
    pub fn hollywood() -> Self {
        DatasetProfile {
            name: "Hollywood",
            paper_vertices: 1_985_306,
            paper_edges: 228_985_632,
            shape: GraphShape::Social,
            seed: 0x484f_4c4c,
        }
    }

    /// The Twitter follower graph profile.
    pub fn twitter() -> Self {
        DatasetProfile {
            name: "Twitter",
            paper_vertices: 41_652_230,
            paper_edges: 1_468_365_182,
            shape: GraphShape::Social,
            seed: 0x5457_5454,
        }
    }

    /// The FOAF subgraph of the Billion Triple Challenge crawl used for
    /// Figure 2 (1.2 M vertices, 7 M edges).
    pub fn foaf() -> Self {
        DatasetProfile {
            name: "FOAF",
            paper_vertices: 1_200_000,
            paper_edges: 7_000_000,
            shape: GraphShape::Web,
            seed: 0x464f_4146,
        }
    }

    /// All profiles of Table 2, in the paper's order.
    pub fn table2() -> Vec<DatasetProfile> {
        vec![
            Self::wikipedia(),
            Self::webbase(),
            Self::hollywood(),
            Self::twitter(),
        ]
    }

    /// The average degree of the original graph.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_vertices as f64
    }

    /// Number of vertices the synthetic stand-in has at `scale` (vertices are
    /// divided by the scale factor, clamped to a small minimum so tests can
    /// use large factors).
    pub fn scaled_vertices(&self, scale: u64) -> usize {
        ((self.paper_vertices / scale.max(1)) as usize).max(64)
    }

    /// Number of edges the synthetic stand-in targets at `scale`, preserving
    /// the original average degree.
    pub fn scaled_edges(&self, scale: u64) -> usize {
        (self.scaled_vertices(scale) as f64 * self.paper_avg_degree()) as usize
    }

    /// Generates the synthetic stand-in graph at the given downscale factor
    /// (e.g. `scale = 64` builds a graph with 1/64th of the vertices,
    /// preserving the average degree).  The result is undirected, matching
    /// the paper's treatment of the graphs for Connected Components.
    pub fn generate(&self, scale: u64) -> Graph {
        let vertices = self.scaled_vertices(scale);
        let edges = self.scaled_edges(scale);
        match self.shape {
            GraphShape::Web => rmat(vertices, edges, RmatParams::default(), self.seed).symmetrize(),
            GraphShape::Social => {
                rmat(vertices, edges, RmatParams::social(), self.seed).symmetrize()
            }
            GraphShape::WebLongDiameter => {
                // Reserve a slice of the vertices for a chain whose length far
                // exceeds the diameter of the power-law part, so Connected
                // Components needs hundreds of supersteps to converge on the
                // full graph, as observed for Webbase in Figure 10.
                let chain_len = (vertices / 10).max(32);
                let bulk = rmat(
                    vertices - chain_len,
                    edges.saturating_sub(2 * chain_len),
                    RmatParams::default(),
                    self.seed,
                )
                .symmetrize();
                bulk.disjoint_union(&chain(chain_len))
            }
        }
    }
}

/// Summary statistics of a generated graph, printed by the Table 2
/// reproduction harness.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of weakly connected components.
    pub components: usize,
}

impl GraphSummary {
    /// Computes the summary of a graph.
    pub fn of(graph: &Graph) -> Self {
        GraphSummary {
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            avg_degree: graph.avg_degree(),
            max_degree: graph.max_degree(),
            components: graph.count_components(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_match_the_paper() {
        let profiles = DatasetProfile::table2();
        assert_eq!(profiles.len(), 4);
        let wiki = &profiles[0];
        assert!((wiki.paper_avg_degree() - 13.29).abs() < 0.01);
        let hollywood = DatasetProfile::hollywood();
        assert!((hollywood.paper_avg_degree() - 115.34).abs() < 0.01);
        let twitter = DatasetProfile::twitter();
        assert!((twitter.paper_avg_degree() - 35.25).abs() < 0.01);
        let webbase = DatasetProfile::webbase();
        assert!((webbase.paper_avg_degree() - 15.02).abs() < 0.01);
    }

    #[test]
    fn scaled_generation_preserves_the_average_degree_roughly() {
        let profile = DatasetProfile::wikipedia();
        let graph = profile.generate(2048);
        let summary = GraphSummary::of(&graph);
        assert_eq!(summary.vertices, profile.scaled_vertices(2048));
        // Symmetrization doubles directed edges, duplicate removal trims some:
        // the result should be within a factor of ~2.5 of the paper's degree.
        assert!(summary.avg_degree > profile.paper_avg_degree() * 0.5);
        assert!(summary.avg_degree < profile.paper_avg_degree() * 2.5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetProfile::hollywood().generate(4096);
        let b = DatasetProfile::hollywood().generate(4096);
        assert_eq!(a, b);
    }

    #[test]
    fn webbase_profile_contains_a_long_chain() {
        let graph = DatasetProfile::webbase().generate(65536);
        // The chain is a separate component, so there are at least two
        // components and the graph is much "longer" than a pure R-MAT graph.
        assert!(graph.count_components() >= 2);
        let chain_len = graph.num_vertices() / 10;
        assert!(chain_len >= 32);
    }

    #[test]
    fn social_profiles_are_denser_than_web_profiles() {
        let social = DatasetProfile::hollywood();
        let web = DatasetProfile::wikipedia();
        assert!(social.paper_avg_degree() > web.paper_avg_degree() * 5.0);
    }

    #[test]
    fn foaf_profile_matches_figure_2_scale() {
        let foaf = DatasetProfile::foaf();
        assert_eq!(foaf.paper_vertices, 1_200_000);
        assert_eq!(foaf.paper_edges, 7_000_000);
    }

    #[test]
    fn minimum_size_is_enforced_for_extreme_scales() {
        let profile = DatasetProfile::foaf();
        assert_eq!(profile.scaled_vertices(u64::MAX), 64);
        assert!(profile.generate(u64::MAX).num_vertices() >= 64);
    }
}
