//! The sample graph of the paper's Figure 1.
//!
//! Figure 1 walks through the Connected Components algorithm on a 9-vertex
//! graph with two components ({1,2,3,4} and {5,6}) plus a triangle
//! ({7,8,9}).  The quickstart example and several tests replay the paper's
//! walkthrough on this graph, including the per-iteration component-id
//! assignments `S0`, `S1`, `S2` shown in the figure.

use crate::graph::{Graph, VertexId};

/// Vertex ids used in Figure 1 are 1-based; this graph uses the same ids and
/// keeps vertex 0 isolated so the ids line up with the paper.
pub fn figure1_graph() -> Graph {
    // Edges as drawn in Figure 1: the 4-cycle 1-2-4-3, the pair 5-6 and the
    // triangle 7-8-9.
    let edges: &[(VertexId, VertexId)] = &[
        (1, 2),
        (1, 3),
        (2, 4),
        (3, 4),
        (5, 6),
        (7, 8),
        (7, 9),
        (8, 9),
    ];
    Graph::undirected_from_edges(10, edges)
}

/// The component assignment after convergence, indexed by vertex id
/// (vertex 0 is the unused padding vertex).
pub fn figure1_expected_components() -> Vec<VertexId> {
    vec![0, 1, 1, 1, 1, 5, 5, 7, 7, 7]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_graph_shape() {
        let g = figure1_graph();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 16);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(4, 5));
    }

    #[test]
    fn figure1_has_three_real_components_plus_padding() {
        let g = figure1_graph();
        // {0}, {1,2,3,4}, {5,6}, {7,8,9}
        assert_eq!(g.count_components(), 4);
        assert_eq!(g.components_oracle(), figure1_expected_components());
    }
}
