//! Compressed-sparse-row graphs.
//!
//! The evaluation workloads of the paper (PageRank, Connected Components,
//! SSSP) operate on large sparse graphs.  This module provides an immutable
//! CSR representation built from an edge list, with optional symmetrization
//! (the paper interprets directed web graphs as undirected for the weakly
//! Connected Components experiments).

use std::collections::HashSet;

/// Vertex identifier.
pub type VertexId = u32;

/// An immutable directed graph in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes the out-neighbours of `v` in
    /// `targets`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    targets: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph with `num_vertices` vertices from a directed edge list.
    /// Self-loops and duplicate edges are removed; edges referencing vertices
    /// `>= num_vertices` are dropped.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut cleaned: Vec<(VertexId, VertexId)> = edges
            .iter()
            .copied()
            .filter(|&(s, t)| s != t && (s as usize) < num_vertices && (t as usize) < num_vertices)
            .collect();
        cleaned.sort_unstable();
        cleaned.dedup();

        let mut offsets = vec![0usize; num_vertices + 1];
        for &(s, _) in &cleaned {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..num_vertices {
            offsets[v + 1] += offsets[v];
        }
        let targets = cleaned.into_iter().map(|(_, t)| t).collect();
        Graph { offsets, targets }
    }

    /// Builds an undirected graph: every edge `(a, b)` is inserted in both
    /// directions.
    pub fn undirected_from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Graph::from_edges(num_vertices, &sym)
    }

    /// Returns the symmetrized (undirected) version of this graph.
    pub fn symmetrize(&self) -> Graph {
        let edges: Vec<(VertexId, VertexId)> = self.edges().collect();
        Graph::undirected_from_edges(self.num_vertices(), &edges)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (adjacency entries).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum out-degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The out-neighbours of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterates over all directed edges `(source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// True if the graph contains the directed edge `(s, t)`.
    pub fn has_edge(&self, s: VertexId, t: VertexId) -> bool {
        self.neighbors(s).contains(&t)
    }

    /// Merges two graphs over a combined vertex set: the second graph's
    /// vertex ids are shifted by `self.num_vertices()`.  Used to graft a
    /// long-diameter chain component onto a power-law graph for the
    /// Webbase-like dataset profile.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.num_vertices() as VertexId;
        let mut edges: Vec<(VertexId, VertexId)> = self.edges().collect();
        edges.extend(other.edges().map(|(s, t)| (s + shift, t + shift)));
        Graph::from_edges(self.num_vertices() + other.num_vertices(), &edges)
    }

    /// Number of weakly connected components, computed with a sequential
    /// union-find; serves as the oracle the iterative algorithms are tested
    /// against.
    pub fn count_components(&self) -> usize {
        let assignment = self.components_oracle();
        let mut roots: HashSet<VertexId> = HashSet::new();
        for &c in &assignment {
            roots.insert(c);
        }
        roots.len()
    }

    /// Sequential weakly-connected-components oracle: assigns every vertex
    /// the smallest vertex id in its component (the same convention the
    /// iterative algorithms converge to when initialised with `cid = vid`).
    pub fn components_oracle(&self) -> Vec<VertexId> {
        let n = self.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();

        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }

        for (s, t) in self.edges() {
            let (a, b) = (find(&mut parent, s), find(&mut parent, t));
            if a != b {
                // Union by smaller id so the root is the minimum vertex id.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
        (0..n as u32).map(|v| find(&mut parent, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(VertexId, VertexId)> = (0..n as VertexId - 1).map(|v| (v, v + 1)).collect();
        Graph::undirected_from_edges(n, &edges)
    }

    #[test]
    fn csr_construction_and_neighbours() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
    }

    #[test]
    fn self_loops_and_duplicates_are_removed() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (0, 1), (1, 2), (5, 1)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_graphs_are_symmetric() {
        let g = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)]);
        for (s, t) in g.edges().collect::<Vec<_>>() {
            assert!(g.has_edge(t, s));
        }
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.symmetrize(), g);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::undirected_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.max_degree(), 4);
        assert!((g.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn components_oracle_on_disconnected_graph() {
        // Two components: {0,1,2} and {3,4}.
        let g = Graph::undirected_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let cc = g.components_oracle();
        assert_eq!(cc, vec![0, 0, 0, 3, 3]);
        assert_eq!(g.count_components(), 2);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = Graph::undirected_from_edges(4, &[(0, 1)]);
        assert_eq!(g.count_components(), 3);
    }

    #[test]
    fn disjoint_union_shifts_ids() {
        let a = path(3);
        let b = path(2);
        let u = a.disjoint_union(&b);
        assert_eq!(u.num_vertices(), 5);
        assert_eq!(u.num_edges(), a.num_edges() + b.num_edges());
        assert!(u.has_edge(3, 4));
        assert!(u.has_edge(4, 3));
        assert_eq!(u.count_components(), 2);
    }

    #[test]
    fn path_graph_has_one_component() {
        let g = path(100);
        assert_eq!(g.count_components(), 1);
        assert_eq!(g.components_oracle(), vec![0; 100]);
    }
}
