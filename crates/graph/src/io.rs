//! Plain-text edge-list I/O.
//!
//! Real graph corpora (e.g. the WebGraph datasets the paper uses) are
//! commonly distributed as whitespace-separated edge lists.  These helpers
//! let users run the algorithms and benchmarks on their own data instead of
//! the synthetic stand-ins.

use crate::graph::{Graph, VertexId};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses an edge list: one `source target` pair per line, `#`-prefixed lines
/// are comments.  Vertex ids must be non-negative integers; the vertex count
/// is one more than the largest id seen.
///
/// Lines with trailing tokens are rejected: a *weighted* edge list would
/// otherwise silently parse as unweighted, dropping the weights on the
/// floor.  Use [`parse_weighted_edge_list`] for `source target weight`
/// input.
pub fn parse_edge_list<R: BufRead>(reader: R) -> std::io::Result<Graph> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_vertex: VertexId = 0;
    for_each_edge_line(reader, |line_no, tokens| {
        let [s, t] = *tokens else {
            return Err(invalid_line(
                line_no,
                "expected exactly `source target` (weighted input? use parse_weighted_edge_list)",
            ));
        };
        let s = parse_vertex(s, line_no)?;
        let t = parse_vertex(t, line_no)?;
        max_vertex = max_vertex.max(s).max(t);
        edges.push((s, t));
        Ok(())
    })?;
    Ok(Graph::from_edges(max_vertex as usize + 1, &edges))
}

/// Parses a weighted edge list: `source target weight` per line (weight
/// optional, defaulting to 1.0), `#`-prefixed lines are comments.  Returns
/// the graph and one weight per edge, aligned with [`Graph::edges`]'s
/// insertion order of this parse.
pub fn parse_weighted_edge_list<R: BufRead>(reader: R) -> std::io::Result<(Graph, Vec<f64>)> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut max_vertex: VertexId = 0;
    for_each_edge_line(reader, |line_no, tokens| {
        let (s, t, w) = match *tokens {
            [s, t] => (s, t, 1.0),
            [s, t, w] => (
                s,
                t,
                w.parse::<f64>()
                    .map_err(|_| invalid_line(line_no, "weight is not a number"))?,
            ),
            _ => {
                return Err(invalid_line(
                    line_no,
                    "expected `source target` or `source target weight`",
                ))
            }
        };
        let s = parse_vertex(s, line_no)?;
        let t = parse_vertex(t, line_no)?;
        max_vertex = max_vertex.max(s).max(t);
        edges.push((s, t));
        weights.push(w);
        Ok(())
    })?;
    Ok((Graph::from_edges(max_vertex as usize + 1, &edges), weights))
}

/// Shared line scanner: skips blanks and `#` comments, tokenizes the rest and
/// hands `(1-based line number, tokens)` to `f`.
fn for_each_edge_line<R: BufRead>(
    reader: R,
    mut f: impl FnMut(usize, &[&str]) -> std::io::Result<()>,
) -> std::io::Result<()> {
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        f(index + 1, &tokens)?;
    }
    Ok(())
}

fn parse_vertex(token: &str, line_no: usize) -> std::io::Result<VertexId> {
    token
        .parse::<VertexId>()
        .map_err(|_| invalid_line(line_no, "vertex id is not a non-negative integer"))
}

fn invalid_line(line_no: usize, reason: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed edge on line {line_no}: {reason}"),
    )
}

/// Reads an edge-list file from disk.
pub fn read_edge_list(path: &Path) -> std::io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

/// Writes a graph as an edge-list file (one directed edge per line).
pub fn write_edge_list(graph: &Graph, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writeln!(
        writer,
        "# vertices={} edges={}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges() {
        writeln!(writer, "{s} {t}")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_edge_list_with_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n1 2\n2 0\n";
        let g = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let text = "0 1\nnot an edge\n";
        let err = parse_edge_list(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn trailing_tokens_are_rejected_not_ignored() {
        // A weighted edge list must not silently parse as unweighted.
        let text = "0 1 0.5\n1 2 0.25\n";
        let err = parse_edge_list(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(
            err.to_string().contains("parse_weighted_edge_list"),
            "error should point at the weighted parser: {err}"
        );
        // A single-token line is just as malformed.
        assert!(parse_edge_list(Cursor::new("0\n")).is_err());
    }

    #[test]
    fn weighted_edge_lists_parse_with_weights() {
        let text = "# weighted\n0 1 0.5\n1 2 2.0\n2 0\n";
        let (g, weights) = parse_weighted_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        // The missing third weight defaults to 1.0.
        assert_eq!(weights, vec![0.5, 2.0, 1.0]);
    }

    #[test]
    fn weighted_parser_rejects_garbage_weights_and_extra_tokens() {
        let err = parse_weighted_edge_list(Cursor::new("0 1 heavy\n")).unwrap_err();
        assert!(err.to_string().contains("not a number"), "{err}");
        let err = parse_weighted_edge_list(Cursor::new("0 1 1.0 extra\n")).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn write_then_read_round_trips() {
        let g = crate::generators::rmat(64, 256, crate::generators::RmatParams::default(), 5);
        let dir = std::env::temp_dir();
        let path = dir.join("spinning_dataflows_io_test.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_edges(), back.num_edges());
        for (s, t) in g.edges() {
            assert!(back.has_edge(s, t));
        }
    }
}
