//! Plain-text edge-list I/O.
//!
//! Real graph corpora (e.g. the WebGraph datasets the paper uses) are
//! commonly distributed as whitespace-separated edge lists.  These helpers
//! let users run the algorithms and benchmarks on their own data instead of
//! the synthetic stand-ins.

use crate::graph::{Graph, VertexId};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses an edge list: one `source target` pair per line, `#`-prefixed lines
/// are comments.  Vertex ids must be non-negative integers; the vertex count
/// is one more than the largest id seen.
pub fn parse_edge_list<R: BufRead>(reader: R) -> std::io::Result<Graph> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_vertex: VertexId = 0;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |token: Option<&str>| -> std::io::Result<VertexId> {
            token
                .and_then(|t| t.parse::<VertexId>().ok())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("malformed edge on line {}", line_no + 1),
                    )
                })
        };
        let s = parse(parts.next())?;
        let t = parse(parts.next())?;
        max_vertex = max_vertex.max(s).max(t);
        edges.push((s, t));
    }
    Ok(Graph::from_edges(max_vertex as usize + 1, &edges))
}

/// Reads an edge-list file from disk.
pub fn read_edge_list(path: &Path) -> std::io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

/// Writes a graph as an edge-list file (one directed edge per line).
pub fn write_edge_list(graph: &Graph, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writeln!(
        writer,
        "# vertices={} edges={}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges() {
        writeln!(writer, "{s} {t}")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_edge_list_with_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n1 2\n2 0\n";
        let g = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let text = "0 1\nnot an edge\n";
        let err = parse_edge_list(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn write_then_read_round_trips() {
        let g = crate::generators::rmat(64, 256, crate::generators::RmatParams::default(), 5);
        let dir = std::env::temp_dir();
        let path = dir.join("spinning_dataflows_io_test.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_edges(), back.num_edges());
        for (s, t) in g.edges() {
            assert!(back.has_edge(s, t));
        }
    }
}
