//! Bench backing Figures 2 and 10: the incremental Connected Components long
//! tail on the Webbase stand-in and the effective-work decay on the FOAF
//! stand-in.
//!
//! Honors `SPINNING_SCALE` (downscale factor, default 32768) and
//! `SPINNING_BENCH_SAMPLES` (default 10).  CI runs this bench with 1 sample
//! as a smoke test: a worker-pool regression that deadlocks or explodes
//! per-superstep latency fails the job instead of shipping.

use algorithms::{cc_incremental, ComponentsConfig};
use bench::harness::{black_box, Group};
use graphdata::DatasetProfile;

fn main() {
    let scale = bench::scale_factor_or(32_768);
    let samples = bench::bench_samples(10);

    let mut group = Group::new("fig2_10_incremental_cc");
    group.sample_size(samples);
    if samples == 1 {
        // Smoke mode genuinely runs each workload once: no warm-up, one
        // sample.  The run only has to complete and converge, not time well.
        group.warmup(0);
    }
    let webbase = DatasetProfile::webbase().generate(scale);
    // The last measured sample is kept for the per-superstep profile below
    // (storing it also keeps the optimizer from discarding the work).
    let mut last_run = None;
    group.bench_function("webbase_full_convergence", || {
        last_run =
            Some(cc_incremental(&webbase, &ComponentsConfig::new(bench::PARALLELISM)).unwrap());
    });
    group.bench_function("webbase_first_20_supersteps", || {
        black_box(
            cc_incremental(
                &webbase,
                &ComponentsConfig::new(bench::PARALLELISM).with_max_iterations(20),
            )
            .unwrap(),
        );
    });
    let foaf = DatasetProfile::foaf().generate(scale);
    group.bench_function("foaf_effective_work", || {
        black_box(cc_incremental(&foaf, &ComponentsConfig::new(bench::PARALLELISM)).unwrap());
    });
    group.finish();

    // The per-superstep latency profile of the long tail — the number the
    // persistent worker pool is meant to move (a tiny late superstep should
    // cost a deque push, not a round of thread spawns).
    let result = last_run.expect("bench ran at least one sample");
    assert!(
        result.converged,
        "webbase long-tail run must reach the fixpoint"
    );
    let profile = bench::superstep_profile(&result.stats);
    println!(
        "\nwebbase per-superstep latency: {} supersteps, mean {:.3} ms, \
         tail mean {:.3} ms (last half), max {:.3} ms",
        profile.supersteps, profile.mean_ms, profile.tail_mean_ms, profile.max_ms
    );
}
