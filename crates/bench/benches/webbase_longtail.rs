//! Bench backing Figures 2 and 10: the incremental Connected Components long
//! tail on the Webbase stand-in and the effective-work decay on the FOAF
//! stand-in.

use algorithms::{cc_incremental, ComponentsConfig};
use bench::harness::{black_box, Group};
use graphdata::DatasetProfile;

fn main() {
    let mut group = Group::new("fig2_10_incremental_cc");
    group.sample_size(10);
    let webbase = DatasetProfile::webbase().generate(32_768);
    group.bench_function("webbase_full_convergence", || {
        black_box(cc_incremental(&webbase, &ComponentsConfig::new(bench::PARALLELISM)).unwrap());
    });
    group.bench_function("webbase_first_20_supersteps", || {
        black_box(
            cc_incremental(
                &webbase,
                &ComponentsConfig::new(bench::PARALLELISM).with_max_iterations(20),
            )
            .unwrap(),
        );
    });
    let foaf = DatasetProfile::foaf().generate(32_768);
    group.bench_function("foaf_effective_work", || {
        black_box(cc_incremental(&foaf, &ComponentsConfig::new(bench::PARALLELISM)).unwrap());
    });
    group.finish();
}
