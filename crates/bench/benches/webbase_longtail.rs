//! Criterion bench backing Figures 2 and 10: the incremental Connected
//! Components long tail on the Webbase stand-in and the effective-work decay
//! on the FOAF stand-in.

use algorithms::{cc_incremental, ComponentsConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use graphdata::DatasetProfile;
use std::hint::black_box;

fn bench_long_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_10_incremental_cc");
    group.sample_size(10);
    let webbase = DatasetProfile::webbase().generate(32_768);
    group.bench_function("webbase_full_convergence", |b| {
        b.iter(|| {
            black_box(cc_incremental(&webbase, &ComponentsConfig::new(bench::PARALLELISM)).unwrap())
        })
    });
    group.bench_function("webbase_first_20_supersteps", |b| {
        b.iter(|| {
            black_box(
                cc_incremental(
                    &webbase,
                    &ComponentsConfig::new(bench::PARALLELISM).with_max_iterations(20),
                )
                .unwrap(),
            )
        })
    });
    let foaf = DatasetProfile::foaf().generate(32_768);
    group.bench_function("foaf_effective_work", |b| {
        b.iter(|| {
            black_box(cc_incremental(&foaf, &ComponentsConfig::new(bench::PARALLELISM)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_long_tail);
criterion_main!(benches);
