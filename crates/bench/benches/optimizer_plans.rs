//! Bench backing Figure 4 and Table 2: optimizer planning latency for the
//! PageRank step plan and dataset generation cost.

use bench::harness::{black_box, Group};
use graphdata::DatasetProfile;

fn main() {
    let mut group = Group::new("fig4_table2");
    group.sample_size(10);
    group.bench_function("fig4_plan_choice_sweep", || {
        black_box(bench::fig4());
    });
    group.bench_function("table2_dataset_generation", || {
        black_box(bench::table2(65_536));
    });
    let _ = DatasetProfile::table2();
    group.finish();
}
