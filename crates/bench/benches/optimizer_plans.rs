//! Criterion bench backing Figure 4 and Table 2: optimizer planning latency
//! for the PageRank step plan and dataset generation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use graphdata::DatasetProfile;
use std::hint::black_box;

fn bench_optimizer_and_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_table2");
    group.sample_size(10);
    group.bench_function("fig4_plan_choice_sweep", |b| b.iter(|| black_box(bench::fig4())));
    group.bench_function("table2_dataset_generation", |b| {
        b.iter(|| black_box(bench::table2(65_536)))
    });
    let _ = DatasetProfile::table2();
    group.finish();
}

criterion_group!(benches, bench_optimizer_and_datasets);
criterion_main!(benches);
