//! Micro-bench for the record-routing hot path: key extraction, hash
//! partitioning, exchange and solution-set merging, each measured for the
//! legacy (pre-refactor) implementation and the current one.  See the
//! JSON-emitting `routing_report` binary for the tracked numbers
//! (`BENCH_routing.json`).

use bench::harness::Group;

fn main() {
    let mut group = Group::new("routing_hot_path");
    group.sample_size(10);
    for c in bench::routing::comparisons() {
        group.bench_function(&format!("{}/legacy", c.name), || (c.legacy)());
        group.bench_function(&format!("{}/current", c.name), || (c.current)());
    }
    group.finish();
}
