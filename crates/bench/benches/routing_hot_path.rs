//! Micro-bench for the record-routing hot path: key extraction, hash
//! partitioning, exchange and solution-set merging.  See the JSON-emitting
//! `routing_report` binary for the tracked numbers (`BENCH_routing.json`).

use bench::harness::Group;

fn main() {
    let mut group = Group::new("routing_hot_path");
    group.sample_size(10);
    for m in bench::routing::all_microbenches() {
        group.bench_function(&m.name.clone(), || {
            (m.run)();
        });
    }
    group.finish();
}
