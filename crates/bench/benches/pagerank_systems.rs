//! Bench backing Figures 7 and 8: PageRank across systems (Spark-like,
//! Pregel-like, Stratosphere partition plan, Stratosphere broadcast plan) on
//! the Wikipedia stand-in.

use algorithms::{pagerank, PageRankConfig, PageRankPlan};
use baselines::{pagerank_pregel, pagerank_spark, PregelConfig, SparkContext};
use bench::harness::{black_box, Group};
use graphdata::DatasetProfile;

const ITERATIONS: usize = 5;
const SCALE: u64 = 16_384;

fn main() {
    let graph = DatasetProfile::wikipedia().generate(SCALE);
    let mut group = Group::new("fig7_8_pagerank");
    group.sample_size(10);

    group.bench_function("spark_like", || {
        let ctx = SparkContext::new(bench::PARALLELISM);
        black_box(pagerank_spark(&graph, ITERATIONS, &ctx));
    });
    group.bench_function("pregel_like", || {
        black_box(pagerank_pregel(
            &graph,
            ITERATIONS,
            0.85,
            &PregelConfig::new(bench::PARALLELISM),
        ));
    });
    group.bench_function("stratosphere_partition", || {
        black_box(
            pagerank(
                &graph,
                &PageRankConfig::new(bench::PARALLELISM)
                    .with_iterations(ITERATIONS)
                    .with_plan(PageRankPlan::ForcePartition),
            )
            .unwrap(),
        );
    });
    group.bench_function("stratosphere_broadcast", || {
        black_box(
            pagerank(
                &graph,
                &PageRankConfig::new(bench::PARALLELISM)
                    .with_iterations(ITERATIONS)
                    .with_plan(PageRankPlan::ForceBroadcast),
            )
            .unwrap(),
        );
    });
    group.finish();
}
