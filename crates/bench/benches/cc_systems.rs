//! Bench backing Figures 9, 11 and 12: Connected Components across systems
//! and variants on the Wikipedia and Hollywood stand-ins.

use algorithms::{cc_bulk, cc_incremental, cc_microstep, ComponentsConfig};
use baselines::{
    cc_pregel, cc_spark_bulk, cc_spark_simulated_incremental, PregelConfig, SparkContext,
};
use bench::harness::{black_box, Group};
use graphdata::DatasetProfile;

const SCALE: u64 = 16_384;

fn main() {
    let mut group = Group::new("fig9_11_connected_components");
    group.sample_size(10);
    for profile in [DatasetProfile::wikipedia(), DatasetProfile::hollywood()] {
        let graph = profile.generate(SCALE);
        let config = ComponentsConfig::new(bench::PARALLELISM);
        group.bench_function(&format!("spark_full/{}", profile.name), || {
            let ctx = SparkContext::new(bench::PARALLELISM);
            black_box(cc_spark_bulk(&graph, &ctx));
        });
        group.bench_function(&format!("spark_sim_incremental/{}", profile.name), || {
            let ctx = SparkContext::new(bench::PARALLELISM);
            black_box(cc_spark_simulated_incremental(&graph, &ctx));
        });
        group.bench_function(&format!("giraph_like/{}", profile.name), || {
            black_box(cc_pregel(&graph, &PregelConfig::new(bench::PARALLELISM)));
        });
        group.bench_function(&format!("stratosphere_full/{}", profile.name), || {
            black_box(cc_bulk(&graph, &config).unwrap());
        });
        group.bench_function(&format!("stratosphere_micro/{}", profile.name), || {
            black_box(cc_microstep(&graph, &config).unwrap());
        });
        group.bench_function(
            &format!("stratosphere_incremental/{}", profile.name),
            || {
                black_box(cc_incremental(&graph, &config).unwrap());
            },
        );
    }
    group.finish();
}
