//! Criterion bench backing Figures 9, 11 and 12: Connected Components across
//! systems and variants on the Wikipedia and Hollywood stand-ins.

use algorithms::{cc_bulk, cc_incremental, cc_microstep, ComponentsConfig};
use baselines::{cc_pregel, cc_spark_bulk, cc_spark_simulated_incremental, PregelConfig, SparkContext};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphdata::DatasetProfile;
use std::hint::black_box;

const SCALE: u64 = 16_384;

fn bench_cc_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_11_connected_components");
    group.sample_size(10);
    for profile in [DatasetProfile::wikipedia(), DatasetProfile::hollywood()] {
        let graph = profile.generate(SCALE);
        let config = ComponentsConfig::new(bench::PARALLELISM);
        group.bench_with_input(BenchmarkId::new("spark_full", profile.name), &graph, |b, g| {
            b.iter(|| {
                let ctx = SparkContext::new(bench::PARALLELISM);
                black_box(cc_spark_bulk(g, &ctx))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("spark_sim_incremental", profile.name),
            &graph,
            |b, g| {
                b.iter(|| {
                    let ctx = SparkContext::new(bench::PARALLELISM);
                    black_box(cc_spark_simulated_incremental(g, &ctx))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("giraph_like", profile.name), &graph, |b, g| {
            b.iter(|| black_box(cc_pregel(g, &PregelConfig::new(bench::PARALLELISM))))
        });
        group.bench_with_input(
            BenchmarkId::new("stratosphere_full", profile.name),
            &graph,
            |b, g| b.iter(|| black_box(cc_bulk(g, &config).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("stratosphere_micro", profile.name),
            &graph,
            |b, g| b.iter(|| black_box(cc_microstep(g, &config).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("stratosphere_incremental", profile.name),
            &graph,
            |b, g| b.iter(|| black_box(cc_incremental(g, &config).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cc_systems);
criterion_main!(benches);
