//! Micro-benchmarks of the record-routing hot path (key extraction, hash
//! partitioning, exchange, solution-set merge), shared by the
//! `routing_hot_path` bench and the JSON-emitting `routing_report` binary.
//!
//! Each comparison pits the current implementation against a **legacy**
//! emulation of the pre-refactor seed code: `Key` as an always-allocated
//! `Vec<Value>`, `std::collections::hash_map::DefaultHasher` (SipHash) for
//! every routing decision, `HashMap`s with the default random state, and
//! clone-based exchanges.  The legacy paths are re-implemented here (not
//! imported) so the comparison stays runnable at any commit.

use dataflow::key::{partition_for, sort_by_key, FxHashMap, Key};
use dataflow::page::{ExchangedPartition, PageWriter, PagedRecords, PrefixTable, RecordPage};
use dataflow::prelude::{
    default_physical_plan, ChannelId, ClusterSpec, Collector, ExecConfig, Executor, FaultInjector,
    MapClosure, Plan, Record, TransportHandle, Value,
};
use dataflow::range::{sample_keys_into, sort_by_key_normalized, RangeBounds};
use dataflow::spill::{write_sorted_records_in, MergeSource, RunMerger};
use spinning_core::prelude::SolutionSet;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

// --- Legacy emulation of the pre-refactor routing code ----------------------

/// The pre-refactor key: always a heap-allocated vector of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LegacyKey(Vec<Value>);

impl LegacyKey {
    fn extract(record: &Record, fields: &[usize]) -> LegacyKey {
        LegacyKey(fields.iter().map(|&i| record.field(i).clone()).collect())
    }
}

/// The pre-refactor record hash: SipHash over the key fields.
fn legacy_hash_key(record: &Record, fields: &[usize]) -> u64 {
    let mut hasher = DefaultHasher::new();
    for &i in fields {
        record.field(i).hash(&mut hasher);
    }
    hasher.finish()
}

fn legacy_partition_for(record: &Record, fields: &[usize], parallelism: usize) -> usize {
    (legacy_hash_key(record, fields) % parallelism as u64) as usize
}

// --- Workloads ---------------------------------------------------------------

/// Number of records routed per sample in the partition/exchange workloads.
pub const ROUTED_RECORDS: usize = 400_000;
const PARALLELISM: usize = 8;

/// Supersteps dispatched per sample in the superstep-dispatch workload.
pub const DISPATCH_SUPERSTEPS: usize = 200;

/// Source records fed to the chained-pipeline workload (each expands 16x).
pub const PIPELINE_RECORDS: usize = 4_000;

fn routing_input() -> Vec<Record> {
    (0..ROUTED_RECORDS as i64)
        .map(|i| Record::pair(i.wrapping_mul(0x9E37), i % 64))
        .collect()
}

fn partitioned_input() -> Vec<Vec<Record>> {
    let mut parts: Vec<Vec<Record>> = vec![Vec::new(); PARALLELISM];
    for (i, r) in routing_input().into_iter().enumerate() {
        parts[i % PARALLELISM].push(r);
    }
    parts
}

/// A genuinely shuffled key sequence for the sort-centric workloads: the
/// full-width golden-ratio multiply wraps `i64` constantly, so keys arrive
/// in random order.  ([`routing_input`]'s `i * 0x9E37` never wraps and is
/// therefore already sorted — a best case that would let the legacy stable
/// sort finish in one linear merge pass.)
fn shuffled_input() -> Vec<Record> {
    (0..ROUTED_RECORDS as i64)
        .map(|i| Record::pair(i.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as i64), i % 64))
        .collect()
}

fn shuffled_partitioned_input() -> Vec<Vec<Record>> {
    let mut parts: Vec<Vec<Record>> = vec![Vec::new(); PARALLELISM];
    for (i, r) in shuffled_input().into_iter().enumerate() {
        parts[i % PARALLELISM].push(r);
    }
    parts
}

fn merge_input() -> Vec<Record> {
    // Half the deltas improve the stored value (applied), half do not
    // (discarded) — the mix the incremental CC merge sees.
    (0..ROUTED_RECORDS as i64)
        .map(|i| Record::pair(i % 50_000, i % 97))
        .collect()
}

/// Routes a producer through the sealed-page exchange with the given routing
/// function and materializes every consumer partition — the shared shape of
/// the sorted-delivery workloads (`range_exchange` and its hash+sort
/// legacy).
fn paged_exchange_to_partitions(
    producer: Vec<Vec<Record>>,
    router: impl Fn(&Record) -> usize,
) -> Vec<Vec<Record>> {
    let mut locals: Vec<Vec<Record>> = (0..PARALLELISM).map(|_| Vec::new()).collect();
    let mut routed: Vec<Vec<PageWriter>> = Vec::with_capacity(PARALLELISM);
    for (src, partition) in producer.into_iter().enumerate() {
        let mut writers: Vec<PageWriter> = (0..PARALLELISM).map(|_| PageWriter::new()).collect();
        for r in partition {
            let target = router(&r);
            if target == src {
                locals[src].push(r);
            } else {
                writers[target].push(&r);
            }
        }
        routed.push(writers);
    }
    let mut received: Vec<ExchangedPartition> = locals
        .into_iter()
        .map(ExchangedPartition::from_records)
        .collect();
    for writers in routed {
        for (target, writer) in writers.into_iter().enumerate() {
            received[target].receive_pages(writer.finish());
        }
    }
    received
        .into_iter()
        .map(|part| {
            part.into_records()
                .expect("in-memory partitions never fail to read")
        })
        .collect()
}

/// One legacy-vs-current comparison over an identical workload.
pub struct Comparison {
    /// Workload name.
    pub name: &'static str,
    /// What one sample of the workload does.
    pub description: &'static str,
    /// The pre-refactor implementation.
    pub legacy: Box<dyn Fn()>,
    /// The current implementation.
    pub current: Box<dyn Fn()>,
}

/// All hot-path comparisons.
pub fn comparisons() -> Vec<Comparison> {
    let input = Arc::new(routing_input());
    let deltas = Arc::new(merge_input());

    let mut all = Vec::new();

    // 1. The bare partition decision for single-long keys.
    let data = Arc::clone(&input);
    let legacy = Box::new(move || {
        let mut acc = 0usize;
        for r in data.iter() {
            acc += legacy_partition_for(r, &[0], PARALLELISM);
        }
        black_box(acc);
    });
    let data = Arc::clone(&input);
    let current = Box::new(move || {
        let mut acc = 0usize;
        for r in data.iter() {
            acc += partition_for(r, &[0], PARALLELISM);
        }
        black_box(acc);
    });
    all.push(Comparison {
        name: "partition_single_long_key",
        description: "hash-route 400k (long, long) records to 8 partitions",
        legacy,
        current,
    });

    // 2. A full hash exchange.  Both sides build the producer's partitions
    //    inside the timed region (identical cost); the legacy side then
    //    routes by cloning from the borrowed producer and dropping it (the
    //    seed's exchange), the current side consumes the producer and moves
    //    every record into a pre-sized target buffer.
    let legacy = Box::new(move || {
        let producer = partitioned_input();
        let mut targets: Vec<Vec<Record>> = vec![Vec::new(); PARALLELISM];
        for partition in producer.iter() {
            for r in partition {
                targets[legacy_partition_for(r, &[0], PARALLELISM)].push(r.clone());
            }
        }
        black_box(targets);
    });
    let current = Box::new(move || {
        let producer = partitioned_input();
        // The executor's move-based exchange: owned input, pre-sized targets.
        let total: usize = producer.iter().map(Vec::len).sum();
        let per_target = total / PARALLELISM + total / (PARALLELISM * 4) + 4;
        let mut targets: Vec<Vec<Record>> = (0..PARALLELISM)
            .map(|_| Vec::with_capacity(per_target))
            .collect();
        for partition in producer {
            for r in partition {
                targets[partition_for(&r, &[0], PARALLELISM)].push(r);
            }
        }
        black_box(targets);
    });
    all.push(Comparison {
        name: "exchange_hash_partition",
        description: "exchange 400k records across 8 partitions (clone+SipHash vs move+Fx)",
        legacy,
        current,
    });

    // 2b. The paged exchange, producer to consumer: route 400k records and
    //     scan every received record on the consumer side.  The "legacy"
    //     side is the PR-2 state of the art (move records into pre-sized
    //     Vec targets, then pointer-chase through them); the "current" side
    //     is the sealed-page path (local records bypass serialization,
    //     cross-partition records serialize into pages whose views are read
    //     in place without materializing records).
    let legacy = Box::new(move || {
        let producer = partitioned_input();
        let total: usize = producer.iter().map(Vec::len).sum();
        let per_target = total / PARALLELISM + total / (PARALLELISM * 4) + 4;
        let mut targets: Vec<Vec<Record>> = (0..PARALLELISM)
            .map(|_| Vec::with_capacity(per_target))
            .collect();
        for partition in producer {
            for r in partition {
                targets[partition_for(&r, &[0], PARALLELISM)].push(r);
            }
        }
        let mut acc = 0i64;
        for target in &targets {
            for r in target {
                acc = acc.wrapping_add(r.long(0));
            }
        }
        black_box(acc);
    });
    // One sample is one superstep of the paged exchange; the pool carries the
    // consumed pages' buffers from sample to sample, exactly like the
    // executor's per-partition pool seeds the next superstep's outbox
    // writers — at steady state the exchange serializes into recycled
    // buffers instead of allocating fresh pages.
    let pool = std::cell::RefCell::new(dataflow::page::PagePool::new());
    let current = Box::new(move || {
        let producer = partitioned_input();
        // Producer side: local records move, outbound records serialize into
        // per-target page writers (seeded with recycled page buffers).
        let mut locals: Vec<Vec<Record>> = Vec::with_capacity(PARALLELISM);
        let mut routed: Vec<Vec<PageWriter>> = Vec::with_capacity(PARALLELISM);
        let mut pool = pool.borrow_mut();
        for (src, partition) in producer.into_iter().enumerate() {
            let mut writers: Vec<PageWriter> =
                (0..PARALLELISM).map(|_| PageWriter::new()).collect();
            for writer in &mut writers {
                writer.add_spare_buffers(pool.take(4));
            }
            let mut local = Vec::with_capacity(partition.len() / PARALLELISM * 2);
            for r in partition {
                let target = partition_for(&r, &[0], PARALLELISM);
                if target == src {
                    local.push(r);
                } else {
                    writers[target].push(&r);
                }
            }
            locals.push(local);
            routed.push(writers);
        }
        // The exchange: sealed pages and local buffers move by pointer.
        let mut received: Vec<ExchangedPartition> = locals
            .into_iter()
            .map(ExchangedPartition::from_records)
            .collect();
        for writers in routed {
            for (target, writer) in writers.into_iter().enumerate() {
                received[target].receive_pages(writer.finish());
            }
        }
        // Consumer side: scan every record the way the executor's local
        // phase does — local records by reference, paged records as in-place
        // views with the key read straight out of the page bytes (nothing is
        // deserialized).
        let mut acc = 0i64;
        for part in &received {
            let mut local = 0i64;
            let mut paged = 0i64;
            part.for_each_piece(
                |r| local = local.wrapping_add(r.long(0)),
                |view| paged = paged.wrapping_add(view.long(0)),
            )
            .expect("in-memory partitions never fail to read");
            acc = acc.wrapping_add(local).wrapping_add(paged);
        }
        // Consumed pages hand their buffers back for the next superstep.
        for part in received {
            let (_, pages, _, _) = part.into_pieces();
            pool.recycle_all(pages);
        }
        black_box(acc);
    });
    all.push(Comparison {
        name: "page_exchange",
        description:
            "exchange 400k records across 8 partitions and scan the receive side (Vec move + pointer-chase scan vs recycled sealed pages + in-place view scan)",
        legacy,
        current,
    });

    // 2f. The join build+probe that page-native operators run: index 400k
    //     shipped build records and probe them with 100k more, all arriving
    //     as sealed pages.  The legacy side is the materializing state of
    //     the art — deserialize every record and key it into an
    //     `FxHashMap<Key, Vec<Record>>`.  The current side adopts the pages
    //     by pointer and indexes 8-byte normalized key prefixes with
    //     `(page, offset)` handles: records are never deserialized, and
    //     probe hits read the payload field straight out of the page bytes.
    let join_keys = 50_000i64;
    let build_pages: Arc<Vec<Arc<RecordPage>>> = {
        let mut writer = PageWriter::new();
        for i in 0..ROUTED_RECORDS as i64 {
            writer.push(&Record::pair(i % join_keys, i));
        }
        Arc::new(writer.finish())
    };
    let probe_pages: Arc<Vec<Arc<RecordPage>>> = {
        let mut writer = PageWriter::new();
        for i in 0..(ROUTED_RECORDS / 4) as i64 {
            writer.push(&Record::pair(i % join_keys, -i));
        }
        Arc::new(writer.finish())
    };
    let build = Arc::clone(&build_pages);
    let probes = Arc::clone(&probe_pages);
    let legacy = Box::new(move || {
        let mut table: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
        for page in build.iter() {
            for view in page.reader() {
                let record = view.materialize();
                table
                    .entry(Key::extract(&record, &[0]))
                    .or_default()
                    .push(record);
            }
        }
        let mut acc = 0i64;
        for page in probes.iter() {
            for view in page.reader() {
                let probe = view.materialize();
                if let Some(matches) = table.get(&Key::extract(&probe, &[0])) {
                    for m in matches {
                        acc = acc.wrapping_add(m.long(1));
                    }
                }
            }
        }
        black_box(acc);
    });
    let build = Arc::clone(&build_pages);
    let probes = Arc::clone(&probe_pages);
    let current = Box::new(move || {
        let mut store = PagedRecords::new();
        let mut table = PrefixTable::new();
        for page in build.iter() {
            store.adopt_page_scanned(page, |handle, view| {
                table.insert(view.long_key_prefix(0).expect("Long build key"), handle);
                true
            });
        }
        let mut acc = 0i64;
        for page in probes.iter() {
            for view in page.reader() {
                let prefix = view.long_key_prefix(0).expect("Long probe key");
                for handle in table.probe(prefix) {
                    acc = acc.wrapping_add(store.view(handle).long(1));
                }
            }
        }
        black_box(acc);
    });
    all.push(Comparison {
        name: "page_native",
        description:
            "index 400k paged build records and probe with 100k (materialize into FxHashMap<Key, Vec<Record>> vs prefix-handle table over adopted pages)",
        legacy,
        current,
    });

    // 2c. The sort behind sorted-output delivery: order 400k records by
    //     their Long key.  The legacy side is the stable Value-comparison
    //     sort every sort-based local strategy used; the current side is the
    //     8-byte memcmp sort on normalized key prefixes (same permutation —
    //     ties keep input order via the index tiebreak).
    let legacy = Box::new(move || {
        let mut records = shuffled_input();
        sort_by_key(&mut records, &[0]);
        black_box(records);
    });
    let current = Box::new(move || {
        let mut records = shuffled_input();
        sort_by_key_normalized(&mut records, &[0]);
        black_box(records);
    });
    all.push(Comparison {
        name: "memcmp_sort",
        description: "sort 400k records by Long key (Value comparator vs normalized 8-byte memcmp)",
        legacy,
        current,
    });

    // 2d. Delivering *sorted* partitions: what a plan that needs sorted
    //     output per partition pays.  The legacy side is the pre-range state
    //     of the art — hash-partition through sealed pages, then sort every
    //     consumer partition with the Value comparator.  The current side is
    //     the true range exchange: sample splitters, route by binary search,
    //     ship pages, memcmp-sort each partition — and unlike the hash side
    //     it additionally delivers a *global* order across partitions.
    let legacy = Box::new(move || {
        let producer = shuffled_partitioned_input();
        let mut received =
            paged_exchange_to_partitions(producer, |r| partition_for(r, &[0], PARALLELISM));
        let mut acc = 0i64;
        for part in received.iter_mut() {
            sort_by_key(part, &[0]);
            acc = acc.wrapping_add(part.first().map(|r| r.long(0)).unwrap_or(0));
        }
        black_box(acc);
    });
    let current = Box::new(move || {
        let producer = shuffled_partitioned_input();
        let mut sample = Vec::new();
        for partition in &producer {
            sample_keys_into(&mut sample, partition, &[0]);
        }
        let bounds = RangeBounds::from_sample(sample, PARALLELISM);
        let mut received =
            paged_exchange_to_partitions(producer, |r| bounds.partition_for_record(r, &[0]));
        let mut acc = 0i64;
        for part in received.iter_mut() {
            sort_by_key_normalized(part, &[0]);
            acc = acc.wrapping_add(part.first().map(|r| r.long(0)).unwrap_or(0));
        }
        black_box(acc);
    });
    all.push(Comparison {
        name: "range_exchange",
        description:
            "deliver 400k records sorted per partition (hash pages + Value sort vs sampled splitters + memcmp sort)",
        legacy,
        current,
    });

    // 2e. The out-of-core merge vs the in-memory sort of the same data: the
    //     price of spilling.  The "legacy" side is the in-memory state of
    //     the art (one memcmp sort over the whole vector, then a scan); the
    //     "current" side spills 8 sorted runs to disk and streams the k-way
    //     loser-tree merge back.  The spilled path pays real file I/O and is
    //     expected to be *slower* — the frozen floor pins how much slower
    //     the engine is allowed to get, so a regression in the run format or
    //     the loser tree (the ratio collapsing further) fails the gate.  A
    //     quarter of the routing workload keeps the per-sample write volume
    //     low enough that page-cache churn does not dominate the ratio.
    let spill_records = ROUTED_RECORDS / 4;
    let legacy = Box::new(move || {
        let mut records = shuffled_input();
        records.truncate(spill_records);
        sort_by_key_normalized(&mut records, &[0]);
        let mut acc = 0i64;
        for r in &records {
            acc = acc.wrapping_add(r.long(0));
        }
        black_box(acc);
    });
    let current = Box::new(move || {
        let mut records = shuffled_input();
        records.truncate(spill_records);
        let dir = dataflow::spill::default_spill_dir();
        let chunk = records.len() / PARALLELISM + 1;
        let mut sources: Vec<MergeSource> = Vec::with_capacity(PARALLELISM);
        for piece in records.chunks(chunk) {
            let mut sorted = piece.to_vec();
            sort_by_key_normalized(&mut sorted, &[0]);
            let run = write_sorted_records_in(&dir, &sorted, &[0]).expect("spill bench run");
            sources.push(MergeSource::Spilled(run.cursor().expect("open bench run")));
        }
        let mut merger = RunMerger::new(sources, vec![0]).expect("bench merger");
        let mut acc = 0i64;
        while let Some(r) = merger.next_record().expect("read bench run") {
            acc = acc.wrapping_add(r.long(0));
        }
        black_box(acc);
    });
    all.push(Comparison {
        name: "spill_merge",
        description:
            "order 100k records by Long key (in-memory memcmp sort vs 8 spilled sorted runs + loser-tree merge from disk)",
        legacy,
        current,
    });

    // 2g. A whole operator pipeline, materialized vs chained: source →
    //     16x expansion map → filter map → sink at 4-way parallelism.  The
    //     legacy side is the materializing executor (every forward edge
    //     buffers the full intermediate result); the current side fuses the
    //     three operators into one streaming chain whose stages overlap and
    //     whose edges hold at most `credits` sealed pages.  The floor pins
    //     the chained runtime against the materializing one — thread
    //     hand-off costs are real, so the ratio may sit near (or below) 1x;
    //     a collapse means the chain runtime regressed.
    let build_pipeline = || {
        let mut plan = Plan::new();
        let events: Vec<Record> = (0..PIPELINE_RECORDS as i64)
            .map(|i| Record::pair(i, i % 97))
            .collect();
        let source = plan.source("events", events);
        let expand = plan.map(
            "expand",
            source,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                for copy in 0..16 {
                    out.collect(Record::pair(r.long(0) * 16 + copy, r.long(1)));
                }
            })),
        );
        let shift = plan.map(
            "shift",
            expand,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                if r.long(1) != 0 {
                    out.collect(Record::pair(r.long(0), r.long(1) + 1));
                }
            })),
        );
        plan.sink("out", shift);
        default_physical_plan(&plan, 4).expect("pipeline plan")
    };
    let pipeline = build_pipeline;
    let legacy = Box::new(move || {
        let executor = Executor::with_config(ExecConfig::new().with_force_materialized(true));
        let result = executor
            .execute(&pipeline())
            .expect("materialized pipeline");
        black_box(result.into_sink("out").expect("materialized sink"));
    });
    let pipeline = build_pipeline;
    let current = Box::new(move || {
        let executor = Executor::new();
        let result = executor.execute(&pipeline()).expect("chained pipeline");
        black_box(result.into_sink("out").expect("chained sink"));
    });
    all.push(Comparison {
        name: "chained_pipeline",
        description:
            "run a source -> 16x expand -> filter -> sink pipeline at 4-way parallelism (materialize every forward edge vs one streaming chain over credit-bounded page channels)",
        legacy,
        current,
    });

    // 3. Key extraction into a grouping hash table.
    let data = Arc::clone(&input);
    let legacy = Box::new(move || {
        let mut groups: HashMap<LegacyKey, u64> = HashMap::new();
        for r in data.iter() {
            *groups.entry(LegacyKey::extract(r, &[1])).or_default() += 1;
        }
        black_box(groups);
    });
    let data = Arc::clone(&input);
    let current = Box::new(move || {
        let mut groups: FxHashMap<Key, u64> = FxHashMap::default();
        for r in data.iter() {
            *groups.entry(Key::extract(r, &[1])).or_default() += 1;
        }
        black_box(groups);
    });
    all.push(Comparison {
        name: "group_table_build",
        description: "count 400k records into a keyed hash table (64 groups)",
        legacy,
        current,
    });

    // 4. The ∪̇ merge into the partitioned solution-set index.
    //    Legacy: Vec-backed key + SipHash map + a clone per delta (the seed's
    //    merge_all cloned before merging).
    let data = Arc::clone(&deltas);
    let legacy = Box::new(move || {
        let comparator = |a: &Record, b: &Record| b.long(1).cmp(&a.long(1));
        let mut partitions: Vec<HashMap<LegacyKey, Record>> = vec![HashMap::new(); PARALLELISM];
        let mut applied = 0usize;
        for delta in data.iter() {
            let delta = delta.clone();
            let key = LegacyKey::extract(&delta, &[0]);
            let mut hasher = DefaultHasher::new();
            key.0.iter().for_each(|v| v.hash(&mut hasher));
            let p = (hasher.finish() % PARALLELISM as u64) as usize;
            match partitions[p].get_mut(&key) {
                None => {
                    partitions[p].insert(key, delta);
                    applied += 1;
                }
                Some(existing) => {
                    if comparator(&delta, existing) == std::cmp::Ordering::Greater {
                        *existing = delta;
                        applied += 1;
                    }
                }
            }
        }
        black_box(applied);
    });
    let data = Arc::clone(&deltas);
    let current = Box::new(move || {
        let mut set = SolutionSet::new(vec![0], PARALLELISM)
            .with_comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))));
        let applied = set.merge_all(data.iter().cloned());
        black_box(applied);
    });
    all.push(Comparison {
        name: "solution_set_merge",
        description: "merge 400k deltas (50k keys) into the partitioned solution set",
        legacy,
        current,
    });

    // 5. Superstep dispatch — the cost the persistent worker pool removes.
    //    Each sample runs 200 "supersteps" of 8 near-empty partition tasks:
    //    the legacy side spawns scoped OS threads per superstep (the
    //    pre-pool drivers), the current side pushes tasks onto the shared
    //    pool.  This is the dominant cost of the tiny late supersteps of
    //    long-tail workloads like Webbase.
    let legacy = Box::new(move || {
        let mut acc = 0u64;
        for step in 0..DISPATCH_SUPERSTEPS as u64 {
            let mut slots = [0u64; PARALLELISM];
            std::thread::scope(|scope| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    scope.spawn(move || *slot = step + i as u64);
                }
            });
            acc += slots.iter().sum::<u64>();
        }
        black_box(acc);
    });
    let current = Box::new(move || {
        let pool = spinning_pool::global();
        let mut acc = 0u64;
        for step in 0..DISPATCH_SUPERSTEPS as u64 {
            let mut slots = [0u64; PARALLELISM];
            pool.scope(|scope| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    scope.spawn(move || *slot = step + i as u64);
                }
            });
            acc += slots.iter().sum::<u64>();
        }
        black_box(acc);
    });
    all.push(Comparison {
        name: "superstep_dispatch",
        description: "dispatch 200 supersteps x 8 partition tasks (scoped thread spawns vs pool)",
        legacy,
        current,
    });

    // 8. The distributed exchange: one superstep's worth of candidate
    //    shipping — serialize 400k records into sealed pages and move them
    //    from partition 0 to partition 1 through the page-channel trait.
    //    The "legacy" side is the in-process backend (the pages hand over as
    //    Arc pointers); the "current" side is a real two-process loopback
    //    TCP cluster, so the delta is exactly what crossing a process
    //    boundary costs (frame headers, CRC-32, kernel round trips).  The
    //    ratio sits below 1x by design; its floor pins how far the TCP path
    //    may fall behind the in-process path.
    let local = TransportHandle::local();
    let local_channel = local.channel(ChannelId::new(local.allocate(), 0), 2);
    let round = Arc::new(AtomicU64::new(1));
    let build_pages = || {
        let mut writer = PageWriter::new();
        for i in 0..ROUTED_RECORDS as i64 {
            writer.push(&Record::pair(i.wrapping_mul(0x9E37), i));
        }
        writer.finish()
    };
    let (channel, counter) = (local_channel, Arc::clone(&round));
    let legacy = Box::new(move || {
        let round = counter.fetch_add(1, AtomicOrdering::Relaxed);
        channel
            .send(round, 0, 1, build_pages())
            .expect("local send");
        channel.finish_round(round, 0).expect("local finish 0");
        channel.finish_round(round, 1).expect("local finish 1");
        let received = channel.recv(round, 1).expect("local recv");
        let _ = channel.recv(round, 0).expect("local drain");
        let records: usize = received
            .iter()
            .flat_map(|(_, pages)| pages.iter())
            .map(|p| p.record_count())
            .sum();
        black_box(records);
    });
    // A two-process cluster inside this process: the coordinator half
    // connects on this thread while a helper thread brings up the worker.
    let coordinator = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe listener")
        .local_addr()
        .expect("probe address")
        .to_string();
    let worker_addr = coordinator.clone();
    let worker = std::thread::spawn(move || {
        TransportHandle::tcp_cluster(
            ClusterSpec::new(2, 1).expect("worker spec"),
            &worker_addr,
            &FaultInjector::disabled(),
        )
        .expect("bench worker transport")
    });
    let tcp_a = TransportHandle::tcp_cluster(
        ClusterSpec::new(2, 0).expect("coordinator spec"),
        &coordinator,
        &FaultInjector::disabled(),
    )
    .expect("bench coordinator transport");
    let tcp_b = worker.join().expect("bench worker thread");
    let channel_a = tcp_a.channel(ChannelId::new(0, 0), 2);
    let channel_b = tcp_b.channel(ChannelId::new(0, 0), 2);
    let round = Arc::new(AtomicU64::new(1));
    let counter = Arc::clone(&round);
    let current = Box::new(move || {
        // Keep the transports alive for the closure's lifetime.
        let (_a, _b) = (&tcp_a, &tcp_b);
        let round = counter.fetch_add(1, AtomicOrdering::Relaxed);
        channel_a
            .send(round, 0, 1, build_pages())
            .expect("tcp send");
        channel_a.finish_round(round, 0).expect("tcp finish 0");
        channel_b.finish_round(round, 1).expect("tcp finish 1");
        let received = channel_b.recv(round, 1).expect("tcp recv");
        let _ = channel_a.recv(round, 0).expect("tcp drain");
        let records: usize = received
            .iter()
            .flat_map(|(_, pages)| pages.iter())
            .map(|p| p.record_count())
            .sum();
        black_box(records);
    });
    all.push(Comparison {
        name: "tcp_exchange",
        description:
            "serialize 400k records into sealed pages and ship them partition 0 -> 1 through the page channel (in-process Arc pointer handoff vs loopback TCP with framing and CRC-32)",
        legacy,
        current,
    });

    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::key::hash_key;

    #[test]
    fn legacy_and_current_route_to_valid_partitions() {
        let r = Record::pair(42, 1);
        assert!(legacy_partition_for(&r, &[0], PARALLELISM) < PARALLELISM);
        assert!(partition_for(&r, &[0], PARALLELISM) < PARALLELISM);
    }

    #[test]
    fn comparisons_run_once_without_panicking() {
        // Smoke-test the workloads at full size once each.
        for c in comparisons() {
            (c.legacy)();
            (c.current)();
        }
    }

    #[test]
    fn sorted_delivery_workloads_agree_on_the_result() {
        // The legacy (hash + Value sort) and current (range + memcmp sort)
        // sorted-delivery paths must produce per-partition sorted runs over
        // the same global multiset; the range side is additionally globally
        // sorted across partitions.
        let producer: Vec<Vec<Record>> = {
            let mut parts: Vec<Vec<Record>> = vec![Vec::new(); PARALLELISM];
            for i in 0..10_000i64 {
                parts[(i % PARALLELISM as i64) as usize]
                    .push(Record::pair(i.wrapping_mul(0x9E37) % 5000, i));
            }
            parts
        };
        let mut hash_parts =
            paged_exchange_to_partitions(producer.clone(), |r| partition_for(r, &[0], PARALLELISM));
        let mut sample = Vec::new();
        for partition in &producer {
            sample_keys_into(&mut sample, partition, &[0]);
        }
        let bounds = RangeBounds::from_sample(sample, PARALLELISM);
        let mut range_parts =
            paged_exchange_to_partitions(producer, |r| bounds.partition_for_record(r, &[0]));
        for part in hash_parts.iter_mut() {
            sort_by_key(part, &[0]);
        }
        for part in range_parts.iter_mut() {
            assert!(
                sort_by_key_normalized(part, &[0]),
                "Long keys take the memcmp path"
            );
        }
        let ranged: Vec<Record> = range_parts.into_iter().flatten().collect();
        for window in ranged.windows(2) {
            assert!(
                window[0].long(0) <= window[1].long(0),
                "range side not globally sorted"
            );
        }
        let mut hashed: Vec<Record> = hash_parts.into_iter().flatten().collect();
        let mut ranged = ranged;
        hashed.sort();
        ranged.sort();
        assert_eq!(hashed, ranged);
    }

    #[test]
    fn hash_key_matches_legacy_semantics_not_bits() {
        // The new hash differs bit-for-bit from SipHash (that is the point),
        // but equal keys must still collide on both paths.
        let a = Record::pair(7, 1);
        let b = Record::triple(7, 9, 0.5);
        assert_eq!(hash_key(&a, &[0]), hash_key(&b, &[0]));
        assert_eq!(legacy_hash_key(&a, &[0]), legacy_hash_key(&b, &[0]));
    }
}
