//! Micro-benchmarks of the record-routing hot path (key extraction, hash
//! partitioning, exchange, solution-set merge), shared by the
//! `routing_hot_path` bench and the JSON-emitting `routing_report` binary.

/// A named closure timed by the harness.
pub struct Microbench {
    /// Benchmark name.
    pub name: String,
    /// The workload; one call is one sample.
    pub run: Box<dyn Fn()>,
}

/// All routing micro-benchmarks.
pub fn all_microbenches() -> Vec<Microbench> {
    Vec::new()
}
