//! CI perf-regression gate: compares a freshly generated routing report
//! against the frozen `microbench_baseline` section of the tracked
//! `BENCH_routing.json`, failing (exit code 1) when any routing
//! micro-benchmark's speedup regressed by more than 25%.
//!
//! Usage:
//!   `cargo run --release -p bench --bin perf_gate [-- frozen.json [live.json]]`
//!
//! * `frozen.json` — the tracked report embedding `microbench_baseline`
//!   (default `BENCH_routing.json`).
//! * `live.json` — a report freshly written by `routing_report`
//!   (default `BENCH_routing.live.json`).
//!
//! Set `SPINNING_PERF_GATE_HANDICAP=1.5` to divide every live speedup by 1.5
//! (a synthetic 33% regression) and verify that the gate really fails.

use bench::perf::{extract_section, gate, parse_speedups, GateReport, HANDICAP_ENV};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"))
}

fn speedups_of(json: &str, section: &str, path: &str) -> Vec<(String, f64)> {
    let section = extract_section(json, section)
        .unwrap_or_else(|| panic!("perf_gate: no \"{section}\" section in {path}"));
    let speedups = parse_speedups(section);
    assert!(
        !speedups.is_empty(),
        "perf_gate: no benchmarks parsed from {path}"
    );
    speedups
}

fn main() {
    let mut args = std::env::args().skip(1);
    let frozen_path = args.next().unwrap_or_else(|| "BENCH_routing.json".into());
    let live_path = args
        .next()
        .unwrap_or_else(|| "BENCH_routing.live.json".into());

    let frozen = speedups_of(&read(&frozen_path), "microbench_baseline", &frozen_path);
    let live = speedups_of(&read(&live_path), "microbenchmarks", &live_path);

    let handicap: f64 = std::env::var(HANDICAP_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    if handicap != 1.0 {
        println!("injecting a synthetic {handicap}x slowdown ({HANDICAP_ENV})");
    }

    let report: GateReport = gate(&frozen, &live, handicap);
    println!("perf gate: live {live_path} vs frozen {frozen_path} (>25% speedup regression fails)");
    print!("{}", report.to_table());

    if report.passed() {
        println!("perf gate: PASS");
    } else {
        eprintln!("perf gate: FAIL — a routing micro-benchmark regressed or went missing");
        std::process::exit(1);
    }
}
