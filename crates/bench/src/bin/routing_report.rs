//! Emits `BENCH_routing.json`: the tracked perf numbers for the
//! record-routing hot path.
//!
//! Runs (a) the legacy-vs-current routing micro-benchmarks from
//! [`bench::routing`] and (b) an end-to-end incremental / microstep
//! Connected Components run on the Webbase and Wikipedia stand-ins, and
//! writes everything as JSON (hand-rolled — the build has no serde) to the
//! path given as the first argument, or `BENCH_routing.json` in the current
//! directory.
//!
//! Usage: `cargo run --release -p bench --bin routing_report [-- out.json]`

use algorithms::{cc_incremental, cc_microstep, ComponentsConfig};
use bench::harness::Measurement;
use bench::perf::FROZEN_BASELINES;
use graphdata::DatasetProfile;
use std::fmt::Write as _;
use std::time::Instant;

const SAMPLES: usize = 7;
const WARMUP: usize = 2;
const E2E_SCALE: u64 = 16_384;

fn measure<F: FnMut()>(name: &str, mut f: F) -> Measurement {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    Measurement {
        name: name.to_owned(),
        samples,
    }
}

fn json_measurement(out: &mut String, m: &Measurement, indent: &str) {
    let _ = write!(
        out,
        "{indent}{{\"name\": \"{}\", \"min_ms\": {:.3}, \"median_ms\": {:.3}, \"mean_ms\": {:.3}, \"samples\": {}}}",
        m.name,
        m.min().as_secs_f64() * 1e3,
        m.median().as_secs_f64() * 1e3,
        m.mean().as_secs_f64() * 1e3,
        m.samples.len()
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_routing.json".to_owned());
    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"routing_hot_path\",\n");
    json.push_str(
        "  \"note\": \"regenerate with: cargo run --release -p bench --bin routing_report -- BENCH_routing.json\",\n",
    );
    json.push_str(FROZEN_BASELINES);
    let _ = write!(
        json,
        "  \"routed_records_per_sample\": {},\n  \"microbenchmarks\": [\n",
        bench::routing::ROUTED_RECORDS
    );

    let comparisons = bench::routing::comparisons();
    for (i, c) in comparisons.iter().enumerate() {
        eprintln!("measuring {} ...", c.name);
        let legacy = measure("legacy", || (c.legacy)());
        let current = measure("current", || (c.current)());
        let speedup = legacy.median().as_secs_f64() / current.median().as_secs_f64().max(1e-12);
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"description\": \"{}\", \"speedup_median\": {:.2},",
            c.name, c.description, speedup
        );
        json.push_str("     \"legacy\": ");
        json_measurement(&mut json, &legacy, "");
        json.push_str(",\n     \"current\": ");
        json_measurement(&mut json, &current, "");
        json.push('}');
        json.push_str(if i + 1 < comparisons.len() {
            ",\n"
        } else {
            "\n"
        });
        eprintln!(
            "  {}: legacy {:.1?} -> current {:.1?}  ({speedup:.2}x)",
            c.name,
            legacy.median(),
            current.median()
        );
    }
    json.push_str("  ],\n  \"end_to_end\": [\n");

    let e2e = [
        ("webbase", DatasetProfile::webbase()),
        ("wikipedia", DatasetProfile::wikipedia()),
    ];
    for (i, (name, profile)) in e2e.iter().enumerate() {
        let graph = profile.generate(E2E_SCALE);
        let config = ComponentsConfig::new(bench::PARALLELISM);
        eprintln!(
            "measuring end-to-end CC on {name} (|V|={}) ...",
            graph.num_vertices()
        );
        // The last measured sample doubles as the per-superstep latency
        // profile: the long tail of tiny supersteps is where superstep
        // dispatch overhead (thread spawn vs pool deque push) shows up.
        let mut profiled = None;
        let incremental = measure("cc_incremental", || {
            profiled = Some(cc_incremental(&graph, &config).unwrap());
        });
        let microstep = measure("cc_microstep", || {
            let _ = cc_microstep(&graph, &config).unwrap();
        });
        let profiled = profiled.expect("measure ran at least one sample");
        assert!(profiled.converged, "profiled {name} run must converge");
        let profile = bench::superstep_profile(&profiled.stats);
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{name}\", \"scale\": {E2E_SCALE}, \"vertices\": {}, \"edges\": {}, \"parallelism\": {},",
            graph.num_vertices(),
            graph.num_edges(),
            bench::PARALLELISM
        );
        let _ = writeln!(
            json,
            "     \"supersteps\": {}, \"superstep_mean_ms\": {:.4}, \"superstep_tail_mean_ms\": {:.4}, \"superstep_max_ms\": {:.4},",
            profile.supersteps, profile.mean_ms, profile.tail_mean_ms, profile.max_ms
        );
        json.push_str("     \"incremental\": ");
        json_measurement(&mut json, &incremental, "");
        json.push_str(",\n     \"microstep\": ");
        json_measurement(&mut json, &microstep, "");
        json.push('}');
        json.push_str(if i + 1 < e2e.len() { ",\n" } else { "\n" });
        eprintln!(
            "  {name}: incremental {:.1?}, microstep {:.1?}",
            incremental.median(),
            microstep.median()
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("wrote {out_path}");
}
