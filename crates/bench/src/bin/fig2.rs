//! Prints the Figure 2 reproduction (effective work of incremental CC on FOAF).
fn main() {
    println!("{}", bench::fig2(bench::scale_factor()));
}
