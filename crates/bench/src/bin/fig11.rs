//! Prints the Figure 11 reproduction (per-iteration CC runtime, all variants).
fn main() {
    println!("{}", bench::fig11(bench::scale_factor()));
}
