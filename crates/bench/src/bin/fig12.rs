//! Prints the Figure 12 reproduction (runtime vs. messages per iteration).
fn main() {
    println!("{}", bench::fig12(bench::scale_factor()));
}
