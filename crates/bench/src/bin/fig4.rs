//! Prints the Figure 4 reproduction (optimizer plan choice for PageRank).
fn main() {
    println!("{}", bench::fig4());
}
