//! Prints the Figure 8 reproduction (per-iteration PageRank runtime, Wikipedia).
fn main() {
    println!("{}", bench::fig8(bench::scale_factor(), 20));
}
