//! Prints the Table 2 reproduction (data set properties).
fn main() {
    println!("{}", bench::table2(bench::scale_factor()));
}
