//! Prints the Figure 10 reproduction (incremental CC long tail on Webbase).
fn main() {
    println!("{}", bench::fig10(bench::scale_factor()));
}
