//! Prints the Figure 9 reproduction (total Connected Components runtime per system).
fn main() {
    println!("{}", bench::fig9(bench::scale_factor()));
}
