//! Prints the Figure 7 reproduction (total PageRank runtime per system).
fn main() {
    println!("{}", bench::fig7(bench::scale_factor(), 20));
}
