//! The CI perf-regression gate over the routing micro-benchmarks.
//!
//! `BENCH_routing.json` embeds a frozen `microbench_baseline` section: the
//! `speedup_median` (legacy median / current median) of every routing
//! micro-benchmark at the commit that froze it.  The gate re-measures the
//! live micro-benchmarks (via the `routing_report` binary), extracts the live
//! speedups, and fails when any benchmark's speedup dropped more than
//! [`REGRESSION_THRESHOLD`] relative to the frozen value.
//!
//! Gating on the **speedup ratio** rather than on absolute milliseconds is
//! deliberate: the legacy and current implementations run on the same
//! machine in the same process, so their ratio is stable across the very
//! different hardware of CI runners and developer laptops, while absolute
//! medians are not.
//!
//! The JSON handling is a purpose-built scanner (the build has no serde, by
//! policy): it only needs to find a named section and the
//! `"name"`/`"speedup_median"` pairs inside it, in the format that
//! `routing_report` itself writes.

use std::fmt::Write as _;

/// A live speedup below `frozen / REGRESSION_THRESHOLD` fails the gate
/// (i.e. a >25% regression).
pub const REGRESSION_THRESHOLD: f64 = 1.25;

/// Environment variable that divides every live speedup before gating.
/// Setting it to e.g. `1.5` simulates a 33% regression on every benchmark —
/// used to demonstrate that the gate actually fails.
pub const HANDICAP_ENV: &str = "SPINNING_PERF_GATE_HANDICAP";

/// The frozen baseline sections of `BENCH_routing.json`: the perf-gate
/// speedup floors plus historical end-to-end measurements at earlier
/// commits, emitted verbatim by `routing_report` so the tracked file keeps
/// the perf trajectory across regenerations.  This const is the **single
/// source of truth** — the `frozen_baselines_match_the_tracked_report` test
/// fails when the tracked file's floors diverge from it (e.g. after a
/// hand-edit of the JSON without a matching edit here), so the gate cannot
/// be loosened by a silent regeneration.  All end-to-end numbers were
/// measured on the same machine and configuration as the live section
/// (scale 16384, parallelism 8, 7 samples).
pub const FROZEN_BASELINES: &str = r#"  "microbench_baseline": {
    "commit": "7e6e39d+page-native",
    "note": "frozen speedup floors (legacy median / current median) per routing microbench, used by the perf_gate bin: a live speedup below floor/1.25 fails CI. Ratios are compared instead of absolute times so the gate holds across machines; benches whose legacy side is kernel-dependent (thread spawns, SipHash, file I/O) are frozen at conservative floors well under their typical measurement, so the gate trips on genuine hot-path regressions (ratio collapsing towards 1x), not scheduler noise. Floors re-frozen with the page-native operators PR on a markedly noisier machine than the previous freeze (the PR-6 build, re-measured the same day on the same machine, no longer reproduced several of its own frozen ratios; same-bench run-to-run swings up to 2x were observed on identical binaries), so every floor carries a wide noise margin. Typical measured values at freeze time: partition 1.9-7.2x, exchange 2.6-3.3x, page_exchange 0.5-1.1x (the paged exchange pays real serialization of shipped candidates where the Vec exchange moves heap pointers; the in-place view scan and page recycling claw most of that back, and the pages are what the spill, checkpoint and shipping paths consume directly), page_native 10.4-10.7x (the headline win of page-native operators: building and probing a join index over adopted pages vs materializing every record into a keyed hash table), memcmp_sort 1.9-2.3x, range_exchange 0.9-1.2x, spill_merge 0.68x (in-memory sort vs 8 spilled runs + loser-tree merge off disk; under 1x by design, the floor pins how far under it may fall), chained_pipeline 0.85x (a source -> 16x expand -> filter -> sink pipeline at 4-way parallelism: materializing every forward edge vs one streaming chain over credit-bounded page channels; on a small in-memory workload the chain's thread handoffs roughly pay for the materialization they avoid, so the ratio sits near 1x — the floor pins against the chain path collapsing, the win is the bounded footprint), group 4.2-5.0x, merge 1.1-1.6x (re-frozen lower with the paged solution set: the ∪̇ merge now serializes applied deltas into sealed pages — the price that buys page-native supersteps, zero-copy checkpoints and spillable partitions; the end-to-end page-native paths recoup it), dispatch 76-191x, tcp_exchange 0.15-0.25x (one superstep of candidate shipping through the page-channel trait: the in-process backend hands pages over as Arc pointers while the TCP backend pays framing, CRC-32 and loopback kernel round trips; under 1x by design, the floor pins how far the wire path may fall behind the pointer path).",
    "benches": [
      {"name": "partition_single_long_key", "speedup_median": 2.00},
      {"name": "exchange_hash_partition", "speedup_median": 2.40},
      {"name": "page_exchange", "speedup_median": 0.70},
      {"name": "page_native", "speedup_median": 7.00},
      {"name": "memcmp_sort", "speedup_median": 1.40},
      {"name": "range_exchange", "speedup_median": 0.90},
      {"name": "spill_merge", "speedup_median": 0.20},
      {"name": "chained_pipeline", "speedup_median": 0.40},
      {"name": "group_table_build", "speedup_median": 3.50},
      {"name": "solution_set_merge", "speedup_median": 1.10},
      {"name": "superstep_dispatch", "speedup_median": 40.00},
      {"name": "tcp_exchange", "speedup_median": 0.08}
    ]
  },
  "pre_refactor_baseline": {
    "commit": "1c573a9",
    "note": "pre-refactor seed (Vec keys, SipHash, clone-based exchanges)",
    "end_to_end": [
      {"dataset": "webbase", "incremental_median_ms": 552.8, "microstep_median_ms": 408.3},
      {"dataset": "wikipedia", "incremental_median_ms": 16.0, "microstep_median_ms": 12.8}
    ]
  },
  "pre_pool_baseline": {
    "commit": "ddd9186",
    "note": "before the persistent worker pool: every superstep spawned scoped OS threads per partition",
    "end_to_end": [
      {"dataset": "webbase", "supersteps": 705, "superstep_mean_ms": 0.4878, "superstep_tail_mean_ms": 0.2147,
       "incremental_median_ms": 382.9, "microstep_median_ms": 290.1},
      {"dataset": "wikipedia", "supersteps": 4, "superstep_mean_ms": 2.1444, "superstep_tail_mean_ms": 0.2720,
       "incremental_median_ms": 14.0, "microstep_median_ms": 9.7}
    ]
  },
  "pre_page_baseline": {
    "commit": "b9c155f",
    "note": "before serialized record pages: exchanges moved Vec<Record> heap objects between partitions in-process, paying no serialization where a real deployment pays the network path. With pages, microstep CC got faster (scratch-record receive path) while batch-incremental CC pays ~10% for genuine binary serialization of shipped candidates.",
    "end_to_end": [
      {"dataset": "webbase", "supersteps": 705, "superstep_mean_ms": 0.3373, "superstep_tail_mean_ms": 0.0733,
       "incremental_median_ms": 273.3, "microstep_median_ms": 178.0},
      {"dataset": "wikipedia", "supersteps": 4, "superstep_mean_ms": 1.9403, "superstep_tail_mean_ms": 0.1588,
       "incremental_median_ms": 11.3, "microstep_median_ms": 8.0}
    ]
  },
  "pre_page_native_baseline": {
    "commit": "7e6e39d",
    "note": "before page-native operators: pages were the exchange format only — every consumer materialized heap records before grouping, joining or merging, and the solution set stored heap records in its index. Measured the same day, on the same machine, as the live section of the page-native regeneration (that machine runs ~40% slower than the one the pre_page numbers were frozen on, so compare this section against the live section, not against the older baselines).",
    "end_to_end": [
      {"dataset": "webbase", "incremental_median_ms": 429.1, "microstep_median_ms": 279.7},
      {"dataset": "wikipedia", "incremental_median_ms": 14.8, "microstep_median_ms": 10.7}
    ]
  },
"#;

/// Extracts the balanced `{...}` or `[...]` value of the first occurrence of
/// `"key":` in `json`.  Returns `None` when the key is missing or its value
/// is not an object/array.
pub fn extract_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let start = json.find(&needle)?;
    let after = &json[start + needle.len()..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let open = rest.chars().next()?;
    let close = match open {
        '{' => '}',
        '[' => ']',
        _ => return None,
    };
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        if c == '"' {
            in_string = true;
        } else if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(&rest[..=i]);
            }
        }
    }
    None
}

/// Parses `("name", speedup_median)` pairs out of a section written by
/// `routing_report`.  A name is only paired with a `speedup_median` that
/// appears *before the next* `"name"` key, which skips the nested
/// measurement objects (whose names are `legacy` / `current` and whose
/// speedup belongs to a different entry).
pub fn parse_speedups(section: &str) -> Vec<(String, f64)> {
    const NAME_KEY: &str = "\"name\":";
    const SPEEDUP_KEY: &str = "\"speedup_median\":";
    let mut out = Vec::new();
    let mut rest = section;
    while let Some(pos) = rest.find(NAME_KEY) {
        rest = &rest[pos + NAME_KEY.len()..];
        let Some(q1) = rest.find('"') else { break };
        let Some(q2) = rest[q1 + 1..].find('"') else {
            break;
        };
        let name = &rest[q1 + 1..q1 + 1 + q2];
        rest = &rest[q1 + 1 + q2 + 1..];
        let next_name = rest.find(NAME_KEY);
        if let Some(sp) = rest.find(SPEEDUP_KEY) {
            // Only pair when the speedup belongs to this entry.
            if next_name.map(|n| sp < n).unwrap_or(true) {
                let number = rest[sp + SPEEDUP_KEY.len()..].trim_start();
                let end = number
                    .find(|c: char| {
                        !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                    })
                    .unwrap_or(number.len());
                if let Ok(value) = number[..end].parse::<f64>() {
                    out.push((name.to_owned(), value));
                }
                rest = &rest[sp + SPEEDUP_KEY.len()..];
            }
        } else {
            break;
        }
    }
    out
}

/// The verdict for one benchmark.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Benchmark name.
    pub name: String,
    /// Frozen baseline speedup (legacy/current median ratio).
    pub frozen: f64,
    /// Live speedup, after any injected handicap.
    pub live: f64,
    /// `false` when the live speedup regressed past the threshold.
    pub ok: bool,
}

/// The gate verdict over all benchmarks.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// One verdict per frozen benchmark found live.
    pub results: Vec<GateResult>,
    /// Frozen benchmarks with no live measurement — also a failure (a
    /// silently dropped benchmark must not pass the gate).
    pub missing: Vec<String>,
}

impl GateReport {
    /// True when every benchmark is within the threshold and none is missing.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.results.iter().all(|r| r.ok)
    }

    /// Renders an aligned verdict table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>8}  verdict",
            "benchmark", "frozen", "live", "ratio"
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<28} {:>9.2}x {:>9.2}x {:>8.2}  {}",
                r.name,
                r.frozen,
                r.live,
                r.live / r.frozen,
                if r.ok { "ok" } else { "REGRESSED" }
            );
        }
        for name in &self.missing {
            let _ = writeln!(
                out,
                "{name:<28} {:>10} {:>10} {:>8}  MISSING",
                "-", "-", "-"
            );
        }
        out
    }
}

/// Compares live speedups against the frozen baseline.  `handicap` divides
/// every live speedup before the comparison (1.0 = no injection; see
/// [`HANDICAP_ENV`]).
pub fn gate(frozen: &[(String, f64)], live: &[(String, f64)], handicap: f64) -> GateReport {
    let mut report = GateReport::default();
    for (name, frozen_speedup) in frozen {
        match live.iter().find(|(n, _)| n == name) {
            None => report.missing.push(name.clone()),
            Some((_, live_speedup)) => {
                let live_speedup = live_speedup / handicap;
                report.results.push(GateResult {
                    name: name.clone(),
                    frozen: *frozen_speedup,
                    live: live_speedup,
                    ok: live_speedup * REGRESSION_THRESHOLD >= *frozen_speedup,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "routing_hot_path",
  "microbench_baseline": {
    "commit": "abc1234",
    "benches": [
      {"name": "partition", "speedup_median": 3.20},
      {"name": "exchange", "speedup_median": 2.40}
    ]
  },
  "microbenchmarks": [
    {"name": "partition", "description": "d", "speedup_median": 3.10,
     "legacy": {"name": "legacy", "min_ms": 5.0, "median_ms": 5.6},
     "current": {"name": "current", "min_ms": 1.7, "median_ms": 1.8}},
    {"name": "exchange", "description": "d", "speedup_median": 1.00,
     "legacy": {"name": "legacy", "min_ms": 96.0, "median_ms": 104.0},
     "current": {"name": "current", "min_ms": 41.0, "median_ms": 104.0}}
  ]
}"#;

    #[test]
    fn extracts_balanced_sections() {
        let base = extract_section(SAMPLE, "microbench_baseline").unwrap();
        assert!(base.starts_with('{') && base.ends_with('}'));
        assert!(base.contains("abc1234"));
        assert!(!base.contains("microbenchmarks"));
        let live = extract_section(SAMPLE, "microbenchmarks").unwrap();
        assert!(live.starts_with('[') && live.ends_with(']'));
        assert!(extract_section(SAMPLE, "no_such_key").is_none());
    }

    #[test]
    fn parses_speedups_skipping_nested_measurement_names() {
        let live = parse_speedups(extract_section(SAMPLE, "microbenchmarks").unwrap());
        assert_eq!(
            live,
            vec![
                ("partition".to_owned(), 3.10),
                ("exchange".to_owned(), 1.00)
            ]
        );
        let frozen = parse_speedups(extract_section(SAMPLE, "microbench_baseline").unwrap());
        assert_eq!(
            frozen,
            vec![
                ("partition".to_owned(), 3.20),
                ("exchange".to_owned(), 2.40)
            ]
        );
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_past_it() {
        let frozen = parse_speedups(extract_section(SAMPLE, "microbench_baseline").unwrap());
        let live = parse_speedups(extract_section(SAMPLE, "microbenchmarks").unwrap());
        let report = gate(&frozen, &live, 1.0);
        // partition: 3.10 vs 3.20 frozen — a 3% dip, within the 25% budget.
        assert!(report.results[0].ok);
        // exchange: 1.00 vs 2.40 frozen — a 58% regression, fails.
        assert!(!report.results[1].ok);
        assert!(!report.passed());
    }

    #[test]
    fn gate_fails_on_missing_benchmarks() {
        let frozen = vec![("gone".to_owned(), 2.0)];
        let report = gate(&frozen, &[], 1.0);
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["gone".to_owned()]);
        assert!(report.to_table().contains("MISSING"));
    }

    #[test]
    fn handicap_injection_trips_the_gate() {
        let frozen = vec![("b".to_owned(), 3.0)];
        let live = vec![("b".to_owned(), 3.0)];
        assert!(gate(&frozen, &live, 1.0).passed());
        // A 1.5x handicap simulates a 33% regression: must fail a 25% gate.
        assert!(!gate(&frozen, &live, 1.5).passed());
    }

    #[test]
    fn frozen_baselines_match_the_tracked_report() {
        // The tracked BENCH_routing.json at the repository root must always
        // contain a parseable frozen baseline — otherwise the CI gate would
        // pass vacuously — and its floors must equal FROZEN_BASELINES (the
        // single source of truth that regeneration emits): a hand-edit of
        // the JSON floors without a matching edit of the const would
        // otherwise be silently reverted by the next regeneration,
        // loosening the gate unnoticed.
        let json = include_str!("../../../BENCH_routing.json");
        let tracked = parse_speedups(
            extract_section(json, "microbench_baseline").expect("frozen baseline section"),
        );
        assert!(
            tracked.len() >= 5,
            "expected the frozen routing benchmarks, got {tracked:?}"
        );
        let source = parse_speedups(
            extract_section(FROZEN_BASELINES, "microbench_baseline")
                .expect("FROZEN_BASELINES embeds the gate floors"),
        );
        assert_eq!(
            tracked, source,
            "tracked BENCH_routing.json floors diverged from perf::FROZEN_BASELINES; \
             edit the const and regenerate with routing_report"
        );
        let live = parse_speedups(extract_section(json, "microbenchmarks").unwrap());
        assert_eq!(
            tracked.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            live.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "frozen baseline and live section must cover the same benchmarks"
        );
    }
}
