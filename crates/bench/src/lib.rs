//! # bench — reproduction harness for every table and figure of the paper
//!
//! Each public `figN`/`tableN` function reproduces one element of the
//! evaluation section (Section 6) of *Spinning Fast Iterative Data Flows* and
//! returns the data series as a printable text table.  Thin binaries
//! (`cargo run --release -p bench --bin fig7`) print them; the Criterion
//! benches in `benches/` time the underlying workloads.
//!
//! The graphs are synthetic stand-ins generated from the
//! [`graphdata::DatasetProfile`]s at a downscale factor taken from the
//! `SPINNING_SCALE` environment variable (default 2048, i.e. graphs are
//! ~1/2048th of the paper's), so absolute runtimes are not comparable to the
//! paper — the *shape* of each figure (who wins, how per-iteration work
//! decays, where crossovers happen) is what is reproduced.  See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured record.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod perf;
pub mod routing;

use algorithms::{
    cc_bulk, cc_incremental, cc_microstep, pagerank, ComponentsConfig, PageRankConfig, PageRankPlan,
};
use baselines::{cc_pregel, cc_spark_simulated_incremental, pagerank_pregel, pagerank_spark};
use baselines::{cc_spark_bulk, PregelConfig, SparkContext};
use graphdata::{DatasetProfile, Graph, GraphSummary};
use std::time::{Duration, Instant};

/// Degree of parallelism used by all harness runs (the paper's cluster has 32
/// cores; on one machine we default to 8 worker partitions).
pub const PARALLELISM: usize = 8;

/// Reads the downscale factor from `SPINNING_SCALE` (default 2048).
pub fn scale_factor() -> u64 {
    scale_factor_or(2048)
}

/// Reads the downscale factor from `SPINNING_SCALE` with a caller-chosen
/// default (benches that need a different baseline scale share the same env
/// contract).
pub fn scale_factor_or(default: u64) -> u64 {
    std::env::var("SPINNING_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads the per-benchmark sample count from `SPINNING_BENCH_SAMPLES`
/// (default as given).  CI runs the long-tail bench with 1 sample as a smoke
/// test for pool regressions that deadlock or explode latency.
pub fn bench_samples(default: usize) -> usize {
    std::env::var("SPINNING_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Per-superstep latency summary of one iterative run.  The long-tail
/// workloads (Webbase's 700+ supersteps) are dominated by the cost of tiny
/// late supersteps, so the tail mean — not the overall mean — is the number
/// the persistent worker pool is meant to move.
#[derive(Debug, Clone)]
pub struct SuperstepProfile {
    /// Number of supersteps in the run.
    pub supersteps: usize,
    /// Mean wall-clock time per superstep (ms).
    pub mean_ms: f64,
    /// Mean wall-clock time over the last half of the supersteps (ms) — the
    /// long tail, where worksets are tiny and dispatch overhead dominates.
    pub tail_mean_ms: f64,
    /// Slowest superstep (ms).
    pub max_ms: f64,
}

/// Summarises the per-superstep latencies of an iterative run.
pub fn superstep_profile(stats: &spinning_core::IterationRunStats) -> SuperstepProfile {
    let times: Vec<f64> = stats.per_iteration.iter().map(|s| s.millis()).collect();
    let n = times.len();
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    SuperstepProfile {
        supersteps: n,
        mean_ms: mean(&times),
        tail_mean_ms: mean(&times[n / 2..]),
        max_ms: times.iter().copied().fold(0.0, f64::max),
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Table 2: data set properties.  Prints the paper's full-scale numbers next
/// to the generated stand-in's actual statistics.
pub fn table2(scale: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2: data set properties (scale factor 1/{scale})\n"
    ));
    out.push_str(&format!(
        "{:<14} {:>14} {:>16} {:>10} | {:>10} {:>12} {:>10}\n",
        "dataset", "paper |V|", "paper |E|", "paper deg", "gen |V|", "gen |E|", "gen deg"
    ));
    for profile in DatasetProfile::table2() {
        let graph = profile.generate(scale);
        let summary = GraphSummary::of(&graph);
        out.push_str(&format!(
            "{:<14} {:>14} {:>16} {:>10.2} | {:>10} {:>12} {:>10.2}\n",
            profile.name,
            profile.paper_vertices,
            profile.paper_edges,
            profile.paper_avg_degree(),
            summary.vertices,
            summary.edges,
            summary.avg_degree,
        ));
    }
    out
}

/// Figure 2: the effective work of the incremental Connected Components
/// algorithm on the FOAF subgraph — vertices inspected, vertices changed and
/// working-set size per iteration.
pub fn fig2(scale: u64) -> String {
    let graph = DatasetProfile::foaf().generate(scale);
    let result = cc_incremental(&graph, &ComponentsConfig::new(PARALLELISM))
        .expect("incremental CC on the FOAF stand-in");
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2: effective work of incremental Connected Components (FOAF stand-in, |V|={}, |E|={})\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    out.push_str(&format!(
        "{:>5} {:>18} {:>18} {:>20}\n",
        "iter", "vertices inspected", "vertices changed", "workset elements"
    ));
    for s in &result.stats.per_iteration {
        out.push_str(&format!(
            "{:>5} {:>18} {:>18} {:>20}\n",
            s.iteration, s.elements_inspected, s.elements_changed, s.messages_sent
        ));
    }
    out
}

/// Figure 4: the optimizer's plan choice for PageRank as the rank vector
/// grows relative to the transition matrix, showing the broadcast/partition
/// crossover.
pub fn fig4() -> String {
    use dataflow::prelude::ShipStrategy;
    use optimizer::{IterationSpec, Optimizer};

    let mut out = String::new();
    out.push_str(
        "Figure 4: optimizer plan choice for the PageRank join (20 iterations, 8 workers)\n",
    );
    out.push_str(&format!(
        "{:>14} {:>14} {:>26} {:>14}\n",
        "|p| (pages)", "|A| (entries)", "chosen vector shipping", "est. cost"
    ));
    let matrix_entries = 4_000_000usize;
    for pages in [
        1_000usize, 10_000, 100_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
    ] {
        // Build a skeleton plan with the right cardinality hints; the data
        // itself is irrelevant for plan choice.
        let graph = graphdata::ring(64);
        let (mut plan, vector, join, reduce, annotations) =
            algorithms::pagerank::build_step_plan(&graph, 0.85);
        plan.set_estimated_records(vector, pages);
        let matrix = plan
            .operators()
            .iter()
            .find(|o| o.name == "transition-matrix")
            .unwrap()
            .id;
        plan.set_estimated_records(matrix, matrix_entries);
        plan.set_estimated_records(join, matrix_entries);
        plan.set_estimated_records(reduce, pages);
        let sink = plan.sink_by_name("next-ranks").unwrap();
        let optimizer = Optimizer::new(PARALLELISM);
        let optimized = optimizer
            .optimize_iterative(&plan, &annotations, &IterationSpec::new(vector, sink, 20.0))
            .expect("optimize PageRank step plan");
        let ship = match &optimized.physical.choice(join).input_ships[0] {
            ShipStrategy::Broadcast => "broadcast (Fig.4 left)",
            ShipStrategy::PartitionHash(_) => "partition (Fig.4 right)",
            _ => "other",
        };
        out.push_str(&format!(
            "{:>14} {:>14} {:>26} {:>14.0}\n",
            pages,
            matrix_entries,
            ship,
            optimized.cost.total()
        ));
    }
    out
}

/// One row of the system-comparison figures.
#[derive(Debug, Clone)]
pub struct SystemTiming {
    /// System / variant name.
    pub system: String,
    /// Total wall-clock runtime.
    pub total: Duration,
    /// Per-iteration wall-clock times.
    pub per_iteration: Vec<Duration>,
    /// Per-iteration message counts, where the system reports them.
    pub messages: Vec<usize>,
}

/// Runs the PageRank comparison of Figure 7 on one dataset profile and
/// returns one timing per system.
pub fn pagerank_systems(graph: &Graph, iterations: usize) -> Vec<SystemTiming> {
    let mut results = Vec::new();

    let ctx = SparkContext::new(PARALLELISM);
    let start = Instant::now();
    let _ = pagerank_spark(graph, iterations, &ctx);
    results.push(SystemTiming {
        system: "Spark".into(),
        total: start.elapsed(),
        per_iteration: ctx.stats().iteration_times,
        messages: vec![],
    });

    let start = Instant::now();
    let pregel = pagerank_pregel(graph, iterations, 0.85, &PregelConfig::new(PARALLELISM));
    results.push(SystemTiming {
        system: "Giraph".into(),
        total: start.elapsed(),
        per_iteration: pregel.stats.iter().map(|s| s.elapsed).collect(),
        messages: pregel.stats.iter().map(|s| s.messages_sent).collect(),
    });

    for (name, plan) in [
        ("Stratosphere Part.", PageRankPlan::ForcePartition),
        ("Stratosphere BC", PageRankPlan::ForceBroadcast),
    ] {
        let start = Instant::now();
        let result = pagerank(
            graph,
            &PageRankConfig::new(PARALLELISM)
                .with_iterations(iterations)
                .with_plan(plan),
        )
        .expect("dataflow PageRank");
        results.push(SystemTiming {
            system: name.into(),
            total: start.elapsed(),
            per_iteration: result
                .stats
                .per_iteration
                .iter()
                .map(|s| s.elapsed)
                .collect(),
            messages: result
                .stats
                .per_iteration
                .iter()
                .map(|s| s.messages_sent)
                .collect(),
        });
    }
    results
}

/// Figure 7: total PageRank runtimes per system on the Wikipedia, Webbase and
/// Twitter stand-ins (20 iterations).
pub fn fig7(scale: u64, iterations: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7: total PageRank runtime, {iterations} iterations (scale 1/{scale}, seconds)\n"
    ));
    out.push_str(&format!("{:<22}", "system"));
    let profiles = [
        DatasetProfile::wikipedia(),
        DatasetProfile::webbase(),
        DatasetProfile::twitter(),
    ];
    for p in &profiles {
        out.push_str(&format!(" {:>14}", p.name));
    }
    out.push('\n');
    let mut columns: Vec<Vec<SystemTiming>> = Vec::new();
    for profile in &profiles {
        let graph = profile.generate(scale);
        columns.push(pagerank_systems(&graph, iterations));
    }
    for row in 0..columns[0].len() {
        out.push_str(&format!("{:<22}", columns[0][row].system));
        for column in &columns {
            out.push_str(&format!(" {:>14.3}", secs(column[row].total)));
        }
        out.push('\n');
    }
    out
}

/// Figure 8: per-iteration PageRank runtimes on the Wikipedia stand-in.
pub fn fig8(scale: u64, iterations: usize) -> String {
    let graph = DatasetProfile::wikipedia().generate(scale);
    let systems = pagerank_systems(&graph, iterations);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8: per-iteration PageRank runtime on the Wikipedia stand-in (ms, scale 1/{scale})\n"
    ));
    out.push_str(&format!("{:>5}", "iter"));
    for s in &systems {
        out.push_str(&format!(" {:>20}", s.system));
    }
    out.push('\n');
    for i in 0..iterations {
        out.push_str(&format!("{:>5}", i + 1));
        for s in &systems {
            let ms = s
                .per_iteration
                .get(i)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN);
            out.push_str(&format!(" {:>20.2}", ms));
        }
        out.push('\n');
    }
    out
}

/// Runs the Connected Components comparison of Figure 9 on one graph.
/// `max_iterations` bounds the bulk/incremental runs (the paper bounds
/// Webbase to its first 20 iterations).
pub fn cc_systems(graph: &Graph, max_iterations: usize) -> Vec<SystemTiming> {
    let mut results = Vec::new();
    let config = ComponentsConfig::new(PARALLELISM).with_max_iterations(max_iterations);

    let ctx = SparkContext::new(PARALLELISM);
    let start = Instant::now();
    let _ = cc_spark_bulk(graph, &ctx);
    results.push(SystemTiming {
        system: "Spark".into(),
        total: start.elapsed(),
        per_iteration: ctx.stats().iteration_times,
        messages: vec![],
    });

    let start = Instant::now();
    let pregel = cc_pregel(
        graph,
        &PregelConfig::new(PARALLELISM).with_max_supersteps(max_iterations),
    );
    results.push(SystemTiming {
        system: "Giraph".into(),
        total: start.elapsed(),
        per_iteration: pregel.stats.iter().map(|s| s.elapsed).collect(),
        messages: pregel.stats.iter().map(|s| s.messages_sent).collect(),
    });

    let start = Instant::now();
    let bulk = cc_bulk(graph, &config).expect("bulk CC");
    results.push(SystemTiming {
        system: "Stratosphere Full".into(),
        total: start.elapsed(),
        per_iteration: bulk.stats.per_iteration.iter().map(|s| s.elapsed).collect(),
        messages: bulk
            .stats
            .per_iteration
            .iter()
            .map(|s| s.messages_sent)
            .collect(),
    });

    let start = Instant::now();
    let micro = cc_microstep(graph, &config).expect("microstep CC");
    results.push(SystemTiming {
        system: "Stratosphere Micro".into(),
        total: start.elapsed(),
        per_iteration: micro
            .stats
            .per_iteration
            .iter()
            .map(|s| s.elapsed)
            .collect(),
        messages: micro
            .stats
            .per_iteration
            .iter()
            .map(|s| s.messages_sent)
            .collect(),
    });

    let start = Instant::now();
    let incr = cc_incremental(graph, &config).expect("incremental CC");
    results.push(SystemTiming {
        system: "Stratosphere Incr.".into(),
        total: start.elapsed(),
        per_iteration: incr.stats.per_iteration.iter().map(|s| s.elapsed).collect(),
        messages: incr
            .stats
            .per_iteration
            .iter()
            .map(|s| s.messages_sent)
            .collect(),
    });
    results
}

/// Figure 9: total Connected Components runtimes per system on the four Table
/// 2 stand-ins (Webbase bounded to its first 20 iterations, as in the paper).
pub fn fig9(scale: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 9: total Connected Components runtime (scale 1/{scale}, seconds)\n"
    ));
    let profiles = [
        (DatasetProfile::wikipedia(), usize::MAX),
        (DatasetProfile::hollywood(), usize::MAX),
        (DatasetProfile::twitter(), usize::MAX),
        (DatasetProfile::webbase(), 20usize),
    ];
    out.push_str(&format!("{:<22}", "system"));
    for (p, bound) in &profiles {
        let label = if *bound == usize::MAX {
            p.name.to_string()
        } else {
            format!("{} (20)", p.name)
        };
        out.push_str(&format!(" {:>16}", label));
    }
    out.push('\n');
    let mut columns = Vec::new();
    for (profile, bound) in &profiles {
        let graph = profile.generate(scale);
        let bound = if *bound == usize::MAX {
            100_000
        } else {
            *bound
        };
        columns.push(cc_systems(&graph, bound));
    }
    for row in 0..columns[0].len() {
        out.push_str(&format!("{:<22}", columns[0][row].system));
        for column in &columns {
            out.push_str(&format!(" {:>16.3}", secs(column[row].total)));
        }
        out.push('\n');
    }
    out
}

/// Figure 10: per-iteration runtime and message volume of the incremental
/// Connected Components on the Webbase stand-in, run to full convergence
/// (the long tail caused by the huge-diameter component).
pub fn fig10(scale: u64) -> String {
    let graph = DatasetProfile::webbase().generate(scale);
    let result = cc_incremental(&graph, &ComponentsConfig::new(PARALLELISM))
        .expect("incremental CC on the Webbase stand-in");
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 10: incremental Connected Components on the Webbase stand-in \
         (|V|={}, |E|={}, {} supersteps to convergence)\n",
        graph.num_vertices(),
        graph.num_edges(),
        result.iterations
    ));
    out.push_str(&format!(
        "{:>5} {:>16} {:>16}\n",
        "iter", "millis", "messages"
    ));
    for s in &result.stats.per_iteration {
        out.push_str(&format!(
            "{:>5} {:>16.3} {:>16}\n",
            s.iteration,
            s.millis(),
            s.messages_sent
        ));
    }
    out
}

/// Figure 11: per-iteration Connected Components runtimes on the Wikipedia
/// stand-in for all six variants the paper plots.
pub fn fig11(scale: u64) -> String {
    let graph = DatasetProfile::wikipedia().generate(scale);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 11: per-iteration Connected Components runtime on the Wikipedia stand-in (ms, scale 1/{scale})\n"
    ));

    let mut systems = cc_systems(&graph, 100_000);
    // Add the "Spark Sim. Incr." series.
    let ctx = SparkContext::new(PARALLELISM);
    let start = Instant::now();
    let _ = cc_spark_simulated_incremental(&graph, &ctx);
    systems.insert(
        1,
        SystemTiming {
            system: "Spark Sim. Incr.".into(),
            total: start.elapsed(),
            per_iteration: ctx.stats().iteration_times,
            messages: vec![],
        },
    );

    out.push_str(&format!("{:>5}", "iter"));
    for s in &systems {
        out.push_str(&format!(" {:>20}", s.system));
    }
    out.push('\n');
    let rows = systems
        .iter()
        .map(|s| s.per_iteration.len())
        .max()
        .unwrap_or(0);
    for i in 0..rows {
        out.push_str(&format!("{:>5}", i + 1));
        for s in &systems {
            match s.per_iteration.get(i) {
                Some(d) => out.push_str(&format!(" {:>20.2}", d.as_secs_f64() * 1e3)),
                None => out.push_str(&format!(" {:>20}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Figure 12: correlation between per-iteration runtime and the number of
/// candidate records (messages) for the full, batch-incremental and microstep
/// Connected Components variants on the Wikipedia stand-in.
pub fn fig12(scale: u64) -> String {
    let graph = DatasetProfile::wikipedia().generate(scale);
    let config = ComponentsConfig::new(PARALLELISM);
    let full = cc_bulk(&graph, &config).expect("bulk CC");
    let incr = cc_incremental(&graph, &config).expect("incremental CC");
    let micro = cc_microstep(&graph, &config).expect("microstep CC");

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 12: runtime vs. candidate records per iteration on the Wikipedia stand-in (scale 1/{scale})\n"
    ));
    out.push_str(&format!(
        "{:>5} {:>12} {:>12} {:>12} {:>14} {:>14} {:>14}\n",
        "iter", "full ms", "incr ms", "micro ms", "full msgs", "incr msgs", "micro msgs"
    ));
    let rows = full
        .stats
        .per_iteration
        .len()
        .max(incr.stats.per_iteration.len())
        .max(micro.stats.per_iteration.len());
    let cell_ms = |stats: &spinning_core::IterationRunStats, i: usize| {
        stats
            .per_iteration
            .get(i)
            .map(|s| format!("{:.2}", s.millis()))
            .unwrap_or("-".into())
    };
    let cell_msgs = |stats: &spinning_core::IterationRunStats, i: usize| {
        stats
            .per_iteration
            .get(i)
            .map(|s| s.messages_sent.to_string())
            .unwrap_or("-".into())
    };
    for i in 0..rows {
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>12} {:>14} {:>14} {:>14}\n",
            i + 1,
            cell_ms(&full.stats, i),
            cell_ms(&incr.stats, i),
            cell_ms(&micro.stats, i),
            cell_msgs(&full.stats, i),
            cell_msgs(&incr.stats, i),
            cell_msgs(&micro.stats, i),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: u64 = 65_536;

    #[test]
    fn table2_lists_all_four_datasets() {
        let table = table2(TEST_SCALE);
        for name in ["Wikipedia-EN", "Webbase", "Hollywood", "Twitter"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn fig2_workset_decays() {
        let text = fig2(TEST_SCALE);
        assert!(text.lines().count() > 4);
        assert!(text.contains("vertices inspected"));
    }

    #[test]
    fn fig4_shows_both_plans_and_a_crossover() {
        let text = fig4();
        assert!(text.contains("broadcast (Fig.4 left)"));
        assert!(text.contains("partition (Fig.4 right)"));
    }

    #[test]
    fn pagerank_systems_report_all_four_series() {
        let graph = DatasetProfile::wikipedia().generate(TEST_SCALE);
        let systems = pagerank_systems(&graph, 3);
        let names: Vec<&str> = systems.iter().map(|s| s.system.as_str()).collect();
        assert_eq!(
            names,
            vec!["Spark", "Giraph", "Stratosphere Part.", "Stratosphere BC"]
        );
        assert!(systems.iter().all(|s| s.per_iteration.len() >= 3));
    }

    #[test]
    fn cc_systems_report_all_five_series() {
        let graph = DatasetProfile::wikipedia().generate(TEST_SCALE);
        let systems = cc_systems(&graph, 100_000);
        assert_eq!(systems.len(), 5);
        assert!(systems.iter().all(|s| !s.per_iteration.is_empty()));
    }

    #[test]
    fn fig10_converges_with_a_long_tail() {
        let text = fig10(TEST_SCALE);
        let supersteps = text.lines().count().saturating_sub(2);
        assert!(
            supersteps > 10,
            "expected a long tail, got {supersteps} supersteps\n{text}"
        );
    }
}
