//! A minimal benchmarking harness (criterion stand-in).
//!
//! The container this repository builds in has no network access, so the
//! benches cannot pull in `criterion`.  This module provides the small subset
//! the benches need: named benchmark groups, a warm-up phase, a fixed number
//! of measured samples, and min/median/mean reporting.  Results print to
//! stdout; [`Group::finish`] returns the samples so callers (like the
//! JSON-emitting bench binaries) can post-process them.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark's measured samples.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (within its group).
    pub name: String,
    /// Wall-clock time of each measured sample.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// The fastest sample — the least noisy estimate of the true cost.
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// The median sample.
    pub fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }

    /// The arithmetic mean of the samples.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct Group {
    name: String,
    sample_size: usize,
    warmup: usize,
    measurements: Vec<Measurement>,
}

impl Group {
    /// Creates a group with the default 10 samples and 2 warm-up runs.
    pub fn new(name: &str) -> Self {
        println!("\n== bench group: {name}");
        Group {
            name: name.to_owned(),
            sample_size: 10,
            warmup: 2,
            measurements: Vec::new(),
        }
    }

    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the number of warm-up runs per benchmark (0 disables warm-up —
    /// used by smoke runs that only care about completion, not timing).
    pub fn warmup(&mut self, n: usize) -> &mut Self {
        self.warmup = n;
        self
    }

    /// Runs `f` `sample_size` times (after warm-up) and records the timings.
    pub fn bench_function<F: FnMut()>(&mut self, name: &str, mut f: F) -> &mut Self {
        for _ in 0..self.warmup {
            f();
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            f();
            samples.push(start.elapsed());
        }
        let m = Measurement {
            name: name.to_owned(),
            samples,
        };
        println!(
            "{:<44} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
            format!("{}/{}", self.name, m.name),
            m.min(),
            m.median(),
            m.mean(),
            m.samples.len(),
        );
        self.measurements.push(m);
        self
    }

    /// Finishes the group, returning the collected measurements.
    pub fn finish(self) -> Vec<Measurement> {
        self.measurements
    }
}
