//! Serialized record pages: the binary wire format of the engine.
//!
//! The Stratosphere runtime the paper builds on never routes heap objects
//! between workers: records travel as length-prefixed binary data inside
//! page-sized buffers, which is what makes repartitioning a `memcpy`, lets
//! sort and merge operate on normalized binary keys, and allows intermediate
//! results to spill to disk.  This module is that representation:
//!
//! * [`RecordPage`] — an immutable, sealed byte buffer holding a run of
//!   length-prefixed serialized records.  Sealed pages are shared and moved
//!   as pointers ([`std::sync::Arc`]); the bytes themselves are written once.
//! * [`PageWriter`] — serializes [`Record`]s into pages, sealing a page when
//!   the next record would overflow the page capacity.
//! * [`PageReader`] / [`RecordView`] — iterate the records of a sealed page
//!   lazily, either materializing owned [`Record`]s or reading individual
//!   fields straight out of the page bytes without allocating.
//! * [`ExchangedPartition`] — what one worker partition receives from an
//!   exchange: records that never left the partition (moved as heap objects,
//!   like a chained local forward) plus the sealed pages shipped from peer
//!   partitions.
//!
//! # Wire format
//!
//! Every record is framed as a little-endian `u32` payload length followed by
//! the concatenated field encodings; each field is a type tag byte followed
//! by its payload:
//!
//! | tag | variant                  | payload                                    |
//! |-----|--------------------------|--------------------------------------------|
//! | 0   | [`Value::Null`]          | none                                       |
//! | 1   | [`Value::Bool`]          | 1 byte (0 or 1)                            |
//! | 2   | [`Value::Long`]          | 8 bytes, big-endian, sign bit flipped      |
//! | 3   | [`Value::Double`]        | 8 bytes, big-endian, total-order encoded   |
//! | 4   | [`Value::Text`]          | `u32` LE byte length + UTF-8 bytes         |
//!
//! The `Long` payload is a **normalized key**: flipping the sign bit and
//! storing big-endian makes an unsigned byte-wise comparison of the 8 bytes
//! agree with the numeric `i64` order, so a future sort/merge can compare
//! records by `memcmp` on the key prefix without deserializing
//! ([`RecordView::normalized_long_prefix`]).  `Double` payloads use the
//! standard total-order trick (negative values flip all bits, positive values
//! flip only the sign bit), matching [`f64::total_cmp`].
//!
//! [`Value::estimated_bytes`] and [`Record::estimated_bytes`] return the
//! *exact* serialized width of this format; the writer uses them to decide
//! whether a record fits into the open page before serializing it.

use crate::record::Record;
use crate::spill::{RunMerger, SpilledRun};
use crate::value::Value;
use std::sync::Arc;

/// Default capacity of one page in bytes (the 32 KiB buffer size used by the
/// Stratosphere/Flink runtimes this reproduces).
pub const DEFAULT_PAGE_BYTES: usize = 32 * 1024;

/// Number of bytes of the per-record length prefix.
pub const RECORD_FRAME_BYTES: usize = 4;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_LONG: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_TEXT: u8 = 4;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Encodes an `i64` as its order-preserving normalized form: big-endian with
/// the sign bit flipped, so unsigned byte-wise comparison equals numeric
/// comparison.
#[inline]
pub fn normalize_long(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Inverse of [`normalize_long`].
#[inline]
pub fn denormalize_long(bytes: [u8; 8]) -> i64 {
    (u64::from_be_bytes(bytes) ^ (1 << 63)) as i64
}

/// Encodes an `f64` so unsigned byte-wise comparison of the result equals
/// [`f64::total_cmp`] ordering.
#[inline]
fn normalize_double(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits >> 63 == 1 {
        !bits // negative: flip everything so more-negative sorts first
    } else {
        bits ^ (1 << 63) // positive: flip the sign bit above all negatives
    };
    flipped.to_be_bytes()
}

/// Inverse of [`normalize_double`].
#[inline]
fn denormalize_double(bytes: [u8; 8]) -> f64 {
    let flipped = u64::from_be_bytes(bytes);
    let bits = if flipped >> 63 == 0 {
        !flipped
    } else {
        flipped ^ (1 << 63)
    };
    f64::from_bits(bits)
}

#[inline]
fn serialize_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(v) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*v));
        }
        Value::Long(v) => {
            out.push(TAG_LONG);
            out.extend_from_slice(&normalize_long(*v));
        }
        Value::Double(v) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&normalize_double(*v));
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Serializes one field into the head of `buf`, returning its width.  The
/// caller guarantees the field fits (see the stack fast path of
/// [`serialize_record_with_width`]).
#[inline]
fn serialize_value_into(value: &Value, buf: &mut [u8]) -> usize {
    match value {
        Value::Null => {
            buf[0] = TAG_NULL;
            1
        }
        Value::Bool(v) => {
            buf[0] = TAG_BOOL;
            buf[1] = u8::from(*v);
            2
        }
        Value::Long(v) => {
            buf[0] = TAG_LONG;
            buf[1..9].copy_from_slice(&normalize_long(*v));
            9
        }
        Value::Double(v) => {
            buf[0] = TAG_DOUBLE;
            buf[1..9].copy_from_slice(&normalize_double(*v));
            9
        }
        Value::Text(s) => {
            buf[0] = TAG_TEXT;
            buf[1..5].copy_from_slice(&(s.len() as u32).to_le_bytes());
            buf[5..5 + s.len()].copy_from_slice(s.as_bytes());
            5 + s.len()
        }
    }
}

/// Serializes one record (length prefix plus field encodings) onto `out`.
/// The number of bytes appended is exactly [`Record::estimated_bytes`].
pub fn serialize_record(record: &Record, out: &mut Vec<u8>) {
    serialize_record_with_width(record, record.estimated_bytes(), out);
}

/// [`serialize_record`] with the serialized width precomputed by the caller
/// (the page writer already computed it for its fit check — the field widths
/// are summed once, not twice).  Small records — the exchange-path common
/// case — assemble frame and fields in one stack buffer and land in the page
/// with a single copy instead of a bounds-checked append per field.
pub(crate) fn serialize_record_with_width(record: &Record, width: usize, out: &mut Vec<u8>) {
    let payload = (width - RECORD_FRAME_BYTES) as u32;
    const STACK: usize = 64;
    if width <= STACK {
        let mut buf = [0u8; STACK];
        buf[..RECORD_FRAME_BYTES].copy_from_slice(&payload.to_le_bytes());
        let mut off = RECORD_FRAME_BYTES;
        for value in record.fields() {
            off += serialize_value_into(value, &mut buf[off..]);
        }
        debug_assert_eq!(
            off, width,
            "estimated_bytes must equal the serialized width"
        );
        out.extend_from_slice(&buf[..off]);
        return;
    }
    out.reserve(width);
    out.extend_from_slice(&payload.to_le_bytes());
    let start = out.len();
    for value in record.fields() {
        serialize_value(value, out);
    }
    debug_assert_eq!(
        out.len() - start,
        payload as usize,
        "estimated_bytes must equal the serialized width"
    );
}

#[inline]
fn read_array<const N: usize>(bytes: &[u8], offset: &mut usize) -> [u8; N] {
    let end = *offset + N;
    let chunk: [u8; N] = bytes[*offset..end]
        .try_into()
        .expect("slice bounds checked by caller");
    *offset = end;
    chunk
}

/// Decodes the field at `offset`, advancing it past the field.
fn deserialize_value(bytes: &[u8], offset: &mut usize) -> Value {
    let tag = bytes[*offset];
    *offset += 1;
    match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            let v = bytes[*offset] != 0;
            *offset += 1;
            Value::Bool(v)
        }
        TAG_LONG => Value::Long(denormalize_long(read_array(bytes, offset))),
        TAG_DOUBLE => Value::Double(denormalize_double(read_array(bytes, offset))),
        TAG_TEXT => {
            let len = u32::from_le_bytes(read_array(bytes, offset)) as usize;
            let end = *offset + len;
            let s = std::str::from_utf8(&bytes[*offset..end])
                .expect("pages store valid UTF-8 text fields");
            *offset = end;
            Value::Text(s.to_owned())
        }
        other => panic!("corrupt page: unknown value tag {other}"),
    }
}

/// Reads one length-framed record starting at `offset` into `target`,
/// advancing the offset past it — the in-crate primitive behind
/// [`crate::spill::RunCursor`], which revives page bytes from disk without
/// constructing a [`RecordPage`].
pub(crate) fn read_framed_record(bytes: &[u8], offset: &mut usize, target: &mut Record) {
    let len = u32::from_le_bytes(read_array(bytes, offset)) as usize;
    let end = *offset + len;
    target.clear();
    while *offset < end {
        target.push(deserialize_value(bytes, offset));
    }
}

// ---------------------------------------------------------------------------
// Pages
// ---------------------------------------------------------------------------

/// An immutable, sealed buffer of length-prefixed serialized records.
///
/// Pages are produced by a [`PageWriter`], after which their bytes never
/// change; the exchange paths move or share them as `Arc<RecordPage>`
/// pointers, so routing a sealed page between partitions costs a pointer
/// copy regardless of how many records it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordPage {
    buf: Vec<u8>,
    records: usize,
}

impl RecordPage {
    /// Number of records in the page.
    #[inline]
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// True if the page holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of serialized bytes (frames included).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// The raw serialized bytes of the page (the run file format on disk is
    /// exactly these bytes behind a small frame header).
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// A cursor over the records of the page.
    #[inline]
    pub fn reader(&self) -> PageReader<'_> {
        PageReader {
            bytes: &self.buf,
            offset: 0,
            remaining: self.records,
        }
    }

    /// The view of the record whose length frame starts at `offset` — the
    /// resolution primitive behind [`PageHandle`]s.  Offsets come from
    /// [`PageReader::next_offset`] at scan time; anything else is corrupt.
    #[inline]
    pub fn view_at(&self, offset: usize) -> RecordView<'_> {
        view_in(&self.buf, offset)
    }

    /// Wraps already-framed page bytes (the run file on disk stores exactly
    /// this representation behind a checksummed header, so reviving a spilled
    /// page is a read plus this constructor — no per-record work).
    #[inline]
    pub(crate) fn from_raw(buf: Vec<u8>, records: usize) -> RecordPage {
        RecordPage { buf, records }
    }
}

/// Reads the framed record starting at `offset` out of `bytes` as a view.
#[inline]
fn view_in(bytes: &[u8], offset: usize) -> RecordView<'_> {
    let mut offset = offset;
    let len = u32::from_le_bytes(read_array(bytes, &mut offset)) as usize;
    RecordView {
        payload: &bytes[offset..offset + len],
    }
}

/// Serializes records into a sequence of sealed [`RecordPage`]s.
///
/// The writer keeps one open page; pushing a record that would not fit seals
/// the open page and starts a new one.  A record wider than the page capacity
/// gets a private oversized page, so arbitrarily large records round-trip.
///
/// # Capacity invariant
///
/// Every sealed page holds at most `page_bytes` bytes, with exactly one
/// exception: a record wider than the capacity seals **alone** into a
/// private page, immediately — it never shares a page, so the records around
/// it frame exactly as if it had fit.  [`PageWriter::seal`] asserts this
/// invariant instead of letting an over-full mixed page slip through
/// silently (which would break the fixed-buffer assumption of anything
/// staging pages, e.g. the spill path reviving them through one reused
/// buffer).
#[derive(Debug)]
pub struct PageWriter {
    page_bytes: usize,
    sealed: Vec<Arc<RecordPage>>,
    /// Serialized bytes across the sealed (not yet taken) pages — what a
    /// memory budget meters; the open page is the working buffer and is
    /// never counted.
    sealed_bytes: usize,
    buf: Vec<u8>,
    records: usize,
    total_records: usize,
    total_bytes: usize,
    /// Recycled page buffers (capacity retained, contents cleared) handed to
    /// the writer by a [`PagePool`]; [`PageWriter::seal`] reuses one instead
    /// of allocating a fresh buffer, so a steady-state superstep whose
    /// consumed pages are recycled into its outboxes allocates no new pages.
    spare: Vec<Vec<u8>>,
}

impl Default for PageWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PageWriter {
    /// A writer producing pages of [`DEFAULT_PAGE_BYTES`] capacity.
    pub fn new() -> Self {
        Self::with_page_bytes(DEFAULT_PAGE_BYTES)
    }

    /// A writer producing pages of the given capacity (useful in tests to
    /// force records to straddle page boundaries).
    pub fn with_page_bytes(page_bytes: usize) -> Self {
        PageWriter {
            page_bytes: page_bytes.max(RECORD_FRAME_BYTES + 1),
            sealed: Vec::new(),
            sealed_bytes: 0,
            buf: Vec::new(),
            records: 0,
            total_records: 0,
            total_bytes: 0,
            spare: Vec::new(),
        }
    }

    /// Hands the writer recycled page buffers to seal into instead of
    /// allocating fresh ones (see [`PagePool`]).  A writer that has not
    /// buffered anything yet claims one buffer as its open page immediately,
    /// so even the first page writes into recycled capacity.
    pub fn add_spare_buffers(&mut self, buffers: impl IntoIterator<Item = Vec<u8>>) {
        self.spare.extend(buffers.into_iter().map(|mut b| {
            b.clear();
            b
        }));
        if self.buf.capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.buf = buf;
            }
        }
    }

    /// Serializes one record into the open page, sealing first if it would
    /// overflow.  Returns the serialized width in bytes.
    pub fn push(&mut self, record: &Record) -> usize {
        // `estimated_bytes` is the exact serialized width of the binary
        // format, so the fit check never needs a rollback.
        let width = record.estimated_bytes();
        if !self.buf.is_empty() && self.buf.len() + width > self.page_bytes {
            self.seal();
        }
        serialize_record_with_width(record, width, &mut self.buf);
        self.records += 1;
        self.total_records += 1;
        self.total_bytes += width;
        if width > self.page_bytes {
            // An oversized record seals alone, immediately: its private page
            // is the one allowed breach of the capacity invariant, and
            // sealing it here guarantees no later record shares (and
            // corrupts the offsets of) the over-full buffer.
            self.seal();
        }
        width
    }

    /// Seals the open page (a no-op when it is empty).
    pub fn seal(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        debug_assert!(
            self.buf.len() <= self.page_bytes || self.records == 1,
            "capacity invariant violated: a {}-byte page with {} records exceeds \
             the {}-byte capacity (only single oversized records may)",
            self.buf.len(),
            self.records,
            self.page_bytes
        );
        let next = self.spare.pop().unwrap_or_default();
        let buf = std::mem::replace(&mut self.buf, next);
        let records = std::mem::replace(&mut self.records, 0);
        self.sealed_bytes += buf.len();
        self.sealed.push(Arc::new(RecordPage { buf, records }));
    }

    /// Serialized bytes across the sealed pages still held by the writer
    /// (the quantity a [`crate::spill::MemoryBudget`] meters).
    #[inline]
    pub fn sealed_bytes(&self) -> usize {
        self.sealed_bytes
    }

    /// Number of sealed pages still held by the writer (the quantity a
    /// page-credit cap meters; see `crate::spill::SpillManager`).
    #[inline]
    pub fn sealed_page_count(&self) -> usize {
        self.sealed.len()
    }

    /// Takes the sealed pages out of the writer (the open page stays),
    /// resetting the sealed-byte gauge — the spill path moves these to disk.
    pub fn take_sealed(&mut self) -> Vec<Arc<RecordPage>> {
        self.sealed_bytes = 0;
        std::mem::take(&mut self.sealed)
    }

    /// Records written so far (sealed and open pages).
    #[inline]
    pub fn total_records(&self) -> usize {
        self.total_records
    }

    /// Serialized bytes written so far (sealed and open pages).
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Seals the open page and returns all pages.
    pub fn finish(mut self) -> Vec<Arc<RecordPage>> {
        self.seal();
        self.sealed
    }
}

/// A cursor over the records of one page, yielding lazy [`RecordView`]s.
#[derive(Debug, Clone)]
pub struct PageReader<'a> {
    bytes: &'a [u8],
    offset: usize,
    remaining: usize,
}

impl<'a> PageReader<'a> {
    /// Records not yet read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Byte offset of the next record's length frame — recorded *before*
    /// calling [`Iterator::next`], this is the record's stable address inside
    /// the page (see [`RecordPage::view_at`] and [`PageHandle`]).
    #[inline]
    pub fn next_offset(&self) -> usize {
        self.offset
    }
}

impl<'a> Iterator for PageReader<'a> {
    type Item = RecordView<'a>;

    fn next(&mut self) -> Option<RecordView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let len = u32::from_le_bytes(read_array(self.bytes, &mut self.offset)) as usize;
        let end = self.offset + len;
        let payload = &self.bytes[self.offset..end];
        self.offset = end;
        Some(RecordView { payload })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PageReader<'_> {}

/// A borrowed view of one serialized record inside a page.
///
/// Fields can be materialized ([`RecordView::materialize`] /
/// [`RecordView::read_into`]) or read in place without allocating
/// ([`RecordView::long`], [`RecordView::normalized_long_prefix`]).
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    payload: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Serialized payload width in bytes (without the length prefix).
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// The raw serialized payload (field encodings without the length
    /// frame).  Copying this into another page reproduces the record exactly
    /// — the page-to-page forwarding primitive that never deserializes.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Serialized width including the length frame (what appending this view
    /// to a [`PagedRecords`] store or page costs in bytes).
    #[inline]
    pub fn framed_len(&self) -> usize {
        RECORD_FRAME_BYTES + self.payload.len()
    }

    /// Deserializes the record into a fresh [`Record`].
    pub fn materialize(&self) -> Record {
        let mut record = Record::empty();
        self.read_into(&mut record);
        record
    }

    /// Deserializes the record into `target`, reusing its field buffer (the
    /// receive-side scratch-record pattern: iterating a page this way
    /// allocates nothing for fixed-width fields once the buffer has warmed
    /// up).
    pub fn read_into(&self, target: &mut Record) {
        target.clear();
        let mut offset = 0;
        while offset < self.payload.len() {
            target.push(deserialize_value(self.payload, &mut offset));
        }
    }

    /// Reads the `i64` stored in field `idx` straight from the page bytes,
    /// panicking if the field is missing or not a `Long` (the same contract
    /// as [`Record::long`]).
    pub fn long(&self, idx: usize) -> i64 {
        let mut offset = 0;
        let mut field = 0;
        while offset < self.payload.len() {
            if field == idx {
                assert_eq!(
                    self.payload[offset], TAG_LONG,
                    "expected Long value in page field {idx}"
                );
                offset += 1;
                return denormalize_long(read_array(self.payload, &mut offset));
            }
            skip_value(self.payload, &mut offset);
            field += 1;
        }
        panic!("page record has no field {idx}");
    }

    /// The 8-byte normalized (order-preserving) encoding of the first field
    /// if it is a `Long` — the binary sort key of the record.  `None` when
    /// the record is empty or its first field has another type.
    pub fn normalized_long_prefix(&self) -> Option<[u8; 8]> {
        if self.payload.first() != Some(&TAG_LONG) {
            return None;
        }
        let mut offset = 1;
        Some(read_array(self.payload, &mut offset))
    }

    /// The normalized `Long` encoding of field `idx` as a `u64` whose
    /// unsigned order equals the `i64` order — the page-native join/group
    /// key.  Because [`normalize_long`] is a bijection and
    /// [`Value`] equality on `Long`s is numeric, two records match on this
    /// `u64` **iff** their key fields are equal values: for a single-`Long`
    /// key the prefix *is* the full key, no collision fallback needed.
    /// `None` when the field is missing or not a `Long` (callers fall back
    /// to the materializing path).
    pub fn long_key_prefix(&self, idx: usize) -> Option<u64> {
        let offset = self.field_offset(idx)?;
        if self.payload[offset] != TAG_LONG {
            return None;
        }
        let mut offset = offset + 1;
        Some(u64::from_be_bytes(read_array(self.payload, &mut offset)))
    }

    /// The serialized encoding (tag byte plus payload) of field `idx`, or
    /// `None` when the record has fewer fields.  Byte equality of these
    /// slices is exactly [`Value`] equality: every encoding is a bijection
    /// on the bit patterns `Value`'s `PartialEq` compares (`Double` equality
    /// is bitwise), so a full-key check on prefix collision is a `memcmp`.
    pub fn field_bytes(&self, idx: usize) -> Option<&'a [u8]> {
        let start = self.field_offset(idx)?;
        let mut end = start;
        skip_value(self.payload, &mut end);
        Some(&self.payload[start..end])
    }

    /// Byte offset of field `idx` inside the payload.
    fn field_offset(&self, idx: usize) -> Option<usize> {
        let mut offset = 0;
        for _ in 0..idx {
            if offset >= self.payload.len() {
                return None;
            }
            skip_value(self.payload, &mut offset);
        }
        (offset < self.payload.len()).then_some(offset)
    }
}

/// Advances `offset` past the field starting there.
fn skip_value(bytes: &[u8], offset: &mut usize) {
    let tag = bytes[*offset];
    *offset += 1;
    *offset += match tag {
        TAG_NULL => 0,
        TAG_BOOL => 1,
        TAG_LONG | TAG_DOUBLE => 8,
        TAG_TEXT => u32::from_le_bytes(read_array(bytes, offset)) as usize,
        other => panic!("corrupt page: unknown value tag {other}"),
    };
}

// ---------------------------------------------------------------------------
// Paged record stores: handles instead of heap records
// ---------------------------------------------------------------------------

/// The address of one serialized record inside a [`PagedRecords`] store: the
/// page index and the byte offset of the record's length frame.  Handles are
/// 8 bytes, `Copy`, and totally ordered by insertion position — sorting
/// `(key, handle)` pairs with an unstable sort therefore reproduces a stable
/// sort of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageHandle {
    page: u32,
    offset: u32,
}

/// An append-only store of serialized records addressed by [`PageHandle`]s —
/// the backing of page-native operators.  Sealed pages received from an
/// exchange are **adopted** by pointer (no copy, no deserialization); records
/// that exist only as heap objects (a partition's local residue) are
/// serialized once on append.  Records are read back as [`RecordView`]s and
/// materialized only at user-function boundaries.
#[derive(Debug, Clone, Default)]
pub struct PagedRecords {
    page_bytes: usize,
    pages: Vec<Arc<RecordPage>>,
    /// The open (still mutable) page; handles into it carry page index
    /// `pages.len()`, which stays correct when it seals.
    buf: Vec<u8>,
    buf_records: usize,
    spare: Vec<Vec<u8>>,
    count: usize,
    byte_len: usize,
}

impl PagedRecords {
    /// An empty store producing [`DEFAULT_PAGE_BYTES`] pages.
    pub fn new() -> PagedRecords {
        PagedRecords::with_page_bytes(DEFAULT_PAGE_BYTES)
    }

    /// An empty store with an explicit page capacity (tests force record
    /// runs to straddle page boundaries).
    pub fn with_page_bytes(page_bytes: usize) -> PagedRecords {
        PagedRecords {
            page_bytes: page_bytes.max(RECORD_FRAME_BYTES + 1),
            ..PagedRecords::default()
        }
    }

    /// Number of records in the store.
    #[inline]
    pub fn record_count(&self) -> usize {
        self.count
    }

    /// True when nothing has been adopted or appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Serialized bytes held (frames included).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.byte_len
    }

    /// Hands the store recycled page buffers (see [`PagePool`]) so sealing
    /// the open page reuses capacity instead of allocating.  A store that has
    /// not buffered anything yet claims one buffer as its open page
    /// immediately, so even the first page writes into recycled capacity.
    pub fn add_spare_buffers(&mut self, buffers: impl IntoIterator<Item = Vec<u8>>) {
        self.spare.extend(buffers.into_iter().map(|mut b| {
            b.clear();
            b
        }));
        if self.buf.capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.buf = buf;
            }
        }
    }

    /// Adopts a sealed page by pointer — the zero-copy ingest of everything
    /// an exchange delivered serialized.  Seals the open page first so
    /// previously returned handles keep addressing it.
    pub fn adopt_page(&mut self, page: Arc<RecordPage>) {
        if page.is_empty() {
            return;
        }
        self.seal_open();
        self.count += page.record_count();
        self.byte_len += page.byte_len();
        self.pages.push(page);
    }

    /// Adopts a sealed page and visits each of its records with the handle
    /// it is now addressable by — the ingest loop of page-native operator
    /// builds.  `f` returns whether to keep scanning; an aborted scan (a
    /// record that disqualifies the page-native path, e.g. a non-`Long` key
    /// field) still completes the adoption and returns `false`, and the
    /// caller discards the store.
    pub fn adopt_page_scanned(
        &mut self,
        page: &Arc<RecordPage>,
        mut f: impl FnMut(PageHandle, RecordView<'_>) -> bool,
    ) -> bool {
        if page.is_empty() {
            return true;
        }
        self.seal_open();
        let idx = self.pages.len() as u32;
        self.count += page.record_count();
        self.byte_len += page.byte_len();
        self.pages.push(Arc::clone(page));
        let mut reader = page.reader();
        loop {
            let offset = reader.next_offset() as u32;
            let Some(view) = reader.next() else {
                return true;
            };
            if !f(PageHandle { page: idx, offset }, view) {
                return false;
            }
        }
    }

    /// Serializes one heap record into the open page and returns its handle.
    pub fn append(&mut self, record: &Record) -> PageHandle {
        let width = record.estimated_bytes();
        let handle = self.start_frame(width);
        serialize_record_with_width(record, width, &mut self.buf);
        self.finish_frame(width);
        handle
    }

    /// Copies one already-serialized record (a [`RecordView`] payload,
    /// possibly from another store or page) and returns its handle — the
    /// page-to-page forward that never deserializes.
    pub fn append_serialized(&mut self, payload: &[u8]) -> PageHandle {
        let width = RECORD_FRAME_BYTES + payload.len();
        let handle = self.start_frame(width);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.finish_frame(width);
        handle
    }

    /// Seals the open page (if it would overflow) and returns the handle the
    /// next `width`-byte record will live at.
    fn start_frame(&mut self, width: usize) -> PageHandle {
        if !self.buf.is_empty() && self.buf.len() + width > self.page_bytes {
            self.seal_open();
        }
        PageHandle {
            page: self.pages.len() as u32,
            offset: self.buf.len() as u32,
        }
    }

    fn finish_frame(&mut self, width: usize) {
        self.buf_records += 1;
        self.count += 1;
        self.byte_len += width;
        if width > self.page_bytes {
            // Same invariant as `PageWriter`: an oversized record seals
            // alone into a private page.
            self.seal_open();
        }
    }

    fn seal_open(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        debug_assert!(
            self.buf.len() <= self.page_bytes || self.buf_records == 1,
            "capacity invariant violated in PagedRecords"
        );
        let next = self.spare.pop().unwrap_or_default();
        let buf = std::mem::replace(&mut self.buf, next);
        let records = std::mem::replace(&mut self.buf_records, 0);
        self.pages.push(Arc::new(RecordPage { buf, records }));
    }

    /// The view of the record at `handle`.
    #[inline]
    pub fn view(&self, handle: PageHandle) -> RecordView<'_> {
        let page = handle.page as usize;
        if page == self.pages.len() {
            view_in(&self.buf, handle.offset as usize)
        } else {
            self.pages[page].view_at(handle.offset as usize)
        }
    }

    /// Visits every record in insertion order with its handle.
    pub fn for_each_handle(&self, mut f: impl FnMut(PageHandle, RecordView<'_>)) {
        for (idx, page) in self.pages.iter().enumerate() {
            let mut reader = page.reader();
            loop {
                let offset = reader.next_offset();
                let Some(view) = reader.next() else { break };
                f(
                    PageHandle {
                        page: idx as u32,
                        offset: offset as u32,
                    },
                    view,
                );
            }
        }
        let mut offset = 0;
        for _ in 0..self.buf_records {
            let view = view_in(&self.buf, offset);
            f(
                PageHandle {
                    page: self.pages.len() as u32,
                    offset: offset as u32,
                },
                view,
            );
            offset += view.framed_len();
        }
    }

    /// Seals the open page and returns all pages (spilling, recycling).
    pub fn into_pages(mut self) -> Vec<Arc<RecordPage>> {
        self.seal_open();
        self.pages
    }
}

/// A hash table from an 8-byte normalized key prefix to the chain of
/// [`PageHandle`]s inserted under it, preserving insertion order per key —
/// the page-native join/group build structure.  Entries live in one arena
/// vector, so inserting `n` records costs `O(log n)` amortized allocations
/// (vector doublings), not `n`; [`PrefixTable::clear`] retains capacity so a
/// steady-state superstep reusing a table allocates nothing.
///
/// For a single-`Long` key the prefix is the **complete** key (the
/// normalized encoding is a bijection and byte equality is `Value`
/// equality), so probes need no collision fallback; composite keys byte-
/// compare the remaining key fields via [`RecordView::field_bytes`].
#[derive(Debug, Default)]
pub struct PrefixTable {
    /// Per prefix: index of the first and last entry of its chain.
    heads: crate::key::FxHashMap<u64, (u32, u32)>,
    /// `(handle, next)` arena; `u32::MAX` terminates a chain.
    entries: Vec<(PageHandle, u32)>,
}

const CHAIN_END: u32 = u32::MAX;

impl PrefixTable {
    /// An empty table.
    pub fn new() -> PrefixTable {
        PrefixTable::default()
    }

    /// Number of inserted records.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct prefixes.
    #[inline]
    pub fn distinct_keys(&self) -> usize {
        self.heads.len()
    }

    /// Forgets all entries but keeps the allocated capacity.
    pub fn clear(&mut self) {
        self.heads.clear();
        self.entries.clear();
    }

    /// Appends `handle` under `prefix`, after everything inserted under the
    /// same prefix before it.
    pub fn insert(&mut self, prefix: u64, handle: PageHandle) {
        let entry = self.entries.len() as u32;
        self.entries.push((handle, CHAIN_END));
        match self.heads.entry(prefix) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let (_, tail) = *slot.get();
                self.entries[tail as usize].1 = entry;
                slot.get_mut().1 = entry;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((entry, entry));
            }
        }
    }

    /// The handles inserted under `prefix`, in insertion order.
    #[inline]
    pub fn probe(&self, prefix: u64) -> PrefixChain<'_> {
        PrefixChain {
            entries: &self.entries,
            next: self.heads.get(&prefix).map_or(CHAIN_END, |&(head, _)| head),
        }
    }

    /// Collects the distinct prefixes into `out` (cleared first) in
    /// ascending unsigned order — which **is** the key order, because the
    /// normalized encoding is order-preserving.
    pub fn sorted_prefixes(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.heads.keys().copied());
        out.sort_unstable();
    }
}

/// Iterator over one prefix chain (see [`PrefixTable::probe`]).
#[derive(Debug, Clone)]
pub struct PrefixChain<'a> {
    entries: &'a [(PageHandle, u32)],
    next: u32,
}

impl Iterator for PrefixChain<'_> {
    type Item = PageHandle;

    #[inline]
    fn next(&mut self) -> Option<PageHandle> {
        if self.next == CHAIN_END {
            return None;
        }
        let (handle, next) = self.entries[self.next as usize];
        self.next = next;
        Some(handle)
    }
}

/// Recycles the buffers of consumed pages into writers about to seal new
/// ones.  A page whose `Arc` has no other holders gives up its `Vec<u8>`
/// (capacity kept, contents cleared); feeding those buffers to the next
/// superstep's [`PageWriter`]s via [`PageWriter::add_spare_buffers`] makes
/// the steady state allocate no new pages — consumed exchange pages become
/// the next exchange's output pages.
#[derive(Debug)]
pub struct PagePool {
    free: Vec<Vec<u8>>,
    limit: usize,
}

impl Default for PagePool {
    fn default() -> Self {
        Self::new()
    }
}

impl PagePool {
    /// A pool retaining up to 1024 buffers (32 MiB of default-size pages).
    pub fn new() -> PagePool {
        PagePool::with_limit(1024)
    }

    /// A pool retaining at most `limit` buffers; beyond that, recycled pages
    /// are simply dropped.
    pub fn with_limit(limit: usize) -> PagePool {
        PagePool {
            free: Vec::new(),
            limit,
        }
    }

    /// Buffers currently pooled.
    #[inline]
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no buffer is pooled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Reclaims one page's buffer if this was the last pointer to it.
    /// Returns whether the buffer was captured.
    pub fn recycle(&mut self, page: Arc<RecordPage>) -> bool {
        if self.free.len() >= self.limit {
            return false;
        }
        match Arc::try_unwrap(page) {
            Ok(page) => {
                let mut buf = page.buf;
                buf.clear();
                self.free.push(buf);
                true
            }
            Err(_) => false,
        }
    }

    /// Reclaims every uniquely-owned page of an iterator, returning how many
    /// buffers were captured.
    pub fn recycle_all(&mut self, pages: impl IntoIterator<Item = Arc<RecordPage>>) -> usize {
        pages
            .into_iter()
            .fold(0, |n, page| n + usize::from(self.recycle(page)))
    }

    /// Takes up to `max` pooled buffers (newest first) to feed a writer.
    pub fn take(&mut self, max: usize) -> std::vec::Drain<'_, Vec<u8>> {
        let start = self.free.len().saturating_sub(max);
        self.free.drain(start..)
    }
}

// ---------------------------------------------------------------------------
// Exchanged partitions
// ---------------------------------------------------------------------------

/// The post-exchange input of one worker partition.
///
/// Records that were already in the right partition stay heap objects and are
/// moved (a local forward never serializes, exactly like a chained operator
/// in the real runtime); records from peer partitions arrive as sealed,
/// shared pages — or, when the exchange ran under a memory budget, as
/// [`SpilledRun`]s on disk.  Consumers either iterate everything by reference
/// with a reusable scratch record ([`ExchangedPartition::for_each_ref`]) or
/// take ownership ([`ExchangedPartition::into_records`] /
/// [`ExchangedPartition::for_each_owned`]).
///
/// # Sorted spilled partitions
///
/// A sorted partition ([`ExchangedPartition::sorted_by`] set) that holds
/// spilled runs keeps two invariants: the materialized records are sorted,
/// every run is individually sorted by the same key, and no raw pages are
/// present.  The owning accessors then yield the **merged** global order (a
/// linear k-way merge, never a re-sort); [`ExchangedPartition::for_each_ref`]
/// streams the pieces without merging, so its visit order across pieces is
/// unspecified — order-sensitive consumers take ownership.
#[derive(Debug, Default)]
pub struct ExchangedPartition {
    local: Vec<Record>,
    pages: Vec<Arc<RecordPage>>,
    /// Runs spilled to disk by the exchange, in spill order (earlier records
    /// first).
    runs: Vec<SpilledRun>,
    /// Key fields the partition is sorted by, when the exchange delivered it
    /// sorted (range exchanges).  Receiving pages or runs clears it.
    sorted_by: Option<crate::key::KeyFields>,
}

impl ExchangedPartition {
    /// A partition holding only local (never serialized) records.
    pub fn from_records(local: Vec<Record>) -> Self {
        ExchangedPartition {
            local,
            ..ExchangedPartition::default()
        }
    }

    /// A partition of fully-materialized records already sorted by `key`
    /// (what a range exchange delivers): consumers with a matching sort
    /// requirement skip their local sort.
    pub fn from_sorted_records(local: Vec<Record>, key: crate::key::KeyFields) -> Self {
        ExchangedPartition {
            local,
            sorted_by: Some(key),
            ..ExchangedPartition::default()
        }
    }

    /// A partition built from local records plus received pages.
    pub fn new(local: Vec<Record>, pages: Vec<Arc<RecordPage>>) -> Self {
        ExchangedPartition {
            local,
            pages,
            ..ExchangedPartition::default()
        }
    }

    /// A partition served entirely from spilled runs (a budget-spilled cached
    /// edge).  When `sorted_by` is set, every run must be sorted by that key.
    pub fn from_spilled(runs: Vec<SpilledRun>, sorted_by: Option<crate::key::KeyFields>) -> Self {
        if let Some(key) = &sorted_by {
            debug_assert!(runs.iter().all(|r| r.sorted_by() == Some(&key[..])));
        }
        ExchangedPartition {
            runs,
            sorted_by,
            ..ExchangedPartition::default()
        }
    }

    /// A sorted partition whose overflow lives on disk: `local` is sorted by
    /// `key`, each run is individually sorted by `key`, and the owning
    /// accessors merge them into the global order (what a budgeted range
    /// exchange delivers).
    pub fn from_sorted_spilled(
        local: Vec<Record>,
        runs: Vec<SpilledRun>,
        key: crate::key::KeyFields,
    ) -> Self {
        debug_assert!(runs.iter().all(|r| r.sorted_by() == Some(&key[..])));
        ExchangedPartition {
            local,
            runs,
            sorted_by: Some(key),
            ..ExchangedPartition::default()
        }
    }

    /// The key fields this partition is sorted by, if the exchange delivered
    /// it sorted.
    pub fn sorted_by(&self) -> Option<&[usize]> {
        self.sorted_by.as_deref()
    }

    /// Appends sealed pages received from a peer partition (pointer moves).
    /// Pages arrive in peer order, so any previously recorded sort order no
    /// longer holds and is cleared.
    pub fn receive_pages(&mut self, pages: impl IntoIterator<Item = Arc<RecordPage>>) {
        let before = self.pages.len();
        self.pages.extend(pages);
        if self.pages.len() > before {
            self.sorted_by = None;
        }
    }

    /// Appends spilled runs received from a peer partition (handle moves —
    /// the bytes stay on disk).  Like received pages, received runs void any
    /// previously recorded partition-wide order.
    pub fn receive_runs(&mut self, runs: impl IntoIterator<Item = SpilledRun>) {
        let before = self.runs.len();
        self.runs.extend(runs);
        if self.runs.len() > before {
            self.sorted_by = None;
        }
    }

    /// Total records (local, paged and spilled).
    pub fn record_count(&self) -> usize {
        self.local.len()
            + self.pages.iter().map(|p| p.record_count()).sum::<usize>()
            + self.runs.iter().map(|r| r.record_count()).sum::<usize>()
    }

    /// True if the partition received nothing.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
            && self.pages.iter().all(|p| p.is_empty())
            && self.runs.iter().all(|r| r.record_count() == 0)
    }

    /// Number of sealed pages received from peers.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of spilled runs backing this partition.
    pub fn spilled_run_count(&self) -> usize {
        self.runs.len()
    }

    /// True when every spilled run is individually sorted by `key` — even if
    /// the partition as a whole is not (a hash exchange delivers unordered
    /// partitions whose runs were still sorted on flush).  Sort-based
    /// consumers use this to merge the runs with a sorted in-memory residue
    /// instead of rematerializing and re-sorting everything.
    pub fn spilled_runs_sorted_by(&self, key: &[usize]) -> bool {
        self.runs.iter().all(|run| run.sorted_by() == Some(key))
    }

    /// True when the owning accessors must merge sorted pieces.
    fn is_sorted_merge(&self) -> bool {
        self.sorted_by.is_some() && !self.runs.is_empty()
    }

    /// The streaming k-way merge over this sorted partition's pieces (the
    /// spilled runs plus the in-memory sorted records), yielding the global
    /// key order one record at a time.  Fails with the underlying I/O error
    /// when a spilled run cannot be opened.
    ///
    /// # Panics
    /// If the partition is not sorted, or holds raw pages (sorted spilled
    /// partitions never do, by construction).
    pub fn into_merger(self) -> std::io::Result<RunMerger> {
        let key = self
            .sorted_by
            .clone()
            .expect("into_merger requires a sorted partition");
        assert!(
            self.pages.is_empty(),
            "sorted spilled partitions never hold raw pages"
        );
        RunMerger::over_runs(&self.runs, self.local, key)
    }

    /// The records that never left this partition (heap objects).
    pub fn local_records(&self) -> &[Record] {
        &self.local
    }

    /// The sealed pages received from peer partitions.
    pub fn pages(&self) -> &[Arc<RecordPage>] {
        &self.pages
    }

    /// The spilled runs backing this partition.
    pub fn runs(&self) -> &[SpilledRun] {
        &self.runs
    }

    /// Decomposes the partition into its pieces:
    /// `(local records, pages, runs, sorted-by)`.
    pub fn into_pieces(
        self,
    ) -> (
        Vec<Record>,
        Vec<Arc<RecordPage>>,
        Vec<SpilledRun>,
        Option<crate::key::KeyFields>,
    ) {
        (self.local, self.pages, self.runs, self.sorted_by)
    }

    /// Visits every record in the cheapest representation it already has:
    /// local records as `&Record`, page records as in-place [`RecordView`]s
    /// (nothing is deserialized), spilled-run records as `&Record` through
    /// one reused scratch.  This is the page-native receive scan — fields of
    /// shipped records are read straight out of the page bytes.  Visit order
    /// across the pieces is unspecified, like [`ExchangedPartition::for_each_ref`].
    /// Fails with the underlying I/O error when a spilled run cannot be read.
    pub fn for_each_piece(
        &self,
        mut on_record: impl FnMut(&Record),
        mut on_view: impl FnMut(RecordView<'_>),
    ) -> std::io::Result<()> {
        for record in &self.local {
            on_record(record);
        }
        for page in &self.pages {
            for view in page.reader() {
                on_view(view);
            }
        }
        let mut scratch = Record::empty();
        for run in &self.runs {
            let mut cursor = run.cursor()?;
            while cursor.next_into(&mut scratch)? {
                on_record(&scratch);
            }
        }
        Ok(())
    }

    /// Calls `f` for every record: local records by reference, page and run
    /// records through one scratch record that is reused across calls (no
    /// per-record allocation for fixed-width fields).  The visit order
    /// across the pieces is unspecified; order-sensitive consumers use the
    /// owning accessors, which merge sorted spilled partitions.  Fails with
    /// the underlying I/O error when a spilled run cannot be read.
    pub fn for_each_ref(&self, mut f: impl FnMut(&Record)) -> std::io::Result<()> {
        for record in &self.local {
            f(record);
        }
        let mut scratch = Record::empty();
        for page in &self.pages {
            for view in page.reader() {
                view.read_into(&mut scratch);
                f(&scratch);
            }
        }
        for run in &self.runs {
            let mut cursor = run.cursor()?;
            while cursor.next_into(&mut scratch)? {
                f(&scratch);
            }
        }
        Ok(())
    }

    /// Calls `f` with every record owned: local records are moved out, page
    /// and run records are materialized.  Sorted spilled partitions are
    /// visited in merged (global key) order.  Fails with the underlying I/O
    /// error when a spilled run cannot be read.
    pub fn for_each_owned(self, mut f: impl FnMut(Record)) -> std::io::Result<()> {
        if self.is_sorted_merge() {
            let mut merger = self.into_merger()?;
            while let Some(record) = merger.next_record()? {
                f(record);
            }
            return Ok(());
        }
        for record in self.local {
            f(record);
        }
        for page in &self.pages {
            for view in page.reader() {
                f(view.materialize());
            }
        }
        for run in &self.runs {
            let mut cursor = run.cursor()?;
            while let Some(record) = cursor.next_record()? {
                f(record);
            }
        }
        Ok(())
    }

    /// Materializes the whole partition into owned records (local records
    /// moved, page and run records deserialized).  Sorted spilled partitions
    /// materialize in merged order — a linear merge of the sorted pieces,
    /// never an in-memory re-sort.  Fails with the underlying I/O error when
    /// a spilled run cannot be read.
    pub fn into_records(self) -> std::io::Result<Vec<Record>> {
        let mut records = Vec::with_capacity(self.record_count());
        self.for_each_owned(|record| records.push(record))?;
        Ok(records)
    }

    /// Splits the partition into its in-memory records (local moved, pages
    /// materialized, in arrival order) and its spilled runs — the shape the
    /// range exchange sorts: memory gets the memcmp sort, runs are already
    /// sorted on disk.
    pub fn into_mem_and_runs(self) -> (Vec<Record>, Vec<SpilledRun>) {
        let mut records = self.local;
        records.reserve(self.pages.iter().map(|p| p.record_count()).sum());
        for page in &self.pages {
            for view in page.reader() {
                records.push(view.materialize());
            }
        }
        (records, self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::pair(1, -1),
            Record::new(vec![
                Value::Null,
                Value::Bool(true),
                Value::Long(i64::MIN),
                Value::Double(-0.0),
                Value::Text("héllo 日本語 🦀".into()),
            ]),
            Record::empty(),
            Record::long_double(i64::MAX, f64::NAN),
            Record::new(vec![Value::Text(String::new())]),
        ]
    }

    #[test]
    fn round_trip_preserves_every_variant() {
        let records = sample_records();
        let mut writer = PageWriter::new();
        for r in &records {
            writer.push(r);
        }
        let pages = writer.finish();
        let read: Vec<Record> = pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        assert_eq!(read, records);
    }

    #[test]
    fn serialized_width_equals_estimated_bytes() {
        for r in sample_records() {
            let mut buf = Vec::new();
            serialize_record(&r, &mut buf);
            assert_eq!(buf.len(), r.estimated_bytes(), "width mismatch for {r}");
        }
    }

    #[test]
    fn tiny_pages_straddle_boundaries() {
        let records: Vec<Record> = (0..100).map(|i| Record::pair(i, i * 3)).collect();
        // 40 bytes per page: one 22-byte (long, long) record fits, two do not.
        let mut writer = PageWriter::with_page_bytes(40);
        for r in &records {
            writer.push(r);
        }
        let pages = writer.finish();
        assert_eq!(pages.len(), 100, "each page holds exactly one record");
        let read: Vec<Record> = pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        assert_eq!(read, records);
    }

    #[test]
    fn oversized_records_get_a_private_page() {
        let big = Record::new(vec![Value::Text("x".repeat(1000))]);
        let mut writer = PageWriter::with_page_bytes(64);
        writer.push(&Record::pair(1, 2));
        writer.push(&big);
        writer.push(&Record::pair(3, 4));
        let pages = writer.finish();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[1].record_count(), 1);
        assert!(pages[1].byte_len() > 64);
        assert_eq!(pages[1].reader().next().unwrap().materialize(), big);
    }

    #[test]
    fn oversized_record_never_corrupts_following_offsets() {
        // The capacity invariant: an oversized record seals alone into its
        // private page the moment it is written, so the small records around
        // it frame on clean page boundaries and every reader offset stays
        // exact.  (Before the invariant was asserted, an over-full open page
        // could in principle have accepted more records silently.)
        for page_bytes in [32usize, 64, 200] {
            let mut records = vec![Record::pair(1, 2)];
            records.push(Record::new(vec![Value::Text("y".repeat(3 * page_bytes))]));
            records.extend((0..50).map(|i| Record::pair(i, -i)));
            records.push(Record::new(vec![Value::Text("z".repeat(2 * page_bytes))]));
            records.extend((50..80).map(|i| Record::pair(i, -i)));
            let mut writer = PageWriter::with_page_bytes(page_bytes);
            for r in &records {
                writer.push(r);
            }
            let pages = writer.finish();
            for page in &pages {
                assert!(
                    page.byte_len() <= page_bytes || page.record_count() == 1,
                    "an over-capacity page must be a private oversized page \
                     ({} bytes, {} records, capacity {page_bytes})",
                    page.byte_len(),
                    page.record_count()
                );
            }
            let read: Vec<Record> = pages
                .iter()
                .flat_map(|p| p.reader().map(|v| v.materialize()))
                .collect();
            assert_eq!(read, records, "offsets corrupted at capacity {page_bytes}");
        }
    }

    #[test]
    fn take_sealed_resets_the_budget_gauge() {
        let mut writer = PageWriter::with_page_bytes(40);
        for i in 0..10 {
            writer.push(&Record::pair(i, i));
        }
        assert!(writer.sealed_bytes() > 0, "tiny pages sealed under writing");
        let sealed = writer.take_sealed();
        assert!(!sealed.is_empty());
        assert_eq!(writer.sealed_bytes(), 0);
        // The open page survives the take and seals at finish.
        let rest = writer.finish();
        let total: usize = sealed
            .iter()
            .chain(rest.iter())
            .map(|p| p.record_count())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn normalized_long_encoding_preserves_order() {
        let samples = [i64::MIN, -1_000_000, -1, 0, 1, 7, 1_000_000, i64::MAX];
        for &a in &samples {
            assert_eq!(denormalize_long(normalize_long(a)), a);
            for &b in &samples {
                assert_eq!(
                    normalize_long(a).cmp(&normalize_long(b)),
                    a.cmp(&b),
                    "normalized order diverged for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn normalized_double_encoding_matches_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.25,
            f64::INFINITY,
            f64::NAN,
        ];
        for &a in &samples {
            assert_eq!(
                denormalize_double(normalize_double(a)).to_bits(),
                a.to_bits()
            );
            for &b in &samples {
                assert_eq!(
                    normalize_double(a).cmp(&normalize_double(b)),
                    a.total_cmp(&b),
                    "normalized order diverged for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn record_view_reads_fields_in_place() {
        let mut writer = PageWriter::new();
        writer.push(&Record::triple(-42, 7, 0.5));
        let pages = writer.finish();
        let page = &pages[0];
        let view = page.reader().next().unwrap();
        assert_eq!(view.long(0), -42);
        assert_eq!(view.long(1), 7);
        assert_eq!(
            view.normalized_long_prefix(),
            Some(normalize_long(-42)),
            "first long field doubles as the normalized sort key"
        );
        // Byte-compare of prefixes orders records without deserializing.
        let mut w2 = PageWriter::new();
        w2.push(&Record::pair(5, 0));
        let p2 = w2.finish();
        let v2 = p2[0].reader().next().unwrap();
        assert!(view.normalized_long_prefix() < v2.normalized_long_prefix());
    }

    #[test]
    fn exchanged_partition_mixes_local_and_paged_records() {
        let mut writer = PageWriter::new();
        writer.push(&Record::pair(10, 11));
        writer.push(&Record::pair(12, 13));
        let part = ExchangedPartition::new(vec![Record::pair(1, 2)], writer.finish());
        assert_eq!(part.record_count(), 3);
        assert_eq!(part.page_count(), 1);
        let mut seen = Vec::new();
        part.for_each_ref(|r| seen.push(r.clone())).unwrap();
        assert_eq!(
            seen,
            vec![
                Record::pair(1, 2),
                Record::pair(10, 11),
                Record::pair(12, 13)
            ]
        );
        assert_eq!(part.into_records().unwrap(), seen);
    }

    #[test]
    fn sorted_partitions_advertise_and_invalidate_their_order() {
        let records = vec![Record::pair(1, 0), Record::pair(2, 0)];
        let mut part = ExchangedPartition::from_sorted_records(records, vec![0]);
        assert_eq!(part.sorted_by(), Some(&[0usize][..]));
        // Receiving nothing keeps the order; receiving a page clears it.
        part.receive_pages(Vec::new());
        assert_eq!(part.sorted_by(), Some(&[0usize][..]));
        let mut writer = PageWriter::new();
        writer.push(&Record::pair(0, 0));
        part.receive_pages(writer.finish());
        assert_eq!(part.sorted_by(), None);
        assert!(ExchangedPartition::from_records(vec![])
            .sorted_by()
            .is_none());
    }

    #[test]
    fn writer_counts_records_and_bytes() {
        let mut writer = PageWriter::new();
        assert!(writer.is_empty());
        let w = writer.push(&Record::pair(1, 2));
        assert_eq!(w, Record::pair(1, 2).estimated_bytes());
        writer.push(&Record::pair(3, 4));
        assert_eq!(writer.total_records(), 2);
        assert_eq!(writer.total_bytes(), 2 * w);
        let pages = writer.finish();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].record_count(), 2);
        assert_eq!(pages[0].byte_len(), 2 * w);
    }

    #[test]
    fn empty_writer_produces_no_pages() {
        assert!(PageWriter::new().finish().is_empty());
        let mut w = PageWriter::new();
        w.seal();
        assert!(w.finish().is_empty());
    }

    #[test]
    fn view_reads_arbitrary_key_fields_in_place() {
        let mut writer = PageWriter::new();
        writer.push(&Record::new(vec![
            Value::Text("pad".into()),
            Value::Long(-9),
            Value::Double(2.5),
        ]));
        let pages = writer.finish();
        let view = pages[0].reader().next().unwrap();
        assert_eq!(
            view.long_key_prefix(1),
            Some(u64::from_be_bytes(normalize_long(-9))),
            "prefix of a non-leading Long field"
        );
        assert_eq!(view.long_key_prefix(0), None, "Text field has no prefix");
        assert_eq!(view.long_key_prefix(2), None, "Double is not a Long key");
        assert_eq!(view.long_key_prefix(3), None, "missing field");
        // field_bytes equality is Value equality.
        let mut other = PageWriter::new();
        other.push(&Record::new(vec![Value::Long(3), Value::Long(-9)]));
        let p2 = other.finish();
        let v2 = p2[0].reader().next().unwrap();
        assert_eq!(view.field_bytes(1), v2.field_bytes(1));
        assert_ne!(view.field_bytes(1), v2.field_bytes(0));
    }

    #[test]
    fn paged_store_handles_survive_sealing_and_adoption() {
        let mut store = PagedRecords::with_page_bytes(48);
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for i in 0..10 {
            let r = Record::pair(i, -i);
            handles.push(store.append(&r));
            expected.push(r);
        }
        // Adopt a sealed page mid-stream: earlier handles stay valid.
        let mut writer = PageWriter::new();
        writer.push(&Record::pair(100, 200));
        for page in writer.finish() {
            store.adopt_page(page);
        }
        expected.push(Record::pair(100, 200));
        // Page-to-page copy of a serialized view.
        let view = store.view(handles[3]);
        let payload: Vec<u8> = view.payload().to_vec();
        let copied = store.append_serialized(&payload);
        expected.push(expected[3].clone());
        handles.push(copied);
        assert_eq!(store.record_count(), 12);
        for (h, r) in handles
            .iter()
            .zip(expected.iter().take(10).chain([&expected[11]]))
        {
            assert_eq!(&store.view(*h).materialize(), r);
        }
        // for_each_handle visits insertion order and agrees with view().
        let mut seen = Vec::new();
        store.for_each_handle(|h, v| {
            assert_eq!(store.view(h).payload(), v.payload());
            seen.push(v.materialize());
        });
        assert_eq!(seen, expected);
    }

    #[test]
    fn prefix_table_preserves_insertion_order_per_key() {
        let mut store = PagedRecords::new();
        let mut table = PrefixTable::new();
        for (key, val) in [(7, 0), (3, 1), (7, 2), (3, 3), (7, 4)] {
            let h = store.append(&Record::pair(key, val));
            let prefix = store.view(h).long_key_prefix(0).unwrap();
            table.insert(prefix, h);
        }
        assert_eq!(table.len(), 5);
        assert_eq!(table.distinct_keys(), 2);
        let prefix7 = u64::from_be_bytes(normalize_long(7));
        let vals: Vec<i64> = table
            .probe(prefix7)
            .map(|h| store.view(h).long(1))
            .collect();
        assert_eq!(vals, vec![0, 2, 4], "chain preserves insertion order");
        assert_eq!(
            table.probe(u64::from_be_bytes(normalize_long(99))).count(),
            0
        );
        // Sorted prefixes come back in key order.
        let mut prefixes = Vec::new();
        table.sorted_prefixes(&mut prefixes);
        let keys: Vec<i64> = prefixes
            .iter()
            .map(|p| denormalize_long(p.to_be_bytes()))
            .collect();
        assert_eq!(keys, vec![3, 7]);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.probe(prefix7).count(), 0);
    }

    #[test]
    fn page_pool_recycles_unique_buffers_into_writers() {
        let mut writer = PageWriter::with_page_bytes(64);
        for i in 0..20 {
            writer.push(&Record::pair(i, i));
        }
        let pages = writer.finish();
        let page_count = pages.len();
        let shared = Arc::clone(&pages[0]);
        let mut pool = PagePool::new();
        let captured = pool.recycle_all(pages);
        assert_eq!(
            captured,
            page_count - 1,
            "the still-shared page cannot be recycled"
        );
        assert_eq!(pool.len(), captured);
        drop(shared);
        let mut next = PageWriter::with_page_bytes(64);
        next.add_spare_buffers(pool.take(usize::MAX));
        assert!(pool.is_empty());
        for i in 0..20 {
            next.push(&Record::pair(i, -i));
        }
        let reread: Vec<Record> = next
            .finish()
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        assert_eq!(reread.len(), 20, "recycled buffers seal clean pages");
        assert_eq!(reread[3], Record::pair(3, -3));
    }
}
