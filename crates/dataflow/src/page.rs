//! Serialized record pages: the binary wire format of the engine.
//!
//! The Stratosphere runtime the paper builds on never routes heap objects
//! between workers: records travel as length-prefixed binary data inside
//! page-sized buffers, which is what makes repartitioning a `memcpy`, lets
//! sort and merge operate on normalized binary keys, and allows intermediate
//! results to spill to disk.  This module is that representation:
//!
//! * [`RecordPage`] — an immutable, sealed byte buffer holding a run of
//!   length-prefixed serialized records.  Sealed pages are shared and moved
//!   as pointers ([`std::sync::Arc`]); the bytes themselves are written once.
//! * [`PageWriter`] — serializes [`Record`]s into pages, sealing a page when
//!   the next record would overflow the page capacity.
//! * [`PageReader`] / [`RecordView`] — iterate the records of a sealed page
//!   lazily, either materializing owned [`Record`]s or reading individual
//!   fields straight out of the page bytes without allocating.
//! * [`ExchangedPartition`] — what one worker partition receives from an
//!   exchange: records that never left the partition (moved as heap objects,
//!   like a chained local forward) plus the sealed pages shipped from peer
//!   partitions.
//!
//! # Wire format
//!
//! Every record is framed as a little-endian `u32` payload length followed by
//! the concatenated field encodings; each field is a type tag byte followed
//! by its payload:
//!
//! | tag | variant                  | payload                                    |
//! |-----|--------------------------|--------------------------------------------|
//! | 0   | [`Value::Null`]          | none                                       |
//! | 1   | [`Value::Bool`]          | 1 byte (0 or 1)                            |
//! | 2   | [`Value::Long`]          | 8 bytes, big-endian, sign bit flipped      |
//! | 3   | [`Value::Double`]        | 8 bytes, big-endian, total-order encoded   |
//! | 4   | [`Value::Text`]          | `u32` LE byte length + UTF-8 bytes         |
//!
//! The `Long` payload is a **normalized key**: flipping the sign bit and
//! storing big-endian makes an unsigned byte-wise comparison of the 8 bytes
//! agree with the numeric `i64` order, so a future sort/merge can compare
//! records by `memcmp` on the key prefix without deserializing
//! ([`RecordView::normalized_long_prefix`]).  `Double` payloads use the
//! standard total-order trick (negative values flip all bits, positive values
//! flip only the sign bit), matching [`f64::total_cmp`].
//!
//! [`Value::estimated_bytes`] and [`Record::estimated_bytes`] return the
//! *exact* serialized width of this format; the writer uses them to decide
//! whether a record fits into the open page before serializing it.

use crate::record::Record;
use crate::spill::{RunMerger, SpilledRun};
use crate::value::Value;
use std::sync::Arc;

/// Default capacity of one page in bytes (the 32 KiB buffer size used by the
/// Stratosphere/Flink runtimes this reproduces).
pub const DEFAULT_PAGE_BYTES: usize = 32 * 1024;

/// Number of bytes of the per-record length prefix.
pub const RECORD_FRAME_BYTES: usize = 4;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_LONG: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_TEXT: u8 = 4;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Encodes an `i64` as its order-preserving normalized form: big-endian with
/// the sign bit flipped, so unsigned byte-wise comparison equals numeric
/// comparison.
#[inline]
pub fn normalize_long(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Inverse of [`normalize_long`].
#[inline]
pub fn denormalize_long(bytes: [u8; 8]) -> i64 {
    (u64::from_be_bytes(bytes) ^ (1 << 63)) as i64
}

/// Encodes an `f64` so unsigned byte-wise comparison of the result equals
/// [`f64::total_cmp`] ordering.
#[inline]
fn normalize_double(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits >> 63 == 1 {
        !bits // negative: flip everything so more-negative sorts first
    } else {
        bits ^ (1 << 63) // positive: flip the sign bit above all negatives
    };
    flipped.to_be_bytes()
}

/// Inverse of [`normalize_double`].
#[inline]
fn denormalize_double(bytes: [u8; 8]) -> f64 {
    let flipped = u64::from_be_bytes(bytes);
    let bits = if flipped >> 63 == 0 {
        !flipped
    } else {
        flipped ^ (1 << 63)
    };
    f64::from_bits(bits)
}

#[inline]
fn serialize_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(v) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*v));
        }
        Value::Long(v) => {
            out.push(TAG_LONG);
            out.extend_from_slice(&normalize_long(*v));
        }
        Value::Double(v) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&normalize_double(*v));
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Serializes one record (length prefix plus field encodings) onto `out`.
/// The number of bytes appended is exactly [`Record::estimated_bytes`].
pub fn serialize_record(record: &Record, out: &mut Vec<u8>) {
    let width = record.estimated_bytes();
    out.reserve(width);
    let payload = (width - RECORD_FRAME_BYTES) as u32;
    out.extend_from_slice(&payload.to_le_bytes());
    let start = out.len();
    for value in record.fields() {
        serialize_value(value, out);
    }
    debug_assert_eq!(
        out.len() - start,
        payload as usize,
        "estimated_bytes must equal the serialized width"
    );
}

#[inline]
fn read_array<const N: usize>(bytes: &[u8], offset: &mut usize) -> [u8; N] {
    let end = *offset + N;
    let chunk: [u8; N] = bytes[*offset..end]
        .try_into()
        .expect("slice bounds checked by caller");
    *offset = end;
    chunk
}

/// Decodes the field at `offset`, advancing it past the field.
fn deserialize_value(bytes: &[u8], offset: &mut usize) -> Value {
    let tag = bytes[*offset];
    *offset += 1;
    match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            let v = bytes[*offset] != 0;
            *offset += 1;
            Value::Bool(v)
        }
        TAG_LONG => Value::Long(denormalize_long(read_array(bytes, offset))),
        TAG_DOUBLE => Value::Double(denormalize_double(read_array(bytes, offset))),
        TAG_TEXT => {
            let len = u32::from_le_bytes(read_array(bytes, offset)) as usize;
            let end = *offset + len;
            let s = std::str::from_utf8(&bytes[*offset..end])
                .expect("pages store valid UTF-8 text fields");
            *offset = end;
            Value::Text(s.to_owned())
        }
        other => panic!("corrupt page: unknown value tag {other}"),
    }
}

/// Reads one length-framed record starting at `offset` into `target`,
/// advancing the offset past it — the in-crate primitive behind
/// [`crate::spill::RunCursor`], which revives page bytes from disk without
/// constructing a [`RecordPage`].
pub(crate) fn read_framed_record(bytes: &[u8], offset: &mut usize, target: &mut Record) {
    let len = u32::from_le_bytes(read_array(bytes, offset)) as usize;
    let end = *offset + len;
    target.clear();
    while *offset < end {
        target.push(deserialize_value(bytes, offset));
    }
}

// ---------------------------------------------------------------------------
// Pages
// ---------------------------------------------------------------------------

/// An immutable, sealed buffer of length-prefixed serialized records.
///
/// Pages are produced by a [`PageWriter`], after which their bytes never
/// change; the exchange paths move or share them as `Arc<RecordPage>`
/// pointers, so routing a sealed page between partitions costs a pointer
/// copy regardless of how many records it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordPage {
    buf: Vec<u8>,
    records: usize,
}

impl RecordPage {
    /// Number of records in the page.
    #[inline]
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// True if the page holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of serialized bytes (frames included).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// The raw serialized bytes of the page (the run file format on disk is
    /// exactly these bytes behind a small frame header).
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// A cursor over the records of the page.
    #[inline]
    pub fn reader(&self) -> PageReader<'_> {
        PageReader {
            bytes: &self.buf,
            offset: 0,
            remaining: self.records,
        }
    }
}

/// Serializes records into a sequence of sealed [`RecordPage`]s.
///
/// The writer keeps one open page; pushing a record that would not fit seals
/// the open page and starts a new one.  A record wider than the page capacity
/// gets a private oversized page, so arbitrarily large records round-trip.
///
/// # Capacity invariant
///
/// Every sealed page holds at most `page_bytes` bytes, with exactly one
/// exception: a record wider than the capacity seals **alone** into a
/// private page, immediately — it never shares a page, so the records around
/// it frame exactly as if it had fit.  [`PageWriter::seal`] asserts this
/// invariant instead of letting an over-full mixed page slip through
/// silently (which would break the fixed-buffer assumption of anything
/// staging pages, e.g. the spill path reviving them through one reused
/// buffer).
#[derive(Debug)]
pub struct PageWriter {
    page_bytes: usize,
    sealed: Vec<Arc<RecordPage>>,
    /// Serialized bytes across the sealed (not yet taken) pages — what a
    /// memory budget meters; the open page is the working buffer and is
    /// never counted.
    sealed_bytes: usize,
    buf: Vec<u8>,
    records: usize,
    total_records: usize,
    total_bytes: usize,
}

impl Default for PageWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PageWriter {
    /// A writer producing pages of [`DEFAULT_PAGE_BYTES`] capacity.
    pub fn new() -> Self {
        Self::with_page_bytes(DEFAULT_PAGE_BYTES)
    }

    /// A writer producing pages of the given capacity (useful in tests to
    /// force records to straddle page boundaries).
    pub fn with_page_bytes(page_bytes: usize) -> Self {
        PageWriter {
            page_bytes: page_bytes.max(RECORD_FRAME_BYTES + 1),
            sealed: Vec::new(),
            sealed_bytes: 0,
            buf: Vec::new(),
            records: 0,
            total_records: 0,
            total_bytes: 0,
        }
    }

    /// Serializes one record into the open page, sealing first if it would
    /// overflow.  Returns the serialized width in bytes.
    pub fn push(&mut self, record: &Record) -> usize {
        // `estimated_bytes` is the exact serialized width of the binary
        // format, so the fit check never needs a rollback.
        let width = record.estimated_bytes();
        if !self.buf.is_empty() && self.buf.len() + width > self.page_bytes {
            self.seal();
        }
        serialize_record(record, &mut self.buf);
        self.records += 1;
        self.total_records += 1;
        self.total_bytes += width;
        if width > self.page_bytes {
            // An oversized record seals alone, immediately: its private page
            // is the one allowed breach of the capacity invariant, and
            // sealing it here guarantees no later record shares (and
            // corrupts the offsets of) the over-full buffer.
            self.seal();
        }
        width
    }

    /// Seals the open page (a no-op when it is empty).
    pub fn seal(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        debug_assert!(
            self.buf.len() <= self.page_bytes || self.records == 1,
            "capacity invariant violated: a {}-byte page with {} records exceeds \
             the {}-byte capacity (only single oversized records may)",
            self.buf.len(),
            self.records,
            self.page_bytes
        );
        let buf = std::mem::take(&mut self.buf);
        let records = std::mem::replace(&mut self.records, 0);
        self.sealed_bytes += buf.len();
        self.sealed.push(Arc::new(RecordPage { buf, records }));
    }

    /// Serialized bytes across the sealed pages still held by the writer
    /// (the quantity a [`crate::spill::MemoryBudget`] meters).
    #[inline]
    pub fn sealed_bytes(&self) -> usize {
        self.sealed_bytes
    }

    /// Takes the sealed pages out of the writer (the open page stays),
    /// resetting the sealed-byte gauge — the spill path moves these to disk.
    pub fn take_sealed(&mut self) -> Vec<Arc<RecordPage>> {
        self.sealed_bytes = 0;
        std::mem::take(&mut self.sealed)
    }

    /// Records written so far (sealed and open pages).
    #[inline]
    pub fn total_records(&self) -> usize {
        self.total_records
    }

    /// Serialized bytes written so far (sealed and open pages).
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Seals the open page and returns all pages.
    pub fn finish(mut self) -> Vec<Arc<RecordPage>> {
        self.seal();
        self.sealed
    }
}

/// A cursor over the records of one page, yielding lazy [`RecordView`]s.
#[derive(Debug, Clone)]
pub struct PageReader<'a> {
    bytes: &'a [u8],
    offset: usize,
    remaining: usize,
}

impl<'a> PageReader<'a> {
    /// Records not yet read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl<'a> Iterator for PageReader<'a> {
    type Item = RecordView<'a>;

    fn next(&mut self) -> Option<RecordView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let len = u32::from_le_bytes(read_array(self.bytes, &mut self.offset)) as usize;
        let end = self.offset + len;
        let payload = &self.bytes[self.offset..end];
        self.offset = end;
        Some(RecordView { payload })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PageReader<'_> {}

/// A borrowed view of one serialized record inside a page.
///
/// Fields can be materialized ([`RecordView::materialize`] /
/// [`RecordView::read_into`]) or read in place without allocating
/// ([`RecordView::long`], [`RecordView::normalized_long_prefix`]).
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    payload: &'a [u8],
}

impl RecordView<'_> {
    /// Serialized payload width in bytes (without the length prefix).
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Deserializes the record into a fresh [`Record`].
    pub fn materialize(&self) -> Record {
        let mut record = Record::empty();
        self.read_into(&mut record);
        record
    }

    /// Deserializes the record into `target`, reusing its field buffer (the
    /// receive-side scratch-record pattern: iterating a page this way
    /// allocates nothing for fixed-width fields once the buffer has warmed
    /// up).
    pub fn read_into(&self, target: &mut Record) {
        target.clear();
        let mut offset = 0;
        while offset < self.payload.len() {
            target.push(deserialize_value(self.payload, &mut offset));
        }
    }

    /// Reads the `i64` stored in field `idx` straight from the page bytes,
    /// panicking if the field is missing or not a `Long` (the same contract
    /// as [`Record::long`]).
    pub fn long(&self, idx: usize) -> i64 {
        let mut offset = 0;
        let mut field = 0;
        while offset < self.payload.len() {
            if field == idx {
                assert_eq!(
                    self.payload[offset], TAG_LONG,
                    "expected Long value in page field {idx}"
                );
                offset += 1;
                return denormalize_long(read_array(self.payload, &mut offset));
            }
            skip_value(self.payload, &mut offset);
            field += 1;
        }
        panic!("page record has no field {idx}");
    }

    /// The 8-byte normalized (order-preserving) encoding of the first field
    /// if it is a `Long` — the binary sort key of the record.  `None` when
    /// the record is empty or its first field has another type.
    pub fn normalized_long_prefix(&self) -> Option<[u8; 8]> {
        if self.payload.first() != Some(&TAG_LONG) {
            return None;
        }
        let mut offset = 1;
        Some(read_array(self.payload, &mut offset))
    }
}

/// Advances `offset` past the field starting there.
fn skip_value(bytes: &[u8], offset: &mut usize) {
    let tag = bytes[*offset];
    *offset += 1;
    *offset += match tag {
        TAG_NULL => 0,
        TAG_BOOL => 1,
        TAG_LONG | TAG_DOUBLE => 8,
        TAG_TEXT => u32::from_le_bytes(read_array(bytes, offset)) as usize,
        other => panic!("corrupt page: unknown value tag {other}"),
    };
}

// ---------------------------------------------------------------------------
// Exchanged partitions
// ---------------------------------------------------------------------------

/// The post-exchange input of one worker partition.
///
/// Records that were already in the right partition stay heap objects and are
/// moved (a local forward never serializes, exactly like a chained operator
/// in the real runtime); records from peer partitions arrive as sealed,
/// shared pages — or, when the exchange ran under a memory budget, as
/// [`SpilledRun`]s on disk.  Consumers either iterate everything by reference
/// with a reusable scratch record ([`ExchangedPartition::for_each_ref`]) or
/// take ownership ([`ExchangedPartition::into_records`] /
/// [`ExchangedPartition::for_each_owned`]).
///
/// # Sorted spilled partitions
///
/// A sorted partition ([`ExchangedPartition::sorted_by`] set) that holds
/// spilled runs keeps two invariants: the materialized records are sorted,
/// every run is individually sorted by the same key, and no raw pages are
/// present.  The owning accessors then yield the **merged** global order (a
/// linear k-way merge, never a re-sort); [`ExchangedPartition::for_each_ref`]
/// streams the pieces without merging, so its visit order across pieces is
/// unspecified — order-sensitive consumers take ownership.
#[derive(Debug, Default)]
pub struct ExchangedPartition {
    local: Vec<Record>,
    pages: Vec<Arc<RecordPage>>,
    /// Runs spilled to disk by the exchange, in spill order (earlier records
    /// first).
    runs: Vec<SpilledRun>,
    /// Key fields the partition is sorted by, when the exchange delivered it
    /// sorted (range exchanges).  Receiving pages or runs clears it.
    sorted_by: Option<crate::key::KeyFields>,
}

impl ExchangedPartition {
    /// A partition holding only local (never serialized) records.
    pub fn from_records(local: Vec<Record>) -> Self {
        ExchangedPartition {
            local,
            ..ExchangedPartition::default()
        }
    }

    /// A partition of fully-materialized records already sorted by `key`
    /// (what a range exchange delivers): consumers with a matching sort
    /// requirement skip their local sort.
    pub fn from_sorted_records(local: Vec<Record>, key: crate::key::KeyFields) -> Self {
        ExchangedPartition {
            local,
            sorted_by: Some(key),
            ..ExchangedPartition::default()
        }
    }

    /// A partition built from local records plus received pages.
    pub fn new(local: Vec<Record>, pages: Vec<Arc<RecordPage>>) -> Self {
        ExchangedPartition {
            local,
            pages,
            ..ExchangedPartition::default()
        }
    }

    /// A partition served entirely from spilled runs (a budget-spilled cached
    /// edge).  When `sorted_by` is set, every run must be sorted by that key.
    pub fn from_spilled(runs: Vec<SpilledRun>, sorted_by: Option<crate::key::KeyFields>) -> Self {
        if let Some(key) = &sorted_by {
            debug_assert!(runs.iter().all(|r| r.sorted_by() == Some(&key[..])));
        }
        ExchangedPartition {
            runs,
            sorted_by,
            ..ExchangedPartition::default()
        }
    }

    /// A sorted partition whose overflow lives on disk: `local` is sorted by
    /// `key`, each run is individually sorted by `key`, and the owning
    /// accessors merge them into the global order (what a budgeted range
    /// exchange delivers).
    pub fn from_sorted_spilled(
        local: Vec<Record>,
        runs: Vec<SpilledRun>,
        key: crate::key::KeyFields,
    ) -> Self {
        debug_assert!(runs.iter().all(|r| r.sorted_by() == Some(&key[..])));
        ExchangedPartition {
            local,
            runs,
            sorted_by: Some(key),
            ..ExchangedPartition::default()
        }
    }

    /// The key fields this partition is sorted by, if the exchange delivered
    /// it sorted.
    pub fn sorted_by(&self) -> Option<&[usize]> {
        self.sorted_by.as_deref()
    }

    /// Appends sealed pages received from a peer partition (pointer moves).
    /// Pages arrive in peer order, so any previously recorded sort order no
    /// longer holds and is cleared.
    pub fn receive_pages(&mut self, pages: impl IntoIterator<Item = Arc<RecordPage>>) {
        let before = self.pages.len();
        self.pages.extend(pages);
        if self.pages.len() > before {
            self.sorted_by = None;
        }
    }

    /// Appends spilled runs received from a peer partition (handle moves —
    /// the bytes stay on disk).  Like received pages, received runs void any
    /// previously recorded partition-wide order.
    pub fn receive_runs(&mut self, runs: impl IntoIterator<Item = SpilledRun>) {
        let before = self.runs.len();
        self.runs.extend(runs);
        if self.runs.len() > before {
            self.sorted_by = None;
        }
    }

    /// Total records (local, paged and spilled).
    pub fn record_count(&self) -> usize {
        self.local.len()
            + self.pages.iter().map(|p| p.record_count()).sum::<usize>()
            + self.runs.iter().map(|r| r.record_count()).sum::<usize>()
    }

    /// True if the partition received nothing.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
            && self.pages.iter().all(|p| p.is_empty())
            && self.runs.iter().all(|r| r.record_count() == 0)
    }

    /// Number of sealed pages received from peers.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of spilled runs backing this partition.
    pub fn spilled_run_count(&self) -> usize {
        self.runs.len()
    }

    /// True when every spilled run is individually sorted by `key` — even if
    /// the partition as a whole is not (a hash exchange delivers unordered
    /// partitions whose runs were still sorted on flush).  Sort-based
    /// consumers use this to merge the runs with a sorted in-memory residue
    /// instead of rematerializing and re-sorting everything.
    pub fn spilled_runs_sorted_by(&self, key: &[usize]) -> bool {
        self.runs.iter().all(|run| run.sorted_by() == Some(key))
    }

    /// True when the owning accessors must merge sorted pieces.
    fn is_sorted_merge(&self) -> bool {
        self.sorted_by.is_some() && !self.runs.is_empty()
    }

    /// The streaming k-way merge over this sorted partition's pieces (the
    /// spilled runs plus the in-memory sorted records), yielding the global
    /// key order one record at a time.
    ///
    /// # Panics
    /// If the partition is not sorted, or holds raw pages (sorted spilled
    /// partitions never do, by construction).
    pub fn into_merger(self) -> RunMerger {
        let key = self
            .sorted_by
            .clone()
            .expect("into_merger requires a sorted partition");
        assert!(
            self.pages.is_empty(),
            "sorted spilled partitions never hold raw pages"
        );
        RunMerger::over_runs(&self.runs, self.local, key)
            .expect("failed to open spilled runs for merging")
    }

    /// Calls `f` for every record: local records by reference, page and run
    /// records through one scratch record that is reused across calls (no
    /// per-record allocation for fixed-width fields).  The visit order
    /// across the pieces is unspecified; order-sensitive consumers use the
    /// owning accessors, which merge sorted spilled partitions.
    pub fn for_each_ref(&self, mut f: impl FnMut(&Record)) {
        for record in &self.local {
            f(record);
        }
        let mut scratch = Record::empty();
        for page in &self.pages {
            for view in page.reader() {
                view.read_into(&mut scratch);
                f(&scratch);
            }
        }
        for run in &self.runs {
            let mut cursor = run.cursor().expect("failed to open spilled run");
            while cursor
                .next_into(&mut scratch)
                .expect("failed to read spilled run")
            {
                f(&scratch);
            }
        }
    }

    /// Calls `f` with every record owned: local records are moved out, page
    /// and run records are materialized.  Sorted spilled partitions are
    /// visited in merged (global key) order.
    pub fn for_each_owned(self, mut f: impl FnMut(Record)) {
        if self.is_sorted_merge() {
            let mut merger = self.into_merger();
            while let Some(record) = merger.next_record().expect("failed to read spilled run") {
                f(record);
            }
            return;
        }
        for record in self.local {
            f(record);
        }
        for page in &self.pages {
            for view in page.reader() {
                f(view.materialize());
            }
        }
        for run in &self.runs {
            let mut cursor = run.cursor().expect("failed to open spilled run");
            while let Some(record) = cursor.next_record().expect("failed to read spilled run") {
                f(record);
            }
        }
    }

    /// Materializes the whole partition into owned records (local records
    /// moved, page and run records deserialized).  Sorted spilled partitions
    /// materialize in merged order — a linear merge of the sorted pieces,
    /// never an in-memory re-sort.
    pub fn into_records(self) -> Vec<Record> {
        let mut records = Vec::with_capacity(self.record_count());
        self.for_each_owned(|record| records.push(record));
        records
    }

    /// Splits the partition into its in-memory records (local moved, pages
    /// materialized, in arrival order) and its spilled runs — the shape the
    /// range exchange sorts: memory gets the memcmp sort, runs are already
    /// sorted on disk.
    pub fn into_mem_and_runs(self) -> (Vec<Record>, Vec<SpilledRun>) {
        let mut records = self.local;
        records.reserve(self.pages.iter().map(|p| p.record_count()).sum());
        for page in &self.pages {
            for view in page.reader() {
                records.push(view.materialize());
            }
        }
        (records, self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::pair(1, -1),
            Record::new(vec![
                Value::Null,
                Value::Bool(true),
                Value::Long(i64::MIN),
                Value::Double(-0.0),
                Value::Text("héllo 日本語 🦀".into()),
            ]),
            Record::empty(),
            Record::long_double(i64::MAX, f64::NAN),
            Record::new(vec![Value::Text(String::new())]),
        ]
    }

    #[test]
    fn round_trip_preserves_every_variant() {
        let records = sample_records();
        let mut writer = PageWriter::new();
        for r in &records {
            writer.push(r);
        }
        let pages = writer.finish();
        let read: Vec<Record> = pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        assert_eq!(read, records);
    }

    #[test]
    fn serialized_width_equals_estimated_bytes() {
        for r in sample_records() {
            let mut buf = Vec::new();
            serialize_record(&r, &mut buf);
            assert_eq!(buf.len(), r.estimated_bytes(), "width mismatch for {r}");
        }
    }

    #[test]
    fn tiny_pages_straddle_boundaries() {
        let records: Vec<Record> = (0..100).map(|i| Record::pair(i, i * 3)).collect();
        // 40 bytes per page: one 22-byte (long, long) record fits, two do not.
        let mut writer = PageWriter::with_page_bytes(40);
        for r in &records {
            writer.push(r);
        }
        let pages = writer.finish();
        assert_eq!(pages.len(), 100, "each page holds exactly one record");
        let read: Vec<Record> = pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        assert_eq!(read, records);
    }

    #[test]
    fn oversized_records_get_a_private_page() {
        let big = Record::new(vec![Value::Text("x".repeat(1000))]);
        let mut writer = PageWriter::with_page_bytes(64);
        writer.push(&Record::pair(1, 2));
        writer.push(&big);
        writer.push(&Record::pair(3, 4));
        let pages = writer.finish();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[1].record_count(), 1);
        assert!(pages[1].byte_len() > 64);
        assert_eq!(pages[1].reader().next().unwrap().materialize(), big);
    }

    #[test]
    fn oversized_record_never_corrupts_following_offsets() {
        // The capacity invariant: an oversized record seals alone into its
        // private page the moment it is written, so the small records around
        // it frame on clean page boundaries and every reader offset stays
        // exact.  (Before the invariant was asserted, an over-full open page
        // could in principle have accepted more records silently.)
        for page_bytes in [32usize, 64, 200] {
            let mut records = vec![Record::pair(1, 2)];
            records.push(Record::new(vec![Value::Text("y".repeat(3 * page_bytes))]));
            records.extend((0..50).map(|i| Record::pair(i, -i)));
            records.push(Record::new(vec![Value::Text("z".repeat(2 * page_bytes))]));
            records.extend((50..80).map(|i| Record::pair(i, -i)));
            let mut writer = PageWriter::with_page_bytes(page_bytes);
            for r in &records {
                writer.push(r);
            }
            let pages = writer.finish();
            for page in &pages {
                assert!(
                    page.byte_len() <= page_bytes || page.record_count() == 1,
                    "an over-capacity page must be a private oversized page \
                     ({} bytes, {} records, capacity {page_bytes})",
                    page.byte_len(),
                    page.record_count()
                );
            }
            let read: Vec<Record> = pages
                .iter()
                .flat_map(|p| p.reader().map(|v| v.materialize()))
                .collect();
            assert_eq!(read, records, "offsets corrupted at capacity {page_bytes}");
        }
    }

    #[test]
    fn take_sealed_resets_the_budget_gauge() {
        let mut writer = PageWriter::with_page_bytes(40);
        for i in 0..10 {
            writer.push(&Record::pair(i, i));
        }
        assert!(writer.sealed_bytes() > 0, "tiny pages sealed under writing");
        let sealed = writer.take_sealed();
        assert!(!sealed.is_empty());
        assert_eq!(writer.sealed_bytes(), 0);
        // The open page survives the take and seals at finish.
        let rest = writer.finish();
        let total: usize = sealed
            .iter()
            .chain(rest.iter())
            .map(|p| p.record_count())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn normalized_long_encoding_preserves_order() {
        let samples = [i64::MIN, -1_000_000, -1, 0, 1, 7, 1_000_000, i64::MAX];
        for &a in &samples {
            assert_eq!(denormalize_long(normalize_long(a)), a);
            for &b in &samples {
                assert_eq!(
                    normalize_long(a).cmp(&normalize_long(b)),
                    a.cmp(&b),
                    "normalized order diverged for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn normalized_double_encoding_matches_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.25,
            f64::INFINITY,
            f64::NAN,
        ];
        for &a in &samples {
            assert_eq!(
                denormalize_double(normalize_double(a)).to_bits(),
                a.to_bits()
            );
            for &b in &samples {
                assert_eq!(
                    normalize_double(a).cmp(&normalize_double(b)),
                    a.total_cmp(&b),
                    "normalized order diverged for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn record_view_reads_fields_in_place() {
        let mut writer = PageWriter::new();
        writer.push(&Record::triple(-42, 7, 0.5));
        let pages = writer.finish();
        let page = &pages[0];
        let view = page.reader().next().unwrap();
        assert_eq!(view.long(0), -42);
        assert_eq!(view.long(1), 7);
        assert_eq!(
            view.normalized_long_prefix(),
            Some(normalize_long(-42)),
            "first long field doubles as the normalized sort key"
        );
        // Byte-compare of prefixes orders records without deserializing.
        let mut w2 = PageWriter::new();
        w2.push(&Record::pair(5, 0));
        let p2 = w2.finish();
        let v2 = p2[0].reader().next().unwrap();
        assert!(view.normalized_long_prefix() < v2.normalized_long_prefix());
    }

    #[test]
    fn exchanged_partition_mixes_local_and_paged_records() {
        let mut writer = PageWriter::new();
        writer.push(&Record::pair(10, 11));
        writer.push(&Record::pair(12, 13));
        let part = ExchangedPartition::new(vec![Record::pair(1, 2)], writer.finish());
        assert_eq!(part.record_count(), 3);
        assert_eq!(part.page_count(), 1);
        let mut seen = Vec::new();
        part.for_each_ref(|r| seen.push(r.clone()));
        assert_eq!(
            seen,
            vec![
                Record::pair(1, 2),
                Record::pair(10, 11),
                Record::pair(12, 13)
            ]
        );
        assert_eq!(part.into_records(), seen);
    }

    #[test]
    fn sorted_partitions_advertise_and_invalidate_their_order() {
        let records = vec![Record::pair(1, 0), Record::pair(2, 0)];
        let mut part = ExchangedPartition::from_sorted_records(records, vec![0]);
        assert_eq!(part.sorted_by(), Some(&[0usize][..]));
        // Receiving nothing keeps the order; receiving a page clears it.
        part.receive_pages(Vec::new());
        assert_eq!(part.sorted_by(), Some(&[0usize][..]));
        let mut writer = PageWriter::new();
        writer.push(&Record::pair(0, 0));
        part.receive_pages(writer.finish());
        assert_eq!(part.sorted_by(), None);
        assert!(ExchangedPartition::from_records(vec![])
            .sorted_by()
            .is_none());
    }

    #[test]
    fn writer_counts_records_and_bytes() {
        let mut writer = PageWriter::new();
        assert!(writer.is_empty());
        let w = writer.push(&Record::pair(1, 2));
        assert_eq!(w, Record::pair(1, 2).estimated_bytes());
        writer.push(&Record::pair(3, 4));
        assert_eq!(writer.total_records(), 2);
        assert_eq!(writer.total_bytes(), 2 * w);
        let pages = writer.finish();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].record_count(), 2);
        assert_eq!(pages[0].byte_len(), 2 * w);
    }

    #[test]
    fn empty_writer_produces_no_pages() {
        assert!(PageWriter::new().finish().is_empty());
        let mut w = PageWriter::new();
        w.seal();
        assert!(w.finish().is_empty());
    }
}
