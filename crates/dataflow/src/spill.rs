//! Spilling sealed pages to disk: the out-of-core half of the engine.
//!
//! The Stratosphere runtime the paper builds on is an *out-of-core* dataflow
//! engine: iterations keep working when the exchanged state no longer fits in
//! memory, because exchange buffers spill to disk and sort/merge operators
//! consume the spilled data as sorted runs.  The sealed binary pages of
//! [`crate::page`] make this a byte-level operation — a run on disk is just a
//! sequence of framed pages — and the normalized-key sort of [`crate::range`]
//! makes every run cheap to order.  This module is that half:
//!
//! * [`MemoryBudget`] — how many serialized bytes an exchange may buffer in
//!   memory before sealed pages leave for disk.  `unlimited()` (the default)
//!   never spills; `bytes(0)` spills everything.
//! * [`SpillManager`] — the per-exchange policy object (budget, spill
//!   directory, sort-on-flush key) handing out [`SpillingWriter`]s.
//! * [`SpillingWriter`] — a [`PageWriter`] that, whenever its sealed pages
//!   exceed the budget, flushes them into a [`SpilledRun`] on disk.  With a
//!   sort key configured the flushed records are ordered with the
//!   normalized-key memcmp sort first, so every run on disk is a *sorted*
//!   run; pages that are already sorted (a delivered range partition, a
//!   sorted cached edge) are written verbatim via [`write_run_in`].
//! * [`SpilledRun`] / [`RunCursor`] — a handle to one run file (deleted when
//!   the last handle drops, so passing test runs leak no files) and a
//!   streaming reader that revives records through one page-sized scratch
//!   buffer, never materializing the run.
//! * [`RunMerger`] — a k-way loser-tree merge over sorted runs (and sorted
//!   in-memory record sequences), yielding the globally sorted stream one
//!   record at a time.  [`RunMerger::for_each_group`] layers streaming
//!   grouping on top: only one key group is ever in memory.
//!
//! # Run file format (version 2)
//!
//! A run file opens with an 8-byte header — the magic `b"SPRN"` and a
//! little-endian `u32` format version — followed by a sequence of framed
//! pages: a little-endian `u32` byte length, a `u32` record count, and a
//! `u32` CRC-32 (IEEE) of the page bytes, then the page bytes exactly as
//! they sat in memory (the wire format of [`crate::page`]).  Reading a run
//! back is one sequential pass; no index or footer is needed because the
//! [`SpilledRun`] handle carries the page count.  Version-1 files (no magic,
//! no checksums) are rejected at open, not misread.
//!
//! # Error handling
//!
//! Writing (the spill decision) returns `io::Result` so budget-driven spills
//! surface disk-full and permission errors to the caller.  Reading back is
//! *validated*: a bad magic, a torn frame, or a page whose CRC does not
//! match surfaces as an [`io::Error`] carrying a typed corruption payload,
//! which [`crate::error::DataflowError`]'s `From<io::Error>` turns into
//! `DataflowError::SpillCorrupt { path, frame_offset }` — callers decide
//! whether to recover (restore a checkpoint) or to fail the job, instead of
//! the process unwinding.  The same framed format, written through
//! [`write_records_to`] / [`read_records_from`], backs superstep
//! checkpoints, where the CRC is what makes a torn checkpoint *detectable*
//! rather than trusted.

use crate::fault::{FaultInjector, FaultSite};
use crate::key::{Key, KeyFields};
use crate::page::{PageWriter, RecordPage};
use crate::range::sort_by_key_normalized;
use crate::record::Record;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Environment variable naming the directory spilled runs are written to.
/// Unset (or empty), runs go to a process-private directory under the system
/// temp dir.  CI points this at a known location and asserts it is empty
/// after the test run — spilled runs must never leak files.
pub const SPILL_DIR_ENV: &str = "SPINNING_SPILL_DIR";

/// Environment variable carrying a byte budget for test suites and smoke
/// jobs; parsed by [`MemoryBudget::from_env`].
pub const MEMORY_BUDGET_ENV: &str = "SPINNING_MEMORY_BUDGET";

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

/// A byte budget on buffered (sealed but unshipped) exchange pages.
///
/// The default is unlimited — nothing ever spills.  A finite budget makes a
/// [`SpillingWriter`] move sealed pages to disk whenever their bytes exceed
/// the limit; `bytes(0)` therefore spills every sealed page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBudget(Option<usize>);

impl MemoryBudget {
    /// No budget: exchanges buffer everything in memory (the default).
    pub const fn unlimited() -> MemoryBudget {
        MemoryBudget(None)
    }

    /// A finite budget of `limit` bytes.  Zero means "spill everything".
    pub const fn bytes(limit: usize) -> MemoryBudget {
        MemoryBudget(Some(limit))
    }

    /// Reads a budget from [`MEMORY_BUDGET_ENV`].  `None` when the variable
    /// is unset; a set-but-unparseable value panics instead of being
    /// silently ignored — a typo in a CI budget must not make the smoke job
    /// quietly test a different budget than it configured.
    pub fn from_env() -> Option<MemoryBudget> {
        let raw = std::env::var(MEMORY_BUDGET_ENV).ok()?;
        match raw.trim().parse() {
            Ok(limit) => Some(MemoryBudget::bytes(limit)),
            Err(_) => panic!(
                "{MEMORY_BUDGET_ENV} must be a plain byte count, got {raw:?} \
                 (suffixes like 'k' or 'MB' are not supported)"
            ),
        }
    }

    /// True when no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.0.is_none()
    }

    /// The configured limit in bytes, if any.
    pub fn limit(&self) -> Option<usize> {
        self.0
    }

    /// True when `buffered_bytes` still fits the budget.
    #[inline]
    pub fn allows(&self, buffered_bytes: usize) -> bool {
        match self.0 {
            None => true,
            Some(limit) => buffered_bytes <= limit,
        }
    }

    /// Splits the budget evenly over `ways` concurrent buffers (an exchange
    /// holds one page writer per producer×target pair, which together must
    /// stay under the exchange's budget).
    pub fn share(&self, ways: usize) -> MemoryBudget {
        MemoryBudget(self.0.map(|limit| limit / ways.max(1)))
    }
}

/// Counters describing what a writer (or a whole exchange) spilled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Serialized bytes written to disk as runs.
    pub spilled_bytes: usize,
    /// Number of runs created.
    pub spilled_runs: usize,
    /// Records contained in those runs.
    pub spilled_records: usize,
}

impl SpillStats {
    /// Accumulates another writer's counters into this one.
    pub fn merge(&mut self, other: &SpillStats) {
        self.spilled_bytes += other.spilled_bytes;
        self.spilled_runs += other.spilled_runs;
        self.spilled_records += other.spilled_records;
    }
}

// ---------------------------------------------------------------------------
// The run file format
// ---------------------------------------------------------------------------

/// Magic bytes opening every run/checkpoint data file.
const RUN_MAGIC: [u8; 4] = *b"SPRN";

/// Current run file format version (v2 added per-page CRC-32).
const RUN_FORMAT_VERSION: u32 = 2;

/// Bytes of a frame header: page byte length, record count, page CRC-32.
const FRAME_HEADER_BYTES: usize = 12;

/// Sanity bound on a single page frame; a length beyond this in a header is
/// garbage (torn or foreign file), not a page to allocate.
const MAX_FRAME_BYTES: usize = 1 << 28;

/// CRC-32 (IEEE, reflected — the zlib/PNG polynomial) lookup table, built at
/// compile time so the dependency-free implementation still runs one table
/// step per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// Typed payload of a corruption error: travels inside an [`io::Error`]
/// through the `io::Result` plumbing and is downcast by
/// `DataflowError::from(io::Error)` into `SpillCorrupt`.
#[derive(Debug)]
pub(crate) struct CorruptRun {
    pub(crate) path: PathBuf,
    pub(crate) frame_offset: u64,
    pub(crate) detail: String,
}

impl fmt::Display for CorruptRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt run file {} at frame offset {}: {}",
            self.path.display(),
            self.frame_offset,
            self.detail
        )
    }
}

impl std::error::Error for CorruptRun {}

fn corrupt(path: &Path, frame_offset: u64, detail: impl Into<String>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        CorruptRun {
            path: path.to_owned(),
            frame_offset,
            detail: detail.into(),
        },
    )
}

/// Writes the 8-byte file header (magic + version).
fn write_file_header(writer: &mut impl Write) -> io::Result<()> {
    writer.write_all(&RUN_MAGIC)?;
    writer.write_all(&RUN_FORMAT_VERSION.to_le_bytes())
}

/// Reads and validates the 8-byte file header.
fn read_file_header(reader: &mut impl Read, path: &Path) -> io::Result<()> {
    let mut header = [0u8; 8];
    reader
        .read_exact(&mut header)
        .map_err(|_| corrupt(path, 0, "file too short for the run header"))?;
    if header[..4] != RUN_MAGIC {
        return Err(corrupt(
            path,
            0,
            "bad magic (not a run file, or a pre-checksum v1 run)",
        ));
    }
    let version = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
    if version != RUN_FORMAT_VERSION {
        return Err(corrupt(
            path,
            0,
            format!("unsupported run format version {version}"),
        ));
    }
    Ok(())
}

/// Writes one page frame (header + bytes), returning the frame's total size.
fn write_frame(writer: &mut impl Write, page: &RecordPage) -> io::Result<usize> {
    writer.write_all(&(page.byte_len() as u32).to_le_bytes())?;
    writer.write_all(&(page.record_count() as u32).to_le_bytes())?;
    writer.write_all(&crc32(page.bytes()).to_le_bytes())?;
    writer.write_all(page.bytes())?;
    Ok(FRAME_HEADER_BYTES + page.byte_len())
}

/// Reads the next frame into `page`, validating the CRC.  Returns the record
/// count, or `None` at a clean end-of-file (the frame boundary).  A partial
/// frame, an implausible length, or a checksum mismatch is a corruption
/// error; `frame_offset` is advanced past the frame on success.
fn read_frame(
    reader: &mut impl Read,
    path: &Path,
    frame_offset: &mut u64,
    page: &mut Vec<u8>,
) -> io::Result<Option<usize>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match reader.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            // Distinguish "no more frames" from "torn mid-header": read_exact
            // leaves the contents unspecified on failure, so re-probe.
            return Err(corrupt(path, *frame_offset, "torn frame header"));
        }
        Err(e) => return Err(e),
    }
    let byte_len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
    let records = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice")) as usize;
    let expected_crc = u32::from_le_bytes(header[8..].try_into().expect("4-byte slice"));
    if byte_len > MAX_FRAME_BYTES {
        return Err(corrupt(
            path,
            *frame_offset,
            format!("implausible frame length {byte_len}"),
        ));
    }
    page.resize(byte_len, 0);
    reader
        .read_exact(page)
        .map_err(|_| corrupt(path, *frame_offset, "torn page frame"))?;
    let actual_crc = crc32(page);
    if actual_crc != expected_crc {
        return Err(corrupt(
            path,
            *frame_offset,
            format!(
                "page checksum mismatch (stored {expected_crc:#010x}, computed {actual_crc:#010x})"
            ),
        ));
    }
    *frame_offset += (FRAME_HEADER_BYTES + byte_len) as u64;
    Ok(Some(records))
}

/// Like [`read_frame`] but treats end-of-file at a frame boundary as the end
/// of the stream (for files read without a known page count).
fn read_frame_or_eof(
    reader: &mut BufReader<File>,
    path: &Path,
    frame_offset: &mut u64,
    page: &mut Vec<u8>,
) -> io::Result<Option<usize>> {
    use std::io::BufRead;
    if reader.fill_buf()?.is_empty() {
        return Ok(None);
    }
    read_frame(reader, path, frame_offset, page)
}

// ---------------------------------------------------------------------------
// Runs on disk
// ---------------------------------------------------------------------------

/// The owned run file; removed from disk when the last handle drops.
#[derive(Debug)]
struct RunFile {
    path: PathBuf,
}

impl Drop for RunFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Distinguishes run files across writers; the process id in the file name
/// distinguishes them across processes sharing a spill directory.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The directory spilled runs are written to: [`SPILL_DIR_ENV`] when set,
/// otherwise a process-private directory under the system temp dir.
pub fn default_spill_dir() -> PathBuf {
    match std::env::var_os(SPILL_DIR_ENV) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir().join(format!("spinning-spill-{}", std::process::id())),
    }
}

/// A handle to one spilled run: a sequence of framed pages on disk, plus the
/// key fields its records are sorted by (if any).  Handles are cheap to
/// clone and share the underlying file; the file is deleted when the last
/// handle drops.
#[derive(Debug, Clone)]
pub struct SpilledRun {
    file: Arc<RunFile>,
    pages: usize,
    records: usize,
    bytes: usize,
    sorted_by: Option<KeyFields>,
}

impl SpilledRun {
    /// Number of records in the run.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Serialized page bytes in the run (frame headers excluded).
    pub fn byte_len(&self) -> usize {
        self.bytes
    }

    /// Number of pages in the run.
    pub fn page_count(&self) -> usize {
        self.pages
    }

    /// The key fields the run's records are sorted by, if the run is sorted.
    pub fn sorted_by(&self) -> Option<&[usize]> {
        self.sorted_by.as_deref()
    }

    /// Path of the backing file (diagnostics only; the file disappears with
    /// the last handle).
    pub fn path(&self) -> &Path {
        &self.file.path
    }

    /// Revives the run as sealed in-memory pages: the file is framed page
    /// bytes behind a checksummed header, so this is a read plus a checksum
    /// per page — no per-record deserialization.  Page-native operators use
    /// it to treat a spilled input exactly like received exchange pages,
    /// which makes the spill read path pure pointer plumbing past this call.
    pub fn read_pages(&self) -> io::Result<Vec<Arc<RecordPage>>> {
        let path = &self.file.path;
        let mut reader = BufReader::new(File::open(path)?);
        read_file_header(&mut reader, path)?;
        let mut frame_offset = 8u64;
        let mut pages = Vec::with_capacity(self.pages);
        for _ in 0..self.pages {
            let mut buf = Vec::new();
            let records = read_frame(&mut reader, path, &mut frame_offset, &mut buf)?
                .expect("read_frame reports torn frames as errors");
            pages.push(Arc::new(RecordPage::from_raw(buf, records)));
        }
        Ok(pages)
    }

    /// Opens a streaming cursor over the run's records, validating the file
    /// header eagerly (a non-run or pre-checksum file fails here, not later).
    pub fn cursor(&self) -> io::Result<RunCursor> {
        let mut reader = BufReader::new(File::open(&self.file.path)?);
        read_file_header(&mut reader, &self.file.path)?;
        Ok(RunCursor {
            reader,
            path: self.file.path.clone(),
            frame_offset: 8,
            pages_remaining: self.pages,
            page: Vec::new(),
            offset: 0,
            records_in_page: 0,
            _file: Some(Arc::clone(&self.file)),
        })
    }
}

/// Writes sealed pages to `dir` as one run, verbatim (no re-sort; pass
/// `sorted_by` when the pages are already ordered, e.g. a delivered range
/// partition).  Empty pages are skipped.
pub fn write_run_in(
    dir: &Path,
    pages: &[Arc<RecordPage>],
    sorted_by: Option<KeyFields>,
) -> io::Result<SpilledRun> {
    fs::create_dir_all(dir)?;
    let id = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("run-{}-{id}.spill", std::process::id()));
    let file = File::create(&path)?;
    // Constructed before writing so a failed write still deletes the file.
    let run_file = Arc::new(RunFile { path });
    let mut writer = BufWriter::new(file);
    write_file_header(&mut writer)?;
    let (mut page_count, mut records, mut bytes) = (0usize, 0usize, 0usize);
    for page in pages {
        if page.is_empty() {
            continue;
        }
        write_frame(&mut writer, page)?;
        page_count += 1;
        records += page.record_count();
        bytes += page.byte_len();
    }
    writer.flush()?;
    Ok(SpilledRun {
        file: run_file,
        pages: page_count,
        records,
        bytes,
        sorted_by,
    })
}

/// Serializes already-sorted records into fresh pages and writes them as a
/// sorted run.
pub fn write_sorted_records_in(
    dir: &Path,
    records: &[Record],
    keys: &[usize],
) -> io::Result<SpilledRun> {
    let mut writer = PageWriter::new();
    for record in records {
        writer.push(record);
    }
    write_run_in(dir, &writer.finish(), Some(keys.to_vec()))
}

/// Materializes the records of `pages`, sorts them with the normalized-key
/// memcmp sort, and writes the result as one sorted run — the flush path of
/// hash-partitioned spills, whose pages arrive in routing order.
pub fn write_sorted_run_in(
    dir: &Path,
    pages: &[Arc<RecordPage>],
    keys: &[usize],
) -> io::Result<SpilledRun> {
    let mut records: Vec<Record> = Vec::with_capacity(pages.iter().map(|p| p.record_count()).sum());
    for page in pages {
        for view in page.reader() {
            records.push(view.materialize());
        }
    }
    sort_by_key_normalized(&mut records, keys);
    write_sorted_records_in(dir, &records, keys)
}

/// A streaming reader over one run: pages are revived one at a time into a
/// single reused scratch buffer, records are deserialized into the caller's
/// scratch record — iterating a run of any size holds one page in memory.
#[derive(Debug)]
pub struct RunCursor {
    reader: BufReader<File>,
    path: PathBuf,
    /// Byte offset of the next frame — corruption errors point here.
    frame_offset: u64,
    pages_remaining: usize,
    /// The current page's bytes; one buffer reused for every page.
    page: Vec<u8>,
    offset: usize,
    records_in_page: usize,
    /// Keeps the run file alive (and on disk) while the cursor reads it;
    /// `None` for cursors over persistent (checkpoint) files.
    _file: Option<Arc<RunFile>>,
}

impl RunCursor {
    /// Reads the next record into `target`, returning `false` at the end of
    /// the run.  A torn frame or checksum mismatch surfaces as a typed
    /// corruption error (see the module docs).
    pub fn next_into(&mut self, target: &mut Record) -> io::Result<bool> {
        while self.records_in_page == 0 {
            if self.pages_remaining == 0 {
                return Ok(false);
            }
            self.pages_remaining -= 1;
            let records = read_frame(
                &mut self.reader,
                &self.path,
                &mut self.frame_offset,
                &mut self.page,
            )?
            .expect("read_frame reports torn frames as errors");
            self.offset = 0;
            self.records_in_page = records;
        }
        self.records_in_page -= 1;
        crate::page::read_framed_record(&self.page, &mut self.offset, target);
        Ok(true)
    }

    /// Reads the next record as a fresh owned [`Record`].
    pub fn next_record(&mut self) -> io::Result<Option<Record>> {
        let mut record = Record::empty();
        Ok(self.next_into(&mut record)?.then_some(record))
    }
}

// ---------------------------------------------------------------------------
// Persistent framed files (checkpoints)
// ---------------------------------------------------------------------------

/// Serializes `records` into framed pages at an explicit `path` (creating
/// parent directories), fsyncs, and returns the file's size in bytes.  The
/// file uses the same checksummed v2 format as spilled runs but is *not*
/// deleted on drop — this is the durability primitive behind superstep
/// checkpoints.
pub fn write_records_to(path: &Path, records: &[Record]) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_file_header(&mut writer)?;
    let mut page_writer = PageWriter::new();
    let mut total = 8u64;
    for record in records {
        page_writer.push(record);
        for page in page_writer.take_sealed() {
            total += write_frame(&mut writer, &page)? as u64;
        }
    }
    for page in page_writer.finish() {
        if !page.is_empty() {
            total += write_frame(&mut writer, &page)? as u64;
        }
    }
    writer.flush()?;
    writer
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()?;
    Ok(total)
}

/// Reads a framed file written by [`write_records_to`] back into records,
/// validating the header and every page checksum.  A torn or tampered file
/// surfaces as a typed corruption error; `expected_records` (from the
/// checkpoint manifest) guards against a file truncated at an exact frame
/// boundary.
pub fn read_records_from(path: &Path, expected_records: Option<usize>) -> io::Result<Vec<Record>> {
    let mut reader = BufReader::new(File::open(path)?);
    read_file_header(&mut reader, path)?;
    let mut frame_offset = 8u64;
    let mut page = Vec::new();
    let mut records = Vec::new();
    while let Some(count) = read_frame_or_eof(&mut reader, path, &mut frame_offset, &mut page)? {
        let mut offset = 0;
        for _ in 0..count {
            let mut record = Record::empty();
            crate::page::read_framed_record(&page, &mut offset, &mut record);
            records.push(record);
        }
    }
    if let Some(expected) = expected_records {
        if records.len() != expected {
            return Err(corrupt(
                path,
                frame_offset,
                format!("expected {expected} records, file holds {}", records.len()),
            ));
        }
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// Stale-file GC
// ---------------------------------------------------------------------------

/// Sweeps `dir` for debris left by a *previous, crashed* process: run files
/// (`run-<pid>-*.spill`) whose pid is not ours, and checkpoint directories
/// (`ckpt-*`), both older than `max_age`.  Returns the number of entries
/// removed.  Files of the current process are never touched (their pid is
/// ours and live handles delete them on drop); checkpoint dirs are age-gated
/// so an in-flight checkpoint of a concurrent run survives.  A missing `dir`
/// is not an error.
pub fn gc_stale_files(dir: &Path, max_age: Duration) -> io::Result<usize> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let own_prefix = format!("run-{}-", std::process::id());
    let mut removed = 0;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_stale_run =
            name.starts_with("run-") && name.ends_with(".spill") && !name.starts_with(&own_prefix);
        let is_checkpoint_dir = name.starts_with("ckpt-");
        if !is_stale_run && !is_checkpoint_dir {
            continue;
        }
        let age_ok = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|modified| modified.elapsed().ok())
            .is_some_and(|age| age >= max_age);
        if !age_ok {
            continue;
        }
        let removal = if is_checkpoint_dir {
            fs::remove_dir_all(entry.path())
        } else {
            fs::remove_file(entry.path())
        };
        if removal.is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Age below which [`gc_stale_files`] leaves debris alone at startup: long
/// enough that anything younger plausibly belongs to a live concurrent run.
const GC_STARTUP_MAX_AGE: Duration = Duration::from_secs(60 * 60);

/// Runs the startup sweep of [`default_spill_dir`] once per process.
fn gc_on_startup() {
    static GC_ONCE: Once = Once::new();
    GC_ONCE.call_once(|| {
        let _ = gc_stale_files(&default_spill_dir(), GC_STARTUP_MAX_AGE);
    });
}

// ---------------------------------------------------------------------------
// The budgeted writer
// ---------------------------------------------------------------------------

/// Per-exchange spill policy: the (per-writer) byte budget, the directory
/// runs are written to, and the key to sort flushed records by.  Cloning is
/// cheap; one manager is shared by all writers of an exchange.
#[derive(Debug, Clone)]
pub struct SpillManager {
    inner: Arc<ManagerInner>,
}

#[derive(Debug)]
struct ManagerInner {
    budget: MemoryBudget,
    dir: PathBuf,
    sort_on_flush: Option<KeyFields>,
    page_bytes: usize,
    page_credits: Option<usize>,
    fault: FaultInjector,
}

impl SpillManager {
    /// A manager spilling to [`default_spill_dir`] under `budget` (applied
    /// per writer; see [`MemoryBudget::share`]).  With `sort_on_flush` set,
    /// flushed records are ordered by those key fields first, so every run
    /// on disk is sorted.  The first manager of a process also sweeps debris
    /// a crashed predecessor left in the spill directory
    /// (see [`gc_stale_files`]).
    pub fn new(budget: MemoryBudget, sort_on_flush: Option<KeyFields>) -> SpillManager {
        gc_on_startup();
        SpillManager::in_dir(default_spill_dir(), budget, sort_on_flush)
    }

    /// A manager spilling into an explicit directory (tests).
    pub fn in_dir(
        dir: PathBuf,
        budget: MemoryBudget,
        sort_on_flush: Option<KeyFields>,
    ) -> SpillManager {
        SpillManager {
            inner: Arc::new(ManagerInner {
                budget,
                dir,
                sort_on_flush,
                page_bytes: crate::page::DEFAULT_PAGE_BYTES,
                page_credits: None,
                fault: FaultInjector::disabled(),
            }),
        }
    }

    /// Overrides the page capacity of the handed-out writers (tests force
    /// tiny pages so budgets trip on small datasets).
    pub fn with_page_bytes(self, page_bytes: usize) -> SpillManager {
        SpillManager {
            inner: Arc::new(ManagerInner {
                budget: self.inner.budget,
                dir: self.inner.dir.clone(),
                sort_on_flush: self.inner.sort_on_flush.clone(),
                page_bytes,
                page_credits: self.inner.page_credits,
                fault: self.inner.fault.clone(),
            }),
        }
    }

    /// Caps the sealed pages a handed-out writer may buffer in memory: once
    /// `credits` pages are sealed they are flushed to disk as a run, bounding
    /// each writer at `credits × page_bytes` of buffered exchange data
    /// regardless of the byte budget.  This is the superstep-exchange half of
    /// credit-based backpressure — the barrier makes blocking producers
    /// deadlock-prone, so bounding happens by spilling, not by stalling.
    /// `None` (the default) leaves only the byte budget in charge.
    pub fn with_page_credits(self, credits: Option<usize>) -> SpillManager {
        SpillManager {
            inner: Arc::new(ManagerInner {
                budget: self.inner.budget,
                dir: self.inner.dir.clone(),
                sort_on_flush: self.inner.sort_on_flush.clone(),
                page_bytes: self.inner.page_bytes,
                page_credits: credits.map(|c| c.max(1)),
                fault: self.inner.fault.clone(),
            }),
        }
    }

    /// Attaches a fault injector consulted on every budget-driven flush
    /// ([`FaultSite::SpillWrite`]).
    pub fn with_fault(self, fault: FaultInjector) -> SpillManager {
        SpillManager {
            inner: Arc::new(ManagerInner {
                budget: self.inner.budget,
                dir: self.inner.dir.clone(),
                sort_on_flush: self.inner.sort_on_flush.clone(),
                page_bytes: self.inner.page_bytes,
                page_credits: self.inner.page_credits,
                fault,
            }),
        }
    }

    /// The per-writer budget.
    pub fn budget(&self) -> MemoryBudget {
        self.inner.budget
    }

    /// The attached fault injector (disabled unless set via
    /// [`SpillManager::with_fault`]).
    pub fn fault(&self) -> &FaultInjector {
        &self.inner.fault
    }

    /// Hands out one budgeted page writer.
    pub fn writer(&self) -> SpillingWriter {
        SpillingWriter {
            manager: self.clone(),
            writer: PageWriter::with_page_bytes(self.inner.page_bytes),
            runs: Vec::new(),
            stats: SpillStats::default(),
            pages_high_water: 0,
            error: None,
        }
    }
}

/// What a [`SpillingWriter`] produced: the pages that stayed in memory
/// (within budget), the runs that went to disk, and the spill counters.
#[derive(Debug)]
pub struct SpillOutput {
    /// Sealed pages still in memory.
    pub pages: Vec<Arc<RecordPage>>,
    /// Runs flushed to disk, in flush order (earlier records first).
    pub runs: Vec<SpilledRun>,
    /// What was spilled.
    pub stats: SpillStats,
    /// Maximum sealed pages the writer held in memory at any point — stays
    /// `<=` the configured page credits (see
    /// [`SpillManager::with_page_credits`]), which is the invariant the
    /// backpressure smoke tests assert.
    pub pages_high_water: usize,
}

/// A [`PageWriter`] under a byte budget: whenever the sealed (finished but
/// unshipped) pages exceed the budget, they are flushed to disk as one run.
/// Open-page bytes never count against the budget — the open page is the
/// working buffer, exactly one page of memory.
///
/// I/O errors during a mid-stream flush are held and re-raised by
/// [`SpillingWriter::finish`], so the routing hot loop never unwinds.
#[derive(Debug)]
pub struct SpillingWriter {
    manager: SpillManager,
    writer: PageWriter,
    runs: Vec<SpilledRun>,
    stats: SpillStats,
    pages_high_water: usize,
    error: Option<io::Error>,
}

impl SpillingWriter {
    /// Serializes one record, spilling sealed pages if the byte budget or
    /// the page-credit cap is exceeded.  Returns the record's serialized
    /// width (like [`PageWriter::push`]).
    pub fn push(&mut self, record: &Record) -> usize {
        let width = self.writer.push(record);
        let sealed_pages = self.writer.sealed_page_count();
        self.pages_high_water = self.pages_high_water.max(sealed_pages);
        let over_budget = !self.manager.inner.budget.allows(self.writer.sealed_bytes());
        let over_credits = self
            .manager
            .inner
            .page_credits
            .is_some_and(|credits| sealed_pages >= credits);
        if self.error.is_none() && (over_budget || over_credits) {
            if let Err(error) = self.flush_sealed() {
                self.error = Some(error);
            }
        }
        width
    }

    /// True when nothing has been written or spilled.
    pub fn is_empty(&self) -> bool {
        self.writer.is_empty() && self.runs.is_empty()
    }

    /// Hands the inner page writer recycled page buffers (see
    /// [`crate::page::PagePool`]): consumed pages from the previous superstep
    /// become this writer's sealed output pages without fresh allocations.
    pub fn add_spare_buffers(&mut self, buffers: impl IntoIterator<Item = Vec<u8>>) {
        self.writer.add_spare_buffers(buffers);
    }

    /// Moves the sealed pages to disk as one run (sorted first when the
    /// manager carries a sort key).
    fn flush_sealed(&mut self) -> io::Result<()> {
        let pages = self.writer.take_sealed();
        if pages.iter().all(|p| p.is_empty()) {
            return Ok(());
        }
        let inner = &self.manager.inner;
        inner.fault.io_check(FaultSite::SpillWrite)?;
        let run = match &inner.sort_on_flush {
            Some(keys) => write_sorted_run_in(&inner.dir, &pages, keys)?,
            None => write_run_in(&inner.dir, &pages, None)?,
        };
        self.stats.spilled_bytes += run.byte_len();
        self.stats.spilled_records += run.record_count();
        self.stats.spilled_runs += 1;
        self.runs.push(run);
        Ok(())
    }

    /// Seals the open page, applies the budget one final time (so a zero
    /// budget spills *everything*, even a single under-full page), and
    /// returns the in-memory pages, the spilled runs and the counters.
    pub fn finish(mut self) -> io::Result<SpillOutput> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.writer.seal();
        self.pages_high_water = self.pages_high_water.max(self.writer.sealed_page_count());
        if !self.manager.inner.budget.allows(self.writer.sealed_bytes()) {
            self.flush_sealed()?;
        }
        let SpillingWriter {
            writer,
            runs,
            stats,
            pages_high_water,
            ..
        } = self;
        Ok(SpillOutput {
            pages: writer.finish(),
            runs,
            stats,
            pages_high_water,
        })
    }
}

// ---------------------------------------------------------------------------
// The k-way merge
// ---------------------------------------------------------------------------

/// One input of a [`RunMerger`]: a sorted run streamed from disk or a sorted
/// in-memory record sequence (e.g. the residue of a partition that never
/// spilled).
pub enum MergeSource {
    /// A sorted spilled run.
    Spilled(RunCursor),
    /// An already-sorted owned record sequence.
    Records(std::vec::IntoIter<Record>),
}

impl MergeSource {
    fn next(&mut self) -> io::Result<Option<Record>> {
        match self {
            MergeSource::Spilled(cursor) => cursor.next_record(),
            MergeSource::Records(iter) => Ok(iter.next()),
        }
    }
}

impl std::fmt::Debug for MergeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeSource::Spilled(_) => f.write_str("MergeSource::Spilled"),
            MergeSource::Records(iter) => write!(f, "MergeSource::Records({})", iter.len()),
        }
    }
}

/// The current front of one merge source.
#[derive(Debug)]
struct MergeHead {
    key: Key,
    record: Record,
}

/// A streaming k-way merge over sorted sources, implemented as a loser tree:
/// each pull costs ⌈log₂ k⌉ key comparisons (a replay along one leaf-to-root
/// path) instead of the k−1 of a naive scan.  Ties are won by the source
/// with the smaller index, so merging the ordered chunks of one input stream
/// reproduces exactly the stable single-vector sort of that stream.
#[derive(Debug)]
pub struct RunMerger {
    key_fields: KeyFields,
    sources: Vec<MergeSource>,
    heads: Vec<Option<MergeHead>>,
    /// `tree[0]` is the overall winner; `tree[1..k]` hold, per internal
    /// match, the source that lost it.  Leaves are implicit: source `i`
    /// corresponds to node `k + i`.
    tree: Vec<usize>,
}

impl RunMerger {
    /// Builds the merger, pulling the first record of every source.  Each
    /// source must be sorted by `key_fields`; empty sources are fine.
    pub fn new(mut sources: Vec<MergeSource>, key_fields: KeyFields) -> io::Result<RunMerger> {
        let mut heads = Vec::with_capacity(sources.len());
        for source in &mut sources {
            heads.push(Self::pull(source, &key_fields)?);
        }
        let mut merger = RunMerger {
            key_fields,
            tree: vec![0; sources.len()],
            sources,
            heads,
        };
        if !merger.sources.is_empty() {
            let winner = merger.build_node(1);
            merger.tree[0] = winner;
        }
        Ok(merger)
    }

    /// A merger over spilled runs plus an optional pre-sorted in-memory
    /// tail.  The runs come first in tie order; pass the memory-resident
    /// records last, matching the order the exchange produced them in.
    pub fn over_runs(
        runs: &[SpilledRun],
        tail: Vec<Record>,
        key_fields: KeyFields,
    ) -> io::Result<RunMerger> {
        let mut sources: Vec<MergeSource> = Vec::with_capacity(runs.len() + 1);
        for run in runs {
            sources.push(MergeSource::Spilled(run.cursor()?));
        }
        if !tail.is_empty() {
            sources.push(MergeSource::Records(tail.into_iter()));
        }
        RunMerger::new(sources, key_fields)
    }

    fn pull(source: &mut MergeSource, key_fields: &[usize]) -> io::Result<Option<MergeHead>> {
        Ok(source.next()?.map(|record| MergeHead {
            key: Key::extract(&record, key_fields),
            record,
        }))
    }

    /// True when source `a`'s head must be emitted before source `b`'s.
    /// Exhausted sources always lose; equal keys go to the smaller index.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(ha), Some(hb)) => match ha.key.cmp(&hb.key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
        }
    }

    /// Plays the initial tournament below `node`, recording losers and
    /// returning the winner.  Nodes `>= k` are the implicit leaves.
    fn build_node(&mut self, node: usize) -> usize {
        let k = self.sources.len();
        if node >= k {
            return node - k;
        }
        let left = self.build_node(2 * node);
        let right = self.build_node(2 * node + 1);
        let (winner, loser) = if self.beats(left, right) {
            (left, right)
        } else {
            (right, left)
        };
        self.tree[node] = loser;
        winner
    }

    /// Replays the path from source `leaf`'s leaf to the root after its head
    /// changed.
    fn replay(&mut self, leaf: usize) {
        let k = self.sources.len();
        let mut winner = leaf;
        let mut node = (k + leaf) / 2;
        while node >= 1 {
            let loser = self.tree[node];
            if self.beats(loser, winner) {
                self.tree[node] = winner;
                winner = loser;
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }

    /// The next record with its extracted key, in global key order.
    pub fn next_entry(&mut self) -> io::Result<Option<(Key, Record)>> {
        if self.sources.is_empty() {
            return Ok(None);
        }
        let winner = self.tree[0];
        let Some(head) = self.heads[winner].take() else {
            return Ok(None);
        };
        self.heads[winner] = Self::pull(&mut self.sources[winner], &self.key_fields)?;
        self.replay(winner);
        Ok(Some((head.key, head.record)))
    }

    /// The next record in global key order.
    pub fn next_record(&mut self) -> io::Result<Option<Record>> {
        Ok(self.next_entry()?.map(|(_, record)| record))
    }

    /// Drains the merge into a vector (a linear pass — the sorted pieces are
    /// merged, never re-sorted).
    pub fn collect_into(mut self, out: &mut Vec<Record>) -> io::Result<()> {
        while let Some(record) = self.next_record()? {
            out.push(record);
        }
        Ok(())
    }

    /// Streams key groups off the merged sequence: `f` runs once per
    /// distinct key with all of the key's records, and only one group is in
    /// memory at a time — the out-of-core grouping behind sort-based
    /// strategies.  `f` may drain the group buffer to recycle records; it is
    /// cleared between groups either way.
    pub fn for_each_group(mut self, mut f: impl FnMut(&Key, &mut Vec<Record>)) -> io::Result<()> {
        let mut group: Vec<Record> = Vec::new();
        let mut group_key: Option<Key> = None;
        while let Some((key, record)) = self.next_entry()? {
            if group_key.as_ref() != Some(&key) {
                if let Some(finished) = group_key.take() {
                    f(&finished, &mut group);
                    group.clear();
                }
                group_key = Some(key);
            }
            group.push(record);
        }
        if let Some(finished) = group_key {
            f(&finished, &mut group);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::sort_by_key;

    /// A unique spill directory per test, under the system temp dir.
    fn test_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spinning-spill-test-{}-{name}", std::process::id()))
    }

    fn pages_of(records: &[Record]) -> Vec<Arc<RecordPage>> {
        let mut writer = PageWriter::with_page_bytes(64);
        for record in records {
            writer.push(record);
        }
        writer.finish()
    }

    #[test]
    fn budget_allows_and_shares() {
        assert!(MemoryBudget::unlimited().allows(usize::MAX));
        assert!(MemoryBudget::unlimited().is_unlimited());
        let b = MemoryBudget::bytes(100);
        assert!(b.allows(100));
        assert!(!b.allows(101));
        assert_eq!(b.share(4), MemoryBudget::bytes(25));
        assert_eq!(b.share(0), MemoryBudget::bytes(100));
        assert!(MemoryBudget::bytes(0).allows(0));
        assert!(!MemoryBudget::bytes(0).allows(1));
        assert!(MemoryBudget::unlimited().share(7).is_unlimited());
    }

    #[test]
    fn run_round_trips_records_and_deletes_its_file_on_drop() {
        let dir = test_dir("roundtrip");
        let records: Vec<Record> = (0..100).map(|i| Record::pair(i, i * 3)).collect();
        let run = write_run_in(&dir, &pages_of(&records), None).unwrap();
        assert_eq!(run.record_count(), 100);
        assert!(run.byte_len() > 0);
        assert!(run.page_count() > 1, "64-byte pages force several pages");
        assert!(run.sorted_by().is_none());
        let path = run.path().to_owned();
        assert!(path.exists());

        let mut cursor = run.cursor().unwrap();
        let mut read = Vec::new();
        let mut scratch = Record::empty();
        while cursor.next_into(&mut scratch).unwrap() {
            read.push(scratch.clone());
        }
        assert_eq!(read, records);

        // The cursor keeps the file alive past the handle; the last drop
        // removes it.
        drop(run);
        assert!(path.exists(), "open cursor must keep the run on disk");
        drop(cursor);
        assert!(!path.exists(), "dropping the last handle deletes the run");
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn sorted_flush_orders_the_run() {
        let dir = test_dir("sorted");
        let records: Vec<Record> = (0..200)
            .map(|i| Record::pair((i * 37) % 50 - 20, i))
            .collect();
        let run = write_sorted_run_in(&dir, &pages_of(&records), &[0]).unwrap();
        assert_eq!(run.sorted_by(), Some(&[0usize][..]));
        let mut read = Vec::new();
        let mut cursor = run.cursor().unwrap();
        while let Some(record) = cursor.next_record().unwrap() {
            read.push(record);
        }
        let mut oracle = records;
        sort_by_key(&mut oracle, &[0]);
        assert_eq!(read, oracle, "flush sort must equal the stable Value sort");
        drop(cursor);
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn zero_budget_spills_everything_and_unlimited_spills_nothing() {
        let dir = test_dir("budget");
        let records: Vec<Record> = (0..50).map(|i| Record::pair(i % 7, i)).collect();

        let spilling = SpillManager::in_dir(dir.clone(), MemoryBudget::bytes(0), None);
        let mut writer = spilling.writer();
        for record in &records {
            writer.push(record);
        }
        let out = writer.finish().unwrap();
        assert!(out.pages.is_empty(), "budget 0 leaves nothing in memory");
        assert!(!out.runs.is_empty());
        assert_eq!(out.stats.spilled_records, records.len());
        assert!(out.stats.spilled_bytes > 0);
        assert_eq!(out.stats.spilled_runs, out.runs.len());

        let unlimited = SpillManager::in_dir(dir.clone(), MemoryBudget::unlimited(), None);
        let mut writer = unlimited.writer();
        assert!(writer.is_empty());
        for record in &records {
            writer.push(record);
        }
        assert!(!writer.is_empty());
        let out = writer.finish().unwrap();
        assert!(out.runs.is_empty(), "unlimited budget never touches disk");
        assert_eq!(out.stats, SpillStats::default());
        assert_eq!(
            out.pages.iter().map(|p| p.record_count()).sum::<usize>(),
            records.len()
        );
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn budgeted_writer_preserves_the_multiset_across_pages_and_runs() {
        let dir = test_dir("multiset");
        let records: Vec<Record> = (0..300).map(|i| Record::pair(i % 13, i)).collect();
        let manager = SpillManager::in_dir(dir.clone(), MemoryBudget::bytes(512), Some(vec![0]))
            .with_page_bytes(256);
        let mut writer = manager.writer();
        for record in &records {
            writer.push(record);
        }
        let out = writer.finish().unwrap();
        assert!(out.runs.len() > 1, "512-byte budget forces several runs");
        let mut read: Vec<Record> = out
            .pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        for run in &out.runs {
            assert_eq!(run.sorted_by(), Some(&[0usize][..]));
            let mut cursor = run.cursor().unwrap();
            let mut previous: Option<i64> = None;
            while let Some(record) = cursor.next_record().unwrap() {
                if let Some(p) = previous {
                    assert!(p <= record.long(0), "run not sorted");
                }
                previous = Some(record.long(0));
                read.push(record);
            }
        }
        let mut expected = records;
        read.sort();
        expected.sort();
        assert_eq!(read, expected);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn page_credits_cap_in_memory_sealed_pages() {
        let dir = test_dir("page-credits");
        let records: Vec<Record> = (0..400).map(|i| Record::pair(i % 13, i)).collect();
        let manager = SpillManager::in_dir(dir.clone(), MemoryBudget::unlimited(), None)
            .with_page_bytes(64)
            .with_page_credits(Some(2));
        let mut writer = manager.writer();
        for record in &records {
            writer.push(record);
        }
        let out = writer.finish().unwrap();
        assert!(
            out.pages_high_water <= 2,
            "2 page credits must bound buffered sealed pages, saw {}",
            out.pages_high_water
        );
        assert!(out.runs.len() > 1, "tiny pages under 2 credits force runs");
        // The multiset is preserved across the in-memory pages and the runs.
        let mut read: Vec<Record> = out
            .pages
            .iter()
            .flat_map(|p| p.reader().map(|v| v.materialize()))
            .collect();
        for run in &out.runs {
            let mut cursor = run.cursor().unwrap();
            while let Some(record) = cursor.next_record().unwrap() {
                read.push(record);
            }
        }
        let mut expected = records;
        read.sort();
        expected.sort();
        assert_eq!(read, expected);

        // Without credits the same writer never touches disk.
        let unlimited = SpillManager::in_dir(dir.clone(), MemoryBudget::unlimited(), None)
            .with_page_bytes(64)
            .with_page_credits(None);
        let mut writer = unlimited.writer();
        for record in &expected {
            writer.push(record);
        }
        let out = writer.finish().unwrap();
        assert!(out.runs.is_empty());
        assert!(out.pages_high_water > 2, "unbounded writer buffers freely");
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn loser_tree_merge_equals_the_stable_sort_oracle() {
        let dir = test_dir("merge");
        for k in [1usize, 2, 3, 8, 17] {
            let input: Vec<Record> = (0..230)
                .map(|i| Record::pair((i * 31) % 11 - 5, i))
                .collect();
            // Contiguous chunks in input order; chunk i becomes source i, so
            // the index tiebreak reproduces the stable sort exactly.
            let chunk = input.len() / k + 1;
            let mut sources = Vec::new();
            for piece in input.chunks(chunk) {
                let mut sorted = piece.to_vec();
                sort_by_key(&mut sorted, &[0]);
                sources.push(MergeSource::Spilled(
                    write_sorted_records_in(&dir, &sorted, &[0])
                        .unwrap()
                        .cursor()
                        .unwrap(),
                ));
            }
            // Pad with empty sources up to k (they must simply never win).
            while sources.len() < k {
                sources.push(MergeSource::Records(Vec::new().into_iter()));
            }
            let mut merged = Vec::new();
            RunMerger::new(sources, vec![0])
                .unwrap()
                .collect_into(&mut merged)
                .unwrap();
            let mut oracle = input;
            sort_by_key(&mut oracle, &[0]);
            assert_eq!(merged, oracle, "k={k}");
        }
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn merge_groups_stream_one_key_at_a_time() {
        let dir = test_dir("groups");
        let mut a: Vec<Record> = (0..40).map(|i| Record::pair(i % 5, 1)).collect();
        let mut b: Vec<Record> = (0..60).map(|i| Record::pair(i % 5, 10)).collect();
        sort_by_key(&mut a, &[0]);
        sort_by_key(&mut b, &[0]);
        let run = write_sorted_records_in(&dir, &a, &[0]).unwrap();
        let merger = RunMerger::over_runs(std::slice::from_ref(&run), b, vec![0]).unwrap();
        let mut seen = Vec::new();
        merger
            .for_each_group(|key, group| {
                let sum: i64 = group.iter().map(|r| r.long(1)).sum();
                seen.push((key.values()[0].as_long(), group.len(), sum));
            })
            .unwrap();
        assert_eq!(
            seen,
            (0..5).map(|k| (k, 8 + 12, 8 + 120)).collect::<Vec<_>>(),
            "each key groups its records from both sources exactly once"
        );
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn empty_merger_and_empty_runs_are_harmless() {
        let mut merger = RunMerger::new(Vec::new(), vec![0]).unwrap();
        assert!(merger.next_record().unwrap().is_none());
        let merger = RunMerger::over_runs(&[], Vec::new(), vec![0]).unwrap();
        let mut out = Vec::new();
        merger.collect_into(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn budget_env_parsing() {
        // Only exercises the parser indirectly: from_env is None when the
        // variable is unset in the test environment.
        if std::env::var(MEMORY_BUDGET_ENV).is_err() {
            assert!(MemoryBudget::from_env().is_none());
        }
    }

    #[test]
    fn crc32_matches_the_known_ieee_vector() {
        // The canonical check value of the reflected IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// Asserts the error is a typed corruption error and returns the payload.
    fn expect_corrupt(error: io::Error) -> (PathBuf, u64) {
        let payload = error
            .get_ref()
            .and_then(|e| e.downcast_ref::<CorruptRun>())
            .unwrap_or_else(|| panic!("expected CorruptRun payload, got {error}"));
        (payload.path.clone(), payload.frame_offset)
    }

    #[test]
    fn bit_flip_in_a_page_is_rejected_by_the_checksum() {
        let dir = test_dir("bitflip");
        let records: Vec<Record> = (0..100).map(|i| Record::pair(i, i * 3)).collect();
        let run = write_run_in(&dir, &pages_of(&records), None).unwrap();
        // Flip one byte inside the first page's payload.
        let mut bytes = fs::read(run.path()).unwrap();
        let victim = 8 + FRAME_HEADER_BYTES + 3;
        bytes[victim] ^= 0x40;
        fs::write(run.path(), &bytes).unwrap();

        let mut cursor = run.cursor().unwrap();
        let error = loop {
            match cursor.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corrupt run read to completion"),
                Err(e) => break e,
            }
        };
        let (path, frame_offset) = expect_corrupt(error);
        assert_eq!(path, run.path());
        assert_eq!(frame_offset, 8, "the first frame is the corrupt one");
        assert!(crate::error::DataflowError::from(corrupt(&path, 8, "x"))
            .to_string()
            .contains("frame offset 8"));
        drop(cursor);
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn pre_checksum_files_are_rejected_not_misread() {
        let dir = test_dir("v1-reject");
        let records: Vec<Record> = (0..20).map(|i| Record::pair(i, i)).collect();
        let run = write_run_in(&dir, &pages_of(&records), None).unwrap();
        // Rewrite the file in the old v1 framing: no magic, 8-byte headers.
        let v2 = fs::read(run.path()).unwrap();
        let mut v1 = Vec::new();
        let mut offset = 8;
        while offset < v2.len() {
            let byte_len = u32::from_le_bytes(v2[offset..offset + 4].try_into().unwrap()) as usize;
            v1.extend_from_slice(&v2[offset..offset + 8]); // len + record count
            v1.extend_from_slice(&v2[offset + FRAME_HEADER_BYTES..][..byte_len]);
            offset += FRAME_HEADER_BYTES + byte_len;
        }
        fs::write(run.path(), &v1).unwrap();
        let error = run.cursor().expect_err("v1 framing must not open");
        let (_, frame_offset) = expect_corrupt(error);
        assert_eq!(frame_offset, 0, "rejected at the file header");
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn truncated_run_is_a_torn_frame_error() {
        let dir = test_dir("torn");
        let records: Vec<Record> = (0..100).map(|i| Record::pair(i, i)).collect();
        let run = write_run_in(&dir, &pages_of(&records), None).unwrap();
        let bytes = fs::read(run.path()).unwrap();
        fs::write(run.path(), &bytes[..bytes.len() - 5]).unwrap();
        let mut cursor = run.cursor().unwrap();
        let error = loop {
            match cursor.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("torn run read to completion"),
                Err(e) => break e,
            }
        };
        expect_corrupt(error);
        drop(cursor);
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn persistent_record_files_round_trip_and_validate_counts() {
        let dir = test_dir("persist");
        let path = dir.join("ckpt.run");
        let records: Vec<Record> = (0..500).map(|i| Record::pair(i, i * 7)).collect();
        let bytes = write_records_to(&path, &records).unwrap();
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        assert_eq!(
            read_records_from(&path, Some(records.len())).unwrap(),
            records
        );
        assert_eq!(read_records_from(&path, None).unwrap(), records);
        let error = read_records_from(&path, Some(records.len() + 1)).unwrap_err();
        expect_corrupt(error);
        // Empty files round-trip too (a checkpointed empty workset).
        let empty = dir.join("empty.run");
        write_records_to(&empty, &[]).unwrap();
        assert!(read_records_from(&empty, Some(0)).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_foreign_runs_and_old_checkpoints_only() {
        let dir = test_dir("gc");
        fs::create_dir_all(&dir).unwrap();
        let foreign = dir.join("run-99999-7.spill");
        let own = dir.join(format!("run-{}-7.spill", std::process::id()));
        let ckpt = dir.join("ckpt-12");
        let unrelated = dir.join("notes.txt");
        fs::write(&foreign, b"junk").unwrap();
        fs::write(&own, b"junk").unwrap();
        fs::create_dir_all(&ckpt).unwrap();
        fs::write(ckpt.join("MANIFEST"), b"junk").unwrap();
        fs::write(&unrelated, b"keep me").unwrap();

        // A generous max_age removes nothing (everything is brand new).
        assert_eq!(gc_stale_files(&dir, Duration::from_secs(3600)).unwrap(), 0);
        // Age zero removes the foreign run and the checkpoint dir, never our
        // own runs or unrelated files.
        assert_eq!(gc_stale_files(&dir, Duration::ZERO).unwrap(), 2);
        assert!(!foreign.exists());
        assert!(!ckpt.exists());
        assert!(own.exists());
        assert!(unrelated.exists());
        // Missing directories are fine.
        assert_eq!(
            gc_stale_files(&dir.join("absent"), Duration::ZERO).unwrap(),
            0
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_spill_write_faults_surface_through_finish() {
        let dir = test_dir("inject-write");
        let manager = SpillManager::in_dir(dir.clone(), MemoryBudget::bytes(0), None)
            .with_fault(FaultInjector::failing_nth(FaultSite::SpillWrite, 0));
        let mut writer = manager.writer();
        for i in 0..200 {
            writer.push(&Record::pair(i, i));
        }
        let error = writer.finish().expect_err("injected fault must surface");
        assert!(error.to_string().contains("injected"));
        let _ = fs::remove_dir_all(&dir);
    }
}
