//! Physical execution plans: shipping strategies per edge and local
//! strategies per operator.
//!
//! The logical plan ([`crate::plan::Plan`]) says *what* to compute; the
//! physical plan says *how*: whether an input is forwarded, hash-partitioned
//! or broadcast to the parallel operator instances, and whether an operator
//! uses hashing or sorting locally.  These are exactly the degrees of freedom
//! the paper's optimizer explores (Section 4.3).  A naive rule-based planner
//! lives here so the engine is usable stand-alone; the cost-based planner in
//! the `optimizer` crate produces the same [`PhysicalPlan`] type.

use crate::error::{DataflowError, Result};
use crate::key::KeyFields;
use crate::plan::{OperatorId, OperatorKind, Plan};
use std::collections::HashMap;
use std::fmt;

/// How the records of one input edge are distributed to the parallel
/// instances of the consuming operator.
///
/// The hash and range variants execute as paged exchanges; under a memory
/// budget ([`crate::exec::ExecConfig::with_memory_budget`]) their buffered
/// pages spill to disk as sorted runs ([`crate::spill`]), which the
/// sort-based local strategies consume by streaming merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipStrategy {
    /// Instance *i* of the producer feeds instance *i* of the consumer; no
    /// records cross partition boundaries ("fifo" in the paper's Figure 4).
    Forward,
    /// Records are hash-partitioned on the given key fields; records with the
    /// same key end up at the same consumer instance.
    PartitionHash(KeyFields),
    /// Records are range-partitioned on the given key fields: the executor
    /// samples the producers for an equi-depth splitter histogram, routes by
    /// binary search over the splitters, and delivers every consumer
    /// partition **sorted** on the key — so globally, partition *i* holds
    /// smaller keys than partition *i + 1* (see [`crate::range`]).
    PartitionRange(KeyFields),
    /// Every record is replicated to every consumer instance.
    Broadcast,
}

/// A global order delivered by an exchange: the concatenation of the
/// consumer partitions in partition order is sorted on `fields`.
///
/// This is the physical property the paper's optimizer reuses across the
/// loop boundary (Section 4.3): a range-partitioned, locally sorted
/// intermediate result satisfies downstream sort requirements (merge join,
/// sort-grouping) without a re-sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalOrder {
    /// Key fields the data is ordered by, in comparison order.
    pub fields: KeyFields,
    /// `true` for ascending order (the only order the range exchange
    /// currently produces; kept explicit so descending ranges can be added
    /// without changing the property model).
    pub ascending: bool,
}

impl GlobalOrder {
    /// An ascending order on `fields`.
    pub fn ascending(fields: KeyFields) -> Self {
        GlobalOrder {
            fields,
            ascending: true,
        }
    }
}

impl fmt::Display for GlobalOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}",
            self.fields,
            if self.ascending { "asc" } else { "desc" }
        )
    }
}

impl ShipStrategy {
    /// True if the strategy moves records between partitions (and therefore
    /// counts towards "network" traffic in the execution statistics).
    pub fn crosses_partitions(&self) -> bool {
        !matches!(self, ShipStrategy::Forward)
    }

    /// The partitioning key this strategy establishes at the receiver, if any.
    pub fn partition_key(&self) -> Option<&KeyFields> {
        match self {
            ShipStrategy::PartitionHash(k) | ShipStrategy::PartitionRange(k) => Some(k),
            _ => None,
        }
    }

    /// The global order this strategy delivers at the receiver, if any: only
    /// range partitioning produces sorted partitions.
    pub fn delivered_order(&self) -> Option<GlobalOrder> {
        match self {
            ShipStrategy::PartitionRange(k) => Some(GlobalOrder::ascending(k.clone())),
            _ => None,
        }
    }
}

impl fmt::Display for ShipStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipStrategy::Forward => write!(f, "forward"),
            ShipStrategy::PartitionHash(k) => write!(f, "hash-partition{k:?}"),
            ShipStrategy::PartitionRange(k) => write!(f, "range-partition{k:?}"),
            ShipStrategy::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// The operator's local (per-instance) algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalStrategy {
    /// No local algorithm needed (map, union, sink, source).
    None,
    /// Hash join building the hash table on the left input, probing with the
    /// right.
    HashJoinBuildLeft,
    /// Hash join building the hash table on the right input, probing with the
    /// left.
    HashJoinBuildRight,
    /// Sort both inputs on their keys and merge.
    SortMergeJoin,
    /// Hash-based grouping / aggregation.
    HashGroup,
    /// Sort-based grouping / aggregation.
    SortGroup,
    /// Block nested-loop cross product.
    NestedLoop,
}

impl LocalStrategy {
    /// True if the strategy materialises (dams) its first input before
    /// producing output; relevant for where the iteration runtime must insert
    /// extra dams (Section 4.2).
    pub fn materializes_first_input(&self) -> bool {
        matches!(
            self,
            LocalStrategy::HashJoinBuildLeft
                | LocalStrategy::SortMergeJoin
                | LocalStrategy::HashGroup
                | LocalStrategy::SortGroup
                | LocalStrategy::NestedLoop
        )
    }
}

/// The input slot of `kind` that can be *streamed* (consumed record by
/// record as upstream produces it) under the given local strategy, or `None`
/// when every input must be materialized before the operator can run.
///
/// This is the chain-fusion rule: a forward-shipped, uncached,
/// single-consumer edge into this slot can be fused into a pipelined chain
/// ([`crate::exec`]), because the operator never needs to see the whole input
/// at once *before consuming it* — it either emits per record (map, sink,
/// cross over a materialized build side, hash-join probe) or folds the stream
/// into its own bounded state (grouping).  Slots that the local algorithm
/// dams — both sides of a sort-merge join, the build side of a hash join,
/// every union/cogroup input — break the chain.
pub fn streaming_input_slot(kind: &OperatorKind, local: LocalStrategy) -> Option<usize> {
    match kind {
        OperatorKind::Map | OperatorKind::Sink { .. } => Some(0),
        // A grouping folds the stream into its group table/buffer; the edge
        // itself still streams (the dam is the operator's own state, not a
        // materialized input partition).
        OperatorKind::Reduce { .. } => Some(0),
        // Nested-loop cross materializes the (broadcast) right side and
        // streams the left.
        OperatorKind::Cross => Some(0),
        // Hash joins stream their probe side; a sort-merge join sorts both
        // sides and therefore dams both.
        OperatorKind::Match { .. } => match local {
            LocalStrategy::HashJoinBuildRight => Some(0),
            LocalStrategy::SortMergeJoin => None,
            _ => Some(1),
        },
        // Unions interleave inputs in slot order and cogroups dam both
        // sides; sources have no inputs.
        OperatorKind::Union | OperatorKind::CoGroup { .. } | OperatorKind::Source { .. } => None,
    }
}

impl fmt::Display for LocalStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocalStrategy::None => "none",
            LocalStrategy::HashJoinBuildLeft => "hash-join(build=left)",
            LocalStrategy::HashJoinBuildRight => "hash-join(build=right)",
            LocalStrategy::SortMergeJoin => "sort-merge-join",
            LocalStrategy::HashGroup => "hash-group",
            LocalStrategy::SortGroup => "sort-group",
            LocalStrategy::NestedLoop => "nested-loop",
        };
        write!(f, "{s}")
    }
}

/// Per-operator physical choices.
#[derive(Debug, Clone)]
pub struct PhysicalChoice {
    /// One shipping strategy per input edge, in input-slot order.
    pub input_ships: Vec<ShipStrategy>,
    /// The local algorithm.
    pub local: LocalStrategy,
    /// Per input edge: cache the post-exchange data so repeated executions of
    /// the same plan (iterations) skip re-shipping loop-invariant inputs
    /// (the paper's constant-data-path cache, Section 4.3).
    pub cache_inputs: Vec<bool>,
}

impl PhysicalChoice {
    /// A choice with all-forward shipping and no local strategy, sized for
    /// `inputs` input edges.
    pub fn forward(inputs: usize) -> Self {
        PhysicalChoice {
            input_ships: vec![ShipStrategy::Forward; inputs],
            local: LocalStrategy::None,
            cache_inputs: vec![false; inputs],
        }
    }
}

/// A fully decided physical plan: the logical plan plus one
/// [`PhysicalChoice`] per operator and a degree of parallelism.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The underlying logical plan.
    pub plan: Plan,
    /// Physical choices, keyed by operator id.
    pub choices: HashMap<OperatorId, PhysicalChoice>,
    /// Number of parallel instances each operator runs with.
    pub parallelism: usize,
}

impl PhysicalPlan {
    /// The physical choice for `id`; panics if the plan is missing a choice,
    /// which indicates a planner bug.
    pub fn choice(&self, id: OperatorId) -> &PhysicalChoice {
        self.choices
            .get(&id)
            .unwrap_or_else(|| panic!("no physical choice for operator {id:?}"))
    }

    /// Marks an input edge of `id` as cached across repeated executions.
    pub fn cache_input(&mut self, id: OperatorId, input_slot: usize) {
        if let Some(choice) = self.choices.get_mut(&id) {
            if input_slot < choice.cache_inputs.len() {
                choice.cache_inputs[input_slot] = true;
            }
        }
    }

    /// Renders the physical plan, including shipping and local strategies,
    /// as an indented tree (the textual analogue of the paper's Figure 4).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for sink in self.plan.sinks() {
            self.explain_rec(sink, 0, &mut out);
        }
        out
    }

    fn explain_rec(&self, id: OperatorId, depth: usize, out: &mut String) {
        let op = self.plan.operator(id);
        let choice = self.choice(id);
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [{}] local={}\n",
            op.name,
            op.kind.contract_name(),
            choice.local
        ));
        for (slot, &input) in op.inputs.iter().enumerate() {
            out.push_str(&"  ".repeat(depth + 1));
            let cached = if choice.cache_inputs[slot] {
                " CACHE"
            } else {
                ""
            };
            out.push_str(&format!("<- ship={}{}\n", choice.input_ships[slot], cached));
            self.explain_rec(input, depth + 1, out);
        }
    }
}

/// Produces a physical plan with straightforward rule-based choices:
/// partition on the contract's keys, hash-based local strategies, broadcast
/// the right side of cross products.  This mirrors what a dataflow system
/// without an optimizer (e.g. plain MapReduce) would do and serves as the
/// baseline the cost-based optimizer improves upon.
pub fn default_physical_plan(plan: &Plan, parallelism: usize) -> Result<PhysicalPlan> {
    if parallelism == 0 {
        return Err(DataflowError::InvalidPlan(
            "parallelism must be at least 1".into(),
        ));
    }
    plan.validate()?;
    let mut choices = HashMap::new();
    for op in plan.operators() {
        let choice = match &op.kind {
            OperatorKind::Source { .. } => PhysicalChoice::forward(0),
            OperatorKind::Map | OperatorKind::Sink { .. } => PhysicalChoice::forward(1),
            OperatorKind::Union => PhysicalChoice::forward(op.inputs.len()),
            OperatorKind::Reduce { key } => PhysicalChoice {
                input_ships: vec![ShipStrategy::PartitionHash(key.clone())],
                local: LocalStrategy::HashGroup,
                cache_inputs: vec![false],
            },
            OperatorKind::Match {
                left_key,
                right_key,
            } => PhysicalChoice {
                input_ships: vec![
                    ShipStrategy::PartitionHash(left_key.clone()),
                    ShipStrategy::PartitionHash(right_key.clone()),
                ],
                local: LocalStrategy::HashJoinBuildLeft,
                cache_inputs: vec![false, false],
            },
            OperatorKind::CoGroup {
                left_key,
                right_key,
                ..
            } => PhysicalChoice {
                input_ships: vec![
                    ShipStrategy::PartitionHash(left_key.clone()),
                    ShipStrategy::PartitionHash(right_key.clone()),
                ],
                local: LocalStrategy::SortMergeJoin,
                cache_inputs: vec![false, false],
            },
            OperatorKind::Cross => PhysicalChoice {
                input_ships: vec![ShipStrategy::Forward, ShipStrategy::Broadcast],
                local: LocalStrategy::NestedLoop,
                cache_inputs: vec![false, false],
            },
        };
        choices.insert(op.id, choice);
    }
    Ok(PhysicalPlan {
        plan: plan.clone(),
        choices,
        parallelism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts::{Collector, MapClosure, MatchClosure, ReduceClosure};
    use crate::record::Record;
    use std::sync::Arc;

    fn sample_plan() -> Plan {
        let mut plan = Plan::new();
        let vector = plan.source("vector", vec![Record::long_double(1, 1.0)]);
        let matrix = plan.source("matrix", vec![Record::triple(1, 1, 1.0)]);
        let join = plan.match_join(
            "join",
            vector,
            matrix,
            vec![0],
            vec![1],
            Arc::new(MatchClosure(
                |l: &Record, _r: &Record, out: &mut Collector| out.collect(l.clone()),
            )),
        );
        let agg = plan.reduce(
            "sum",
            join,
            vec![0],
            Arc::new(ReduceClosure(
                |_k: &_, g: &[Record], out: &mut Collector| out.collect(g[0].clone()),
            )),
        );
        plan.sink("out", agg);
        plan
    }

    #[test]
    fn default_plan_partitions_joins_and_reduces() {
        let plan = sample_plan();
        let phys = default_physical_plan(&plan, 4).unwrap();
        assert_eq!(phys.parallelism, 4);
        let join_id = OperatorId(2);
        let join_choice = phys.choice(join_id);
        assert_eq!(
            join_choice.input_ships[0],
            ShipStrategy::PartitionHash(vec![0])
        );
        assert_eq!(
            join_choice.input_ships[1],
            ShipStrategy::PartitionHash(vec![1])
        );
        assert_eq!(join_choice.local, LocalStrategy::HashJoinBuildLeft);
        let reduce_choice = phys.choice(OperatorId(3));
        assert_eq!(reduce_choice.local, LocalStrategy::HashGroup);
    }

    #[test]
    fn zero_parallelism_is_rejected() {
        let plan = sample_plan();
        assert!(default_physical_plan(&plan, 0).is_err());
    }

    #[test]
    fn map_uses_forward_shipping() {
        let mut plan = Plan::new();
        let src = plan.source("s", vec![]);
        let m = plan.map(
            "m",
            src,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        plan.sink("out", m);
        let phys = default_physical_plan(&plan, 2).unwrap();
        assert_eq!(phys.choice(m).input_ships[0], ShipStrategy::Forward);
        assert!(!phys.choice(m).input_ships[0].crosses_partitions());
    }

    #[test]
    fn cache_input_marks_edge() {
        let plan = sample_plan();
        let mut phys = default_physical_plan(&plan, 2).unwrap();
        phys.cache_input(OperatorId(2), 1);
        assert!(phys.choice(OperatorId(2)).cache_inputs[1]);
        assert!(!phys.choice(OperatorId(2)).cache_inputs[0]);
    }

    #[test]
    fn explain_shows_strategies() {
        let plan = sample_plan();
        let phys = default_physical_plan(&plan, 2).unwrap();
        let text = phys.explain();
        assert!(text.contains("hash-partition"));
        assert!(text.contains("hash-join"));
    }

    #[test]
    fn ship_strategy_partition_key_accessor() {
        assert_eq!(
            ShipStrategy::PartitionHash(vec![1]).partition_key(),
            Some(&vec![1])
        );
        assert_eq!(ShipStrategy::Broadcast.partition_key(), None);
        assert!(ShipStrategy::Broadcast.crosses_partitions());
    }

    #[test]
    fn only_range_partitioning_delivers_an_order() {
        assert_eq!(
            ShipStrategy::PartitionRange(vec![0]).delivered_order(),
            Some(GlobalOrder::ascending(vec![0]))
        );
        assert_eq!(ShipStrategy::PartitionHash(vec![0]).delivered_order(), None);
        assert_eq!(ShipStrategy::Forward.delivered_order(), None);
        assert_eq!(ShipStrategy::Broadcast.delivered_order(), None);
        let order = GlobalOrder::ascending(vec![0, 2]);
        assert!(order.ascending);
        assert_eq!(format!("{order}"), "[0, 2] asc");
    }

    #[test]
    fn local_strategy_materialization_flags() {
        assert!(LocalStrategy::HashJoinBuildLeft.materializes_first_input());
        assert!(!LocalStrategy::None.materializes_first_input());
        assert!(!LocalStrategy::HashJoinBuildRight.materializes_first_input());
    }
}
