//! Key extraction, hashing and comparison over record fields.
//!
//! Operators declare which fields form their key (e.g. a `Match` joins two
//! inputs on equal key field values, a `Reduce` groups by key).  The runtime
//! uses the same key definition for hash partitioning, so that records with
//! equal keys always end up in the same worker partition — the invariant that
//! the incremental-iteration runtime in `spinning-core` relies on for local
//! solution-set updates (Section 5.2 of the paper).

use crate::record::Record;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The positions of the key fields inside a record.
pub type KeyFields = Vec<usize>;

/// An owned, extracted key (the values of the key fields, in declaration
/// order).  Used as a hash-map key by the local strategies and by the
/// solution-set index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub Vec<Value>);

impl Key {
    /// Extracts the key of `record` according to `fields`.
    pub fn extract(record: &Record, fields: &[usize]) -> Key {
        Key(fields.iter().map(|&i| record.field(i).clone()).collect())
    }

    /// A single-field integer key; the common case for graph workloads.
    pub fn long(v: i64) -> Key {
        Key(vec![Value::Long(v)])
    }

    /// Borrow the key values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

/// Computes a stable 64-bit hash of the key fields of `record`.
pub fn hash_key(record: &Record, fields: &[usize]) -> u64 {
    let mut hasher = DefaultHasher::new();
    for &i in fields {
        record.field(i).hash(&mut hasher);
    }
    hasher.finish()
}

/// Computes the same hash as [`hash_key`] over an already-extracted key.
/// `hash_values(Key::extract(r, f).values()) == hash_key(r, f)` for all
/// records, which the partitioned solution-set index relies on.
pub fn hash_values(values: &[Value]) -> u64 {
    let mut hasher = DefaultHasher::new();
    for value in values {
        value.hash(&mut hasher);
    }
    hasher.finish()
}

/// Maps the key hash of `record` to a partition index in `0..parallelism`.
pub fn partition_for(record: &Record, fields: &[usize], parallelism: usize) -> usize {
    debug_assert!(parallelism > 0, "parallelism must be positive");
    (hash_key(record, fields) % parallelism as u64) as usize
}

/// Compares two records on their respective key fields (field-by-field, in
/// declaration order).  Used by the sort-based local strategies.
pub fn compare_keys(a: &Record, a_fields: &[usize], b: &Record, b_fields: &[usize]) -> Ordering {
    debug_assert_eq!(a_fields.len(), b_fields.len(), "key arity mismatch");
    for (&ia, &ib) in a_fields.iter().zip(b_fields) {
        let ord = a.field(ia).cmp(b.field(ib));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// True if the key fields of `a` equal the key fields of `b`.
pub fn keys_equal(a: &Record, a_fields: &[usize], b: &Record, b_fields: &[usize]) -> bool {
    compare_keys(a, a_fields, b, b_fields) == Ordering::Equal
}

/// Sorts records in place by their key fields; ties are left in input order
/// (stable sort), which keeps group contents deterministic for testing.
pub fn sort_by_key(records: &mut [Record], fields: &[usize]) {
    records.sort_by(|a, b| compare_keys(a, fields, b, fields));
}

/// Groups sorted records by key, returning `(start, end)` ranges of each
/// group.  The input must already be sorted by `fields`.
pub fn group_ranges(records: &[Record], fields: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < records.len() {
        let mut end = start + 1;
        while end < records.len() && keys_equal(&records[start], fields, &records[end], fields) {
            end += 1;
        }
        ranges.push((start, end));
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_single_and_composite_keys() {
        let r = Record::triple(7, 3, 0.5);
        assert_eq!(Key::extract(&r, &[0]), Key::long(7));
        assert_eq!(Key::extract(&r, &[1, 0]), Key(vec![Value::Long(3), Value::Long(7)]));
    }

    #[test]
    fn equal_keys_hash_identically() {
        let a = Record::pair(5, 10);
        let b = Record::triple(5, 99, 1.0);
        assert_eq!(hash_key(&a, &[0]), hash_key(&b, &[0]));
    }

    #[test]
    fn extracted_key_hash_matches_record_key_hash() {
        for v in 0..200i64 {
            let r = Record::triple(v, v * 3, 0.5);
            let key = Key::extract(&r, &[0, 1]);
            assert_eq!(hash_values(key.values()), hash_key(&r, &[0, 1]));
        }
    }

    #[test]
    fn partitioning_is_within_bounds_and_deterministic() {
        for v in 0..1000i64 {
            let r = Record::pair(v, 0);
            let p = partition_for(&r, &[0], 7);
            assert!(p < 7);
            assert_eq!(p, partition_for(&r, &[0], 7));
        }
    }

    #[test]
    fn compare_keys_orders_by_fields_in_order() {
        let a = Record::pair(1, 9);
        let b = Record::pair(1, 2);
        assert_eq!(compare_keys(&a, &[0], &b, &[0]), Ordering::Equal);
        assert_eq!(compare_keys(&a, &[0, 1], &b, &[0, 1]), Ordering::Greater);
        assert_eq!(compare_keys(&b, &[1], &a, &[1]), Ordering::Less);
    }

    #[test]
    fn group_ranges_splits_sorted_runs() {
        let mut records = vec![
            Record::pair(2, 0),
            Record::pair(1, 1),
            Record::pair(1, 2),
            Record::pair(3, 0),
            Record::pair(2, 5),
        ];
        sort_by_key(&mut records, &[0]);
        let ranges = group_ranges(&records, &[0]);
        assert_eq!(ranges, vec![(0, 2), (2, 4), (4, 5)]);
        assert_eq!(records[0].long(0), 1);
        assert_eq!(records[4].long(0), 3);
    }

    #[test]
    fn group_ranges_on_empty_input() {
        assert!(group_ranges(&[], &[0]).is_empty());
    }

    #[test]
    fn keys_can_join_across_different_positions() {
        // Match joins vector (pid at field 0) with matrix (pid at field 1).
        let vector = Record::long_double(4, 0.25);
        let matrix = Record::triple(9, 4, 0.5);
        assert!(keys_equal(&vector, &[0], &matrix, &[1]));
        assert!(!keys_equal(&vector, &[0], &matrix, &[0]));
    }
}
