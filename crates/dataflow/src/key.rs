//! Key extraction, hashing and comparison over record fields.
//!
//! Operators declare which fields form their key (e.g. a `Match` joins two
//! inputs on equal key field values, a `Reduce` groups by key).  The runtime
//! uses the same key definition for hash partitioning, so that records with
//! equal keys always end up in the same worker partition — the invariant that
//! the incremental-iteration runtime in `spinning-core` relies on for local
//! solution-set updates (Section 5.2 of the paper).
//!
//! # Hot-path design
//!
//! Record routing — deciding the target partition of a record, probing a join
//! table, updating the solution-set index — runs once per record per exchange
//! and dominates the cost of the iterative workloads, so this module is
//! built around two ideas:
//!
//! 1. **An inline key representation.**  [`Key`] is an enum: the dominant
//!    single-`i64` graph keys (vertex ids, component ids) are stored inline
//!    as [`Key::Long`] with *no heap allocation*; arbitrary composite keys
//!    fall back to a boxed slice ([`Key::Composite`]).  All comparisons,
//!    hashes and equality checks are defined over the *logical value
//!    sequence*, so the two representations of the same values are fully
//!    interchangeable (and [`Key::from_values`] normalises to the inline
//!    form where possible).
//!
//! 2. **A multiply-xor hasher.**  All key hashing goes through [`FxHasher`],
//!    an FxHash-style multiply-rotate-xor hasher (the rustc/Firefox design):
//!    a handful of ALU instructions per 8-byte word instead of SipHash's
//!    cryptographic rounds.  Partition routing ([`partition_for`],
//!    [`hash_key`]), the extracted-key hash ([`hash_values`],
//!    [`hash_of_key`]) and the join/group/solution-set hash maps
//!    ([`FxHashMap`]) all use the same function, preserving the invariant
//!    `hash_values(Key::extract(r, f).values()) == hash_key(r, f)` that the
//!    partitioned solution-set index relies on.  [`hash_key`] additionally
//!    short-circuits the single-long case so the common routing decision
//!    never touches a `Value` at all.
//!
//! The hash is *not* DoS-resistant — keys here come from the system's own
//! partitioning contract, not from untrusted network input, which is the
//! same trade-off timely/differential-dataflow and rustc make.

use crate::record::Record;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;

/// The positions of the key fields inside a record.
pub type KeyFields = Vec<usize>;

// ---------------------------------------------------------------------------
// Fx hashing
// ---------------------------------------------------------------------------

/// The FxHash multiplier (a 64-bit truncation of π's digits, as used by
/// rustc's `FxHasher`).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style multiply-rotate-xor hasher.
///
/// Deterministic (no random state), extremely cheap, and good enough
/// dispersion for the low bits used by `HashMap` and for the modulo used by
/// [`partition_for`].  Used consistently for partitioning, join and group
/// tables, and the solution-set index.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic across runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` hashing with [`FxHasher`] — the map type of every hash table
/// on the record hot path (join builds, group tables, the solution-set
/// index, the cached constant-input index).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// The Fx hash of a single `i64` key value, identical to hashing
/// `Value::Long(v)` through [`FxHasher`].  This is the innermost routing
/// operation for graph workloads; it compiles to three multiplies.
#[inline(always)]
pub fn hash_long(v: i64) -> u64 {
    // Must stay consistent with `Value::hash`: type tag, then payload.
    let mut h = FxHasher::default();
    h.write_u8(crate::value::LONG_TYPE_TAG);
    h.write_i64(v);
    h.finish()
}

/// Computes a stable 64-bit hash of the key fields of `record`.
#[inline]
pub fn hash_key(record: &Record, fields: &[usize]) -> u64 {
    // Fast path: a single long key field — no Value dispatch in the loop.
    if let [field] = fields {
        if let Value::Long(v) = record.field(*field) {
            return hash_long(*v);
        }
    }
    let mut hasher = FxHasher::default();
    for &i in fields {
        record.field(i).hash(&mut hasher);
    }
    hasher.finish()
}

/// Computes the same hash as [`hash_key`] over an already-extracted key.
/// `hash_values(Key::extract(r, f).values()) == hash_key(r, f)` for all
/// records, which the partitioned solution-set index relies on.
#[inline]
pub fn hash_values(values: &[Value]) -> u64 {
    if let [Value::Long(v)] = values {
        return hash_long(*v);
    }
    let mut hasher = FxHasher::default();
    for value in values {
        value.hash(&mut hasher);
    }
    hasher.finish()
}

/// Computes the same hash as [`hash_key`] / [`hash_values`] directly over a
/// [`Key`], without materialising a value slice.
#[inline]
pub fn hash_of_key(key: &Key) -> u64 {
    match key {
        Key::Long(v) => hash_long(*v),
        Key::Composite(values) => hash_values(values),
    }
}

/// Maps the key hash of `record` to a partition index in `0..parallelism`.
#[inline]
pub fn partition_for(record: &Record, fields: &[usize], parallelism: usize) -> usize {
    debug_assert!(parallelism > 0, "parallelism must be positive");
    (hash_key(record, fields) % parallelism as u64) as usize
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// An owned, extracted key (the values of the key fields, in declaration
/// order).  Used as a hash-map key by the local strategies and by the
/// solution-set index.
///
/// The single-`i64` case — the identifying key of every graph workload — is
/// stored inline with no heap allocation.  Equality, ordering and hashing
/// are defined over the logical value sequence, so a [`Key::Long`] and a
/// [`Key::Composite`] holding the same single `Value::Long` behave
/// identically (construction through [`Key::extract`] / [`Key::from_values`]
/// normalises to the inline form).
#[derive(Debug, Clone)]
pub enum Key {
    /// A single `i64` key value, stored inline.
    Long(i64),
    /// Any other key shape: composite keys and non-long single fields.
    Composite(Box<[Value]>),
}

impl Key {
    /// Extracts the key of `record` according to `fields`.
    #[inline]
    pub fn extract(record: &Record, fields: &[usize]) -> Key {
        if let [field] = fields {
            if let Value::Long(v) = record.field(*field) {
                return Key::Long(*v);
            }
        }
        Key::Composite(fields.iter().map(|&i| record.field(i).clone()).collect())
    }

    /// A single-field integer key; the common case for graph workloads.
    #[inline]
    pub fn long(v: i64) -> Key {
        Key::Long(v)
    }

    /// Builds a key from owned values, normalising a single `Value::Long`
    /// into the inline representation.
    pub fn from_values(values: Vec<Value>) -> Key {
        if let [Value::Long(v)] = values.as_slice() {
            return Key::Long(*v);
        }
        Key::Composite(values.into_boxed_slice())
    }

    /// Borrow the key values.  Returns a cheap guard that dereferences to
    /// `&[Value]`; for inline long keys the single value lives on the
    /// caller's stack.
    #[inline]
    pub fn values(&self) -> KeyValues<'_> {
        match self {
            Key::Long(v) => KeyValues::Inline([Value::Long(*v)]),
            Key::Composite(values) => KeyValues::Slice(values),
        }
    }

    /// The key value as an `i64` if this is a single-long key.
    #[inline]
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Key::Long(v) => Some(*v),
            Key::Composite(values) => match values.as_ref() {
                [Value::Long(v)] => Some(*v),
                _ => None,
            },
        }
    }

    /// Number of key fields.
    #[inline]
    pub fn arity(&self) -> usize {
        match self {
            Key::Long(_) => 1,
            Key::Composite(values) => values.len(),
        }
    }
}

/// A borrow of a key's values, dereferencing to `&[Value]`.
///
/// [`Key::Long`] stores its value as a bare `i64`, so borrowing it as a
/// `&[Value]` needs one stack-allocated `Value`; this guard owns it.
#[derive(Debug)]
pub enum KeyValues<'a> {
    /// The materialised single value of an inline long key.
    Inline([Value; 1]),
    /// A direct borrow of a composite key's values.
    Slice(&'a [Value]),
}

impl Deref for KeyValues<'_> {
    type Target = [Value];

    #[inline]
    fn deref(&self) -> &[Value] {
        match self {
            KeyValues::Inline(one) => one,
            KeyValues::Slice(values) => values,
        }
    }
}

impl PartialEq for Key {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Key::Long(a), Key::Long(b)) => a == b,
            (a, b) => *a.values() == *b.values(),
        }
    }
}

impl Eq for Key {}

impl Hash for Key {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Key::Long(v) => {
                // Identical byte stream to `Value::Long(v).hash(state)`.
                state.write_u8(crate::value::LONG_TYPE_TAG);
                state.write_i64(*v);
            }
            Key::Composite(values) => {
                for value in values.iter() {
                    value.hash(state);
                }
            }
        }
    }
}

impl PartialOrd for Key {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Key::Long(a), Key::Long(b)) => a.cmp(b),
            (a, b) => a.values().cmp(&*b.values()),
        }
    }
}

// ---------------------------------------------------------------------------
// Record-level key comparison and grouping
// ---------------------------------------------------------------------------

/// Compares two records on their respective key fields (field-by-field, in
/// declaration order).  Used by the sort-based local strategies.
pub fn compare_keys(a: &Record, a_fields: &[usize], b: &Record, b_fields: &[usize]) -> Ordering {
    debug_assert_eq!(a_fields.len(), b_fields.len(), "key arity mismatch");
    for (&ia, &ib) in a_fields.iter().zip(b_fields) {
        let ord = a.field(ia).cmp(b.field(ib));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// True if the key fields of `a` equal the key fields of `b`.
pub fn keys_equal(a: &Record, a_fields: &[usize], b: &Record, b_fields: &[usize]) -> bool {
    compare_keys(a, a_fields, b, b_fields) == Ordering::Equal
}

/// Sorts records in place by their key fields; ties are left in input order
/// (stable sort), which keeps group contents deterministic for testing.
pub fn sort_by_key(records: &mut [Record], fields: &[usize]) {
    records.sort_by(|a, b| compare_keys(a, fields, b, fields));
}

/// Groups sorted records by key, returning `(start, end)` ranges of each
/// group.  The input must already be sorted by `fields`.
pub fn group_ranges(records: &[Record], fields: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < records.len() {
        let mut end = start + 1;
        while end < records.len() && keys_equal(&records[start], fields, &records[end], fields) {
            end += 1;
        }
        ranges.push((start, end));
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_single_and_composite_keys() {
        let r = Record::triple(7, 3, 0.5);
        assert_eq!(Key::extract(&r, &[0]), Key::long(7));
        assert_eq!(
            Key::extract(&r, &[1, 0]),
            Key::from_values(vec![Value::Long(3), Value::Long(7)])
        );
    }

    #[test]
    fn single_long_extraction_is_inline() {
        let r = Record::pair(42, 0);
        assert!(matches!(Key::extract(&r, &[0]), Key::Long(42)));
        // A single non-long field falls back to the composite form.
        let r = Record::long_double(1, 0.5);
        assert!(matches!(Key::extract(&r, &[1]), Key::Composite(_)));
    }

    #[test]
    fn inline_and_composite_representations_are_interchangeable() {
        let fast = Key::Long(9);
        let slow = Key::Composite(vec![Value::Long(9)].into_boxed_slice());
        assert_eq!(fast, slow);
        assert_eq!(fast.cmp(&slow), Ordering::Equal);
        assert_eq!(hash_of_key(&fast), hash_of_key(&slow));
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        fast.hash(&mut a);
        slow.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        // from_values normalises.
        assert!(matches!(
            Key::from_values(vec![Value::Long(9)]),
            Key::Long(9)
        ));
    }

    #[test]
    fn key_accessors() {
        assert_eq!(Key::long(5).as_long(), Some(5));
        assert_eq!(Key::from_values(vec![Value::Double(1.0)]).as_long(), None);
        assert_eq!(Key::long(5).arity(), 1);
        assert_eq!(
            Key::from_values(vec![Value::Long(1), Value::Long(2)]).arity(),
            2
        );
        assert_eq!(Key::long(5).values()[0], Value::Long(5));
    }

    #[test]
    fn equal_keys_hash_identically() {
        let a = Record::pair(5, 10);
        let b = Record::triple(5, 99, 1.0);
        assert_eq!(hash_key(&a, &[0]), hash_key(&b, &[0]));
    }

    #[test]
    fn extracted_key_hash_matches_record_key_hash() {
        for v in 0..200i64 {
            let r = Record::triple(v, v * 3, 0.5);
            let key = Key::extract(&r, &[0, 1]);
            assert_eq!(hash_values(&key.values()), hash_key(&r, &[0, 1]));
            assert_eq!(hash_of_key(&key), hash_key(&r, &[0, 1]));
            let single = Key::extract(&r, &[0]);
            assert_eq!(hash_of_key(&single), hash_key(&r, &[0]));
            assert_eq!(hash_long(v), hash_key(&r, &[0]));
        }
    }

    #[test]
    fn fast_and_generic_hash_paths_agree_for_all_value_types() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Long(-3),
            Value::Double(2.25),
            Value::Text("hello world, longer than eight bytes".into()),
        ];
        for v in values {
            let r = Record::new(vec![v.clone()]);
            // hash_key's fast path (longs) and generic path must agree with
            // hash_values for every type.
            assert_eq!(hash_key(&r, &[0]), hash_values(std::slice::from_ref(&v)));
        }
    }

    #[test]
    fn partitioning_is_within_bounds_and_deterministic() {
        for v in 0..1000i64 {
            let r = Record::pair(v, 0);
            let p = partition_for(&r, &[0], 7);
            assert!(p < 7);
            assert_eq!(p, partition_for(&r, &[0], 7));
        }
    }

    #[test]
    fn fx_partitioning_spreads_sequential_keys() {
        // Sequential vertex ids must not all land in one partition.
        let mut counts = [0usize; 8];
        for v in 0..10_000i64 {
            counts[partition_for(&Record::pair(v, 0), &[0], 8)] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(
                c > 500 && c < 3000,
                "partition {p} got {c} of 10000 sequential keys: {counts:?}"
            );
        }
    }

    #[test]
    fn compare_keys_orders_by_fields_in_order() {
        let a = Record::pair(1, 9);
        let b = Record::pair(1, 2);
        assert_eq!(compare_keys(&a, &[0], &b, &[0]), Ordering::Equal);
        assert_eq!(compare_keys(&a, &[0, 1], &b, &[0, 1]), Ordering::Greater);
        assert_eq!(compare_keys(&b, &[1], &a, &[1]), Ordering::Less);
    }

    #[test]
    fn group_ranges_splits_sorted_runs() {
        let mut records = vec![
            Record::pair(2, 0),
            Record::pair(1, 1),
            Record::pair(1, 2),
            Record::pair(3, 0),
            Record::pair(2, 5),
        ];
        sort_by_key(&mut records, &[0]);
        let ranges = group_ranges(&records, &[0]);
        assert_eq!(ranges, vec![(0, 2), (2, 4), (4, 5)]);
        assert_eq!(records[0].long(0), 1);
        assert_eq!(records[4].long(0), 3);
    }

    #[test]
    fn group_ranges_on_empty_input() {
        assert!(group_ranges(&[], &[0]).is_empty());
    }

    #[test]
    fn keys_can_join_across_different_positions() {
        // Match joins vector (pid at field 0) with matrix (pid at field 1).
        let vector = Record::long_double(4, 0.25);
        let matrix = Record::triple(9, 4, 0.5);
        assert!(keys_equal(&vector, &[0], &matrix, &[1]));
        assert!(!keys_equal(&vector, &[0], &matrix, &[0]));
    }

    #[test]
    fn fx_hashmap_round_trips_keys() {
        let mut map: FxHashMap<Key, i64> = FxHashMap::default();
        for v in 0..100 {
            map.insert(Key::long(v), v * 2);
        }
        map.insert(
            Key::from_values(vec![Value::Long(1), Value::Text("x".into())]),
            -1,
        );
        for v in 0..100 {
            assert_eq!(map[&Key::long(v)], v * 2);
            // Lookup through the composite representation must hit the same
            // entry.
            assert_eq!(
                map[&Key::Composite(vec![Value::Long(v)].into_boxed_slice())],
                v * 2
            );
        }
    }
}
