//! The scalar value model of the dataflow engine.
//!
//! The engine is record-oriented, in the spirit of the PACT record model used
//! by Stratosphere: a [`Record`](crate::record::Record) is a short sequence of
//! [`Value`]s, and operators address key fields by position.  Keeping the
//! value model small and copy-friendly keeps record routing (partitioning,
//! broadcasting) cheap, which matters because the iterative workloads of the
//! paper ship hundreds of millions of records between worker partitions.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar value stored inside a [`Record`](crate::record::Record).
///
/// The engine intentionally supports only the handful of types the paper's
/// workloads need (vertex ids, component ids, ranks, transition probabilities
/// and small labels).  `Double` values are totally ordered and hashable via
/// their bit pattern so that they can participate in keys, mirroring how
/// Stratosphere treats all fields as binary-comparable serialized data.
#[derive(Debug, Clone)]
pub enum Value {
    /// The absent value.
    Null,
    /// A boolean flag (used e.g. by the simulated-incremental baseline).
    Bool(bool),
    /// A 64-bit signed integer; vertex ids and component ids use this.
    Long(i64),
    /// A 64-bit float; ranks and transition probabilities use this.
    Double(f64),
    /// A small string label.
    Text(String),
}

/// The type tag of [`Value::Long`], shared with the key-hashing fast path in
/// [`crate::key`] so the inline-long hash stays byte-identical to the generic
/// `Value::hash` stream.
pub(crate) const LONG_TYPE_TAG: u8 = 2;

impl Value {
    /// Returns the contained integer, panicking with a descriptive message if
    /// the value has a different type.  Operator UDFs use this accessor when
    /// the plan guarantees the field type.
    #[inline]
    pub fn as_long(&self) -> i64 {
        match self {
            Value::Long(v) => *v,
            other => panic!("expected Long value, found {other:?}"),
        }
    }

    /// Returns the contained float, panicking if the value is not a `Double`.
    #[inline]
    pub fn as_double(&self) -> f64 {
        match self {
            Value::Double(v) => *v,
            Value::Long(v) => *v as f64,
            other => panic!("expected Double value, found {other:?}"),
        }
    }

    /// Returns the contained boolean, panicking if the value is not a `Bool`.
    #[inline]
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool value, found {other:?}"),
        }
    }

    /// Returns the contained string slice, panicking if the value is not text.
    #[inline]
    pub fn as_text(&self) -> &str {
        match self {
            Value::Text(v) => v.as_str(),
            other => panic!("expected Text value, found {other:?}"),
        }
    }

    /// True if the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A stable small integer identifying the type, used for cross-type
    /// ordering and hashing.
    #[inline]
    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Long(_) => LONG_TYPE_TAG,
            Value::Double(_) => 3,
            Value::Text(_) => 4,
        }
    }

    /// The **exact** serialized width of this value in bytes under the binary
    /// page format of [`crate::page`] (one tag byte plus the payload; text
    /// adds a 4-byte length).  Used by the optimizer's cost model, the
    /// runtime's shipped-bytes counter, and the page writer's fit check.
    pub fn estimated_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Long(_) => 9,
            Value::Double(_) => 9,
            Value::Text(s) => 1 + 4 + s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Long(a), Value::Long(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_tag());
        match self {
            Value::Null => {}
            Value::Bool(v) => v.hash(state),
            Value::Long(v) => v.hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::Text(v) => v.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Long(a), Value::Long(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            // Cross-type comparisons fall back to the type tag so that sorting
            // heterogeneous columns is total and deterministic.
            (a, b) => a.type_tag().cmp(&b.type_tag()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Long(i64::from(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Long(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn long_accessor_and_conversion() {
        let v: Value = 42i64.into();
        assert_eq!(v.as_long(), 42);
        assert_eq!(v.as_double(), 42.0);
        assert!(!v.is_null());
    }

    #[test]
    fn double_equality_is_bitwise() {
        assert_eq!(Value::Double(1.5), Value::Double(1.5));
        assert_ne!(Value::Double(0.0), Value::Double(-0.0));
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
    }

    #[test]
    fn ordering_within_types_is_natural() {
        assert!(Value::Long(3) < Value::Long(7));
        assert!(Value::Double(1.0) < Value::Double(2.0));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
    }

    #[test]
    fn ordering_across_types_uses_type_tag() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Long(0));
        assert!(Value::Long(i64::MAX) < Value::Double(f64::NEG_INFINITY));
    }

    #[test]
    fn hashing_is_consistent_with_equality() {
        let a = Value::Double(2.25);
        let b = Value::Double(2.25);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn estimated_bytes_reflects_payload() {
        assert_eq!(Value::Long(1).estimated_bytes(), 9);
        assert_eq!(Value::Double(0.5).estimated_bytes(), 9);
        assert_eq!(Value::Bool(true).estimated_bytes(), 2);
        assert_eq!(Value::Text("abcd".into()).estimated_bytes(), 9);
        assert_eq!(Value::Null.estimated_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "expected Long")]
    fn wrong_accessor_panics() {
        Value::Text("x".into()).as_long();
    }

    #[test]
    fn display_renders_scalars() {
        assert_eq!(Value::Long(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
