//! The parallel executor.
//!
//! The executor runs a [`PhysicalPlan`] on a shared-nothing set of worker
//! partitions; each operator's local phase runs one task per partition on the
//! process-wide persistent worker pool ([`spinning_pool::global`]), so
//! scheduling a partition costs a deque push, not a thread spawn.  Each
//! worker partition plays the role of one cluster node in the paper's setup;
//! records that move between partitions during an exchange are counted as
//! "shipped" (network) records in the [`ExecutionStats`].
//!
//! The executor is a *materializing* executor: every operator fully consumes
//! its (exchanged) inputs and materialises its output before downstream
//! operators run.  This corresponds to a plan in which every edge is a dam,
//! which is always safe for the iteration execution strategies of Sections
//! 4.2 and 5.3 (no operator can ever participate in two iterations
//! simultaneously).  Pipelined/asynchronous execution is provided where it
//! matters for the paper's claims — the microstep execution mode of the
//! workset iteration in the `spinning-core` crate.

use crate::contracts::{Collector, Udf};
use crate::error::{DataflowError, Result};
use crate::key::{group_ranges, partition_for, sort_by_key, FxHashMap, Key};
use crate::physical::{LocalStrategy, PhysicalPlan, ShipStrategy};
use crate::plan::{Operator, OperatorId, OperatorKind};
use crate::record::Record;
use crate::stats::{ExecutionStats, OperatorStats};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The records held by one worker partition.
pub type Partition = Vec<Record>;
/// One partition per parallel instance.
pub type Partitions = Vec<Partition>;

/// Cache of post-exchange inputs, keyed by (consumer operator, input slot).
///
/// The iteration runtime passes the same cache to every execution of the step
/// plan; edges on the constant data path that the optimizer marked with
/// `cache_inputs` are shipped once and then served from here (Section 4.3).
#[derive(Debug, Default)]
pub struct IntermediateCache {
    entries: HashMap<(OperatorId, usize), Arc<Partitions>>,
}

impl IntermediateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached edges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached edges.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The result of one plan execution: the contents of every sink plus the
/// execution statistics.
#[derive(Debug)]
pub struct ExecutionResult {
    sink_outputs: HashMap<String, Arc<Partitions>>,
    /// Counters collected while executing.
    pub stats: ExecutionStats,
}

impl ExecutionResult {
    /// All records delivered to the sink `name`, flattened across partitions.
    ///
    /// Borrows the result, so the records are cloned; callers that own the
    /// [`ExecutionResult`] and only need one sink should prefer
    /// [`ExecutionResult::into_sink`], which moves the records out.
    pub fn sink(&self, name: &str) -> Result<Vec<Record>> {
        self.sink_partitions(name)
            .map(|parts| parts.iter().flatten().cloned().collect())
    }

    /// Consumes the result and moves the records of sink `name` out without
    /// copying them (unless the sink's partitions are still shared, e.g.
    /// through a clone of [`ExecutionResult::sink_partitions`]).
    pub fn into_sink(mut self, name: &str) -> Result<Vec<Record>> {
        let parts = self
            .sink_outputs
            .remove(name)
            .ok_or_else(|| DataflowError::UnknownSink(name.to_owned()))?;
        match Arc::try_unwrap(parts) {
            Ok(parts) => {
                let total = parts.iter().map(Vec::len).sum();
                let mut records = Vec::with_capacity(total);
                for part in parts {
                    records.extend(part);
                }
                Ok(records)
            }
            Err(shared) => Ok(shared.iter().flatten().cloned().collect()),
        }
    }

    /// True if the sink `name` received no records (without touching them).
    pub fn sink_is_empty(&self, name: &str) -> Result<bool> {
        self.sink_partitions(name)
            .map(|parts| parts.iter().all(Vec::is_empty))
    }

    /// The per-partition records delivered to the sink `name`.
    pub fn sink_partitions(&self, name: &str) -> Result<Arc<Partitions>> {
        self.sink_outputs
            .get(name)
            .cloned()
            .ok_or_else(|| DataflowError::UnknownSink(name.to_owned()))
    }

    /// Names of all sinks that produced output.
    pub fn sink_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sink_outputs.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Executes physical plans.
#[derive(Debug, Default, Clone)]
pub struct Executor;

impl Executor {
    /// Creates an executor.
    pub fn new() -> Self {
        Executor
    }

    /// Executes the plan once, without any loop-invariant caching.
    pub fn execute(&self, physical: &PhysicalPlan) -> Result<ExecutionResult> {
        let mut cache = IntermediateCache::new();
        self.execute_with_cache(physical, &mut cache)
    }

    /// Executes the plan, serving edges marked `cache_inputs` from (and
    /// populating them into) `cache`.
    pub fn execute_with_cache(
        &self,
        physical: &PhysicalPlan,
        cache: &mut IntermediateCache,
    ) -> Result<ExecutionResult> {
        let start = Instant::now();
        let plan = &physical.plan;
        let order = plan.validate()?;
        // A hand-built physical plan can carry parallelism 0; reject it here
        // instead of clamping silently (or panicking on a modulo-by-zero
        // deep inside `partition_for`).
        let parallelism = physical.parallelism;
        if parallelism == 0 {
            return Err(DataflowError::InvalidPlan(
                "parallelism must be at least 1".into(),
            ));
        }

        let mut outputs: HashMap<OperatorId, Arc<Partitions>> = HashMap::new();
        let mut sink_outputs: HashMap<String, Arc<Partitions>> = HashMap::new();
        let mut stats = ExecutionStats::new();

        // How many input edges still need each operator's output.  Once the
        // last consumer has taken it, the output is removed from `outputs`
        // and — if nothing else (sink results, the cache) shares it — the
        // exchange *moves* the records instead of cloning them.
        let mut remaining_uses = vec![0usize; plan.len()];
        for op in plan.operators() {
            for input in &op.inputs {
                remaining_uses[input.0] += 1;
            }
        }

        for id in order {
            let op = plan.operator(id);
            let choice = physical.choice(id);
            let op_start = Instant::now();

            // 1. Sources produce their partitioned data directly.
            if let OperatorKind::Source { data } = &op.kind {
                let parts = split_into_partitions(data, parallelism);
                let produced: usize = parts.iter().map(Vec::len).sum();
                outputs.insert(id, Arc::new(parts));
                stats.operators.push(OperatorStats {
                    name: op.name.clone(),
                    contract: op.kind.contract_name().to_owned(),
                    records_in: 0,
                    records_out: produced,
                    elapsed: op_start.elapsed(),
                });
                continue;
            }

            // 2. Exchange (or fetch from cache) each input edge.
            let mut prepared: Vec<Arc<Partitions>> = Vec::with_capacity(op.inputs.len());
            for (slot, &input) in op.inputs.iter().enumerate() {
                let cache_key = (id, slot);
                // This edge consumes one use of the producer's output,
                // whether it is served from the cache or exchanged.
                let last_use = remaining_uses[input.0] == 1;
                remaining_uses[input.0] = remaining_uses[input.0].saturating_sub(1);
                if choice.cache_inputs[slot] {
                    if let Some(cached) = cache.entries.get(&cache_key) {
                        stats.cache_hits += 1;
                        prepared.push(Arc::clone(cached));
                        if last_use {
                            outputs.remove(&input);
                        }
                        continue;
                    }
                }
                let producer_out = if last_use {
                    outputs.remove(&input)
                } else {
                    outputs.get(&input).cloned()
                }
                .ok_or_else(|| {
                    DataflowError::ExecutionFailed(format!(
                        "input {} of '{}' has not produced output",
                        input.0, op.name
                    ))
                })?;
                let ship = &choice.input_ships[slot];
                // The producer's partitions can be consumed in place when no
                // one else holds them (no other pending consumer, not a sink
                // result, not cached).
                let exchanged = match Arc::try_unwrap(producer_out) {
                    Ok(owned) => exchange_owned(owned, ship, parallelism, &mut stats),
                    Err(shared) => exchange(&shared, ship, parallelism, &mut stats),
                };
                let exchanged = Arc::new(exchanged);
                if choice.cache_inputs[slot] {
                    cache.entries.insert(cache_key, Arc::clone(&exchanged));
                }
                prepared.push(exchanged);
            }

            // 3. Run the local phase, one pool task per partition.  The
            //    persistent worker pool is shared process-wide, so an
            //    operator's parallel region costs a deque push per partition
            //    instead of a round of thread spawns.
            let local = choice.local;
            let mut result_parts: Vec<Partition> = Vec::with_capacity(parallelism);
            let mut records_in_total = 0usize;
            if parallelism == 1 {
                let inputs: Vec<&Partition> = prepared.iter().map(|parts| &parts[0]).collect();
                let (records_in, out) = run_local(op, local, &inputs);
                records_in_total += records_in;
                result_parts.push(out);
            } else {
                let mut per_partition: Vec<Option<(usize, Vec<Record>)>> =
                    (0..parallelism).map(|_| None).collect();
                spinning_pool::global().scope(|scope| {
                    for (p, slot) in per_partition.iter_mut().enumerate() {
                        let prepared_ref = &prepared;
                        scope.spawn(move || {
                            let inputs: Vec<&Partition> =
                                prepared_ref.iter().map(|parts| &parts[p]).collect();
                            *slot = Some(run_local(op, local, &inputs));
                        });
                    }
                });
                for slot in per_partition {
                    let (records_in, out) = slot.expect("pool ran every partition task");
                    records_in_total += records_in;
                    result_parts.push(out);
                }
            }

            let produced: usize = result_parts.iter().map(Vec::len).sum();
            let result_parts = Arc::new(result_parts);
            if let OperatorKind::Sink { name } = &op.kind {
                sink_outputs.insert(name.clone(), Arc::clone(&result_parts));
            }
            outputs.insert(id, result_parts);
            stats.operators.push(OperatorStats {
                name: op.name.clone(),
                contract: op.kind.contract_name().to_owned(),
                records_in: records_in_total,
                records_out: produced,
                elapsed: op_start.elapsed(),
            });
        }

        stats.elapsed = start.elapsed();
        Ok(ExecutionResult {
            sink_outputs,
            stats,
        })
    }
}

/// Splits source data into contiguous chunks, one per partition.
fn split_into_partitions(data: &Arc<Vec<Record>>, parallelism: usize) -> Partitions {
    let mut parts: Partitions = vec![Vec::new(); parallelism];
    if data.is_empty() {
        return parts;
    }
    let chunk = data.len().div_ceil(parallelism);
    for (i, record) in data.iter().enumerate() {
        parts[(i / chunk).min(parallelism - 1)].push(record.clone());
    }
    parts
}

/// Target buffers for a hash exchange, each pre-sized for the expected even
/// share of `total` records (plus headroom for skew) so the per-record push
/// almost never reallocates.
fn presized_targets(total: usize, parallelism: usize) -> Partitions {
    let per_target = total / parallelism + total / (parallelism * 4).max(1) + 4;
    (0..parallelism)
        .map(|_| Vec::with_capacity(per_target))
        .collect()
}

/// Routes the producer's partitions to the consumer's partitions according to
/// the shipping strategy, updating the shipped/local record counters.  This
/// is the clone-based variant used when the producer's output is still shared
/// (another consumer, a sink result, or the loop-invariant cache holds it).
fn exchange(
    producer: &Partitions,
    ship: &ShipStrategy,
    parallelism: usize,
    stats: &mut ExecutionStats,
) -> Partitions {
    match ship {
        ShipStrategy::Forward => {
            let total: usize = producer.iter().map(Vec::len).sum();
            stats.local_records += total;
            let mut parts = producer.clone();
            parts.resize(parallelism, Vec::new());
            parts
        }
        ShipStrategy::PartitionHash(keys) | ShipStrategy::PartitionRange(keys) => {
            let total: usize = producer.iter().map(Vec::len).sum();
            let mut parts = presized_targets(total, parallelism);
            for (src_idx, partition) in producer.iter().enumerate() {
                for record in partition {
                    let target = partition_for(record, keys, parallelism);
                    count_routed(stats, record, src_idx, target);
                    parts[target].push(record.clone());
                }
            }
            parts
        }
        ShipStrategy::Broadcast => {
            let total: usize = producer.iter().map(Vec::len).sum();
            let mut parts: Partitions = (0..parallelism)
                .map(|_| Vec::with_capacity(total))
                .collect();
            for partition in producer {
                for record in partition {
                    count_broadcast(stats, record, parallelism);
                    for part in parts.iter_mut() {
                        part.push(record.clone());
                    }
                }
            }
            parts
        }
    }
}

/// The move-based exchange: identical routing and accounting to [`exchange`],
/// but the producer's partitions are owned, so records are *moved* to their
/// target buffers — no per-record clone on the dynamic data path.
fn exchange_owned(
    mut producer: Partitions,
    ship: &ShipStrategy,
    parallelism: usize,
    stats: &mut ExecutionStats,
) -> Partitions {
    match ship {
        ShipStrategy::Forward => {
            let total: usize = producer.iter().map(Vec::len).sum();
            stats.local_records += total;
            producer.resize(parallelism, Vec::new());
            producer
        }
        ShipStrategy::PartitionHash(keys) | ShipStrategy::PartitionRange(keys) => {
            let total: usize = producer.iter().map(Vec::len).sum();
            let mut parts = presized_targets(total, parallelism);
            for (src_idx, partition) in producer.into_iter().enumerate() {
                for record in partition {
                    let target = partition_for(&record, keys, parallelism);
                    count_routed(stats, &record, src_idx, target);
                    parts[target].push(record);
                }
            }
            parts
        }
        ShipStrategy::Broadcast => {
            let total: usize = producer.iter().map(Vec::len).sum();
            let mut parts: Partitions = (0..parallelism)
                .map(|_| Vec::with_capacity(total))
                .collect();
            for partition in producer {
                for record in partition {
                    count_broadcast(stats, &record, parallelism);
                    // Clone for all targets but the last, which takes the
                    // original.
                    for part in parts[..parallelism - 1].iter_mut() {
                        part.push(record.clone());
                    }
                    parts[parallelism - 1].push(record);
                }
            }
            parts
        }
    }
}

/// Updates the shipped/local counters for one hash-routed record.
#[inline]
fn count_routed(stats: &mut ExecutionStats, record: &Record, src: usize, target: usize) {
    if target != src {
        stats.shipped_records += 1;
        stats.shipped_bytes += record.estimated_bytes();
    } else {
        stats.local_records += 1;
    }
}

/// Updates the shipped/local counters for one broadcast record.
#[inline]
fn count_broadcast(stats: &mut ExecutionStats, record: &Record, parallelism: usize) {
    let copies = parallelism.saturating_sub(1);
    stats.shipped_records += copies;
    stats.shipped_bytes += copies * record.estimated_bytes();
    stats.local_records += 1;
}

/// Runs one operator's local work on one partition's inputs.
fn run_local(op: &Operator, local: LocalStrategy, inputs: &[&Partition]) -> (usize, Vec<Record>) {
    let records_in: usize = inputs.iter().map(|p| p.len()).sum();
    let mut collector = Collector::new();
    match (&op.kind, &op.udf) {
        (OperatorKind::Map, Udf::Map(udf)) => {
            for record in inputs[0] {
                udf.map(record, &mut collector);
            }
        }
        (OperatorKind::Reduce { key }, Udf::Reduce(udf)) => {
            run_reduce(key, local, inputs[0], udf.as_ref(), &mut collector);
        }
        (
            OperatorKind::Match {
                left_key,
                right_key,
            },
            Udf::Match(udf),
        ) => {
            run_match(
                left_key,
                right_key,
                local,
                inputs[0],
                inputs[1],
                udf.as_ref(),
                &mut collector,
            );
        }
        (OperatorKind::Cross, Udf::Cross(udf)) => {
            for left in inputs[0] {
                for right in inputs[1] {
                    udf.cross(left, right, &mut collector);
                }
            }
        }
        (
            OperatorKind::CoGroup {
                left_key,
                right_key,
                inner,
            },
            Udf::CoGroup(udf),
        ) => {
            run_cogroup(
                left_key,
                right_key,
                *inner,
                inputs[0],
                inputs[1],
                udf.as_ref(),
                &mut collector,
            );
        }
        (OperatorKind::Union, _) => {
            for input in inputs {
                collector.collect_all(input.iter().cloned());
            }
        }
        (OperatorKind::Sink { .. }, _) => {
            collector.collect_all(inputs[0].iter().cloned());
        }
        (OperatorKind::Source { .. }, _) => {
            // Sources are handled by the executor before run_local is called.
            unreachable!("sources do not run a local phase");
        }
        (kind, udf) => {
            panic!(
                "operator '{}' has contract {} but UDF {:?}",
                op.name,
                kind.contract_name(),
                udf
            );
        }
    }
    (records_in, collector.into_records())
}

/// Grouping for the Reduce contract (hash- or sort-based).
fn run_reduce(
    key: &[usize],
    local: LocalStrategy,
    input: &Partition,
    udf: &dyn crate::contracts::ReduceFunction,
    out: &mut Collector,
) {
    match local {
        LocalStrategy::SortGroup => {
            let mut records = input.clone();
            sort_by_key(&mut records, key);
            for (start, end) in group_ranges(&records, key) {
                let group = &records[start..end];
                let k = Key::extract(&group[0], key);
                udf.reduce(&k.values(), group, out);
            }
        }
        // HashGroup and any other strategy: build the groups in an Fx hash
        // table, then emit them in key order so the output stays
        // deterministic across runs.
        _ => {
            let mut groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
            for record in input {
                groups
                    .entry(Key::extract(record, key))
                    .or_default()
                    .push(record.clone());
            }
            let mut sorted: Vec<(Key, Vec<Record>)> = groups.into_iter().collect();
            sorted.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            for (k, group) in &sorted {
                udf.reduce(&k.values(), group, out);
            }
        }
    }
}

/// Equi-join for the Match contract (hash or sort-merge).
fn run_match(
    left_key: &[usize],
    right_key: &[usize],
    local: LocalStrategy,
    left: &Partition,
    right: &Partition,
    udf: &dyn crate::contracts::MatchFunction,
    out: &mut Collector,
) {
    match local {
        LocalStrategy::HashJoinBuildRight => {
            let mut table: FxHashMap<Key, Vec<&Record>> = FxHashMap::default();
            for record in right {
                table
                    .entry(Key::extract(record, right_key))
                    .or_default()
                    .push(record);
            }
            for l in left {
                if let Some(matches) = table.get(&Key::extract(l, left_key)) {
                    for r in matches {
                        udf.join(l, r, out);
                    }
                }
            }
        }
        LocalStrategy::SortMergeJoin => {
            let mut l_sorted = left.clone();
            let mut r_sorted = right.clone();
            sort_by_key(&mut l_sorted, left_key);
            sort_by_key(&mut r_sorted, right_key);
            let l_ranges = group_ranges(&l_sorted, left_key);
            let r_ranges = group_ranges(&r_sorted, right_key);
            let (mut li, mut ri) = (0usize, 0usize);
            while li < l_ranges.len() && ri < r_ranges.len() {
                let lrec = &l_sorted[l_ranges[li].0];
                let rrec = &r_sorted[r_ranges[ri].0];
                match crate::key::compare_keys(lrec, left_key, rrec, right_key) {
                    std::cmp::Ordering::Less => li += 1,
                    std::cmp::Ordering::Greater => ri += 1,
                    std::cmp::Ordering::Equal => {
                        for l in &l_sorted[l_ranges[li].0..l_ranges[li].1] {
                            for r in &r_sorted[r_ranges[ri].0..r_ranges[ri].1] {
                                udf.join(l, r, out);
                            }
                        }
                        li += 1;
                        ri += 1;
                    }
                }
            }
        }
        // Default: build on the left, probe with the right.
        _ => {
            let mut table: FxHashMap<Key, Vec<&Record>> = FxHashMap::default();
            for record in left {
                table
                    .entry(Key::extract(record, left_key))
                    .or_default()
                    .push(record);
            }
            for r in right {
                if let Some(matches) = table.get(&Key::extract(r, right_key)) {
                    for l in matches {
                        udf.join(l, r, out);
                    }
                }
            }
        }
    }
}

/// Grouped join for the CoGroup / InnerCoGroup contracts.
fn run_cogroup(
    left_key: &[usize],
    right_key: &[usize],
    inner: bool,
    left: &Partition,
    right: &Partition,
    udf: &dyn crate::contracts::CoGroupFunction,
    out: &mut Collector,
) {
    let mut left_groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
    for record in left {
        left_groups
            .entry(Key::extract(record, left_key))
            .or_default()
            .push(record.clone());
    }
    let mut right_groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
    for record in right {
        right_groups
            .entry(Key::extract(record, right_key))
            .or_default()
            .push(record.clone());
    }
    // Emit groups in key order so the output stays deterministic across runs.
    let empty: Vec<Record> = Vec::new();
    if inner {
        let mut sorted: Vec<(&Key, &Vec<Record>)> = left_groups.iter().collect();
        sorted.sort_unstable_by(|a, b| a.0.cmp(b.0));
        for (k, lgroup) in sorted {
            if let Some(rgroup) = right_groups.get(k) {
                udf.cogroup(&k.values(), lgroup, rgroup, out);
            }
        }
    } else {
        let mut keys: Vec<&Key> = left_groups.keys().chain(right_groups.keys()).collect();
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            let lgroup = left_groups.get(k).unwrap_or(&empty);
            let rgroup = right_groups.get(k).unwrap_or(&empty);
            udf.cogroup(&k.values(), lgroup, rgroup, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts::{CoGroupClosure, MapClosure, MatchClosure, ReduceClosure};
    use crate::physical::default_physical_plan;
    use crate::plan::Plan;
    use crate::value::Value;

    fn execute(plan: &Plan, parallelism: usize) -> ExecutionResult {
        let phys = default_physical_plan(plan, parallelism).unwrap();
        Executor::new().execute(&phys).unwrap()
    }

    #[test]
    fn map_doubles_values_across_partitions() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..100).map(|i| Record::pair(i, i)).collect();
        let src = plan.source("src", data);
        let map = plan.map(
            "double",
            src,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(Record::pair(r.long(0), r.long(1) * 2));
            })),
        );
        plan.sink("out", map);
        for parallelism in [1, 3, 8] {
            let result = execute(&plan, parallelism);
            let mut records = result.sink("out").unwrap();
            records.sort();
            assert_eq!(records.len(), 100);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.long(1), 2 * i as i64);
            }
        }
    }

    #[test]
    fn reduce_sums_groups_regardless_of_parallelism() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..60).map(|i| Record::pair(i % 5, 1)).collect();
        let src = plan.source("src", data);
        let red = plan.reduce(
            "count",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], group: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), group.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        for parallelism in [1, 4] {
            let result = execute(&plan, parallelism);
            let mut records = result.sink("out").unwrap();
            records.sort();
            assert_eq!(records.len(), 5);
            for r in &records {
                assert_eq!(r.long(1), 12);
            }
        }
    }

    #[test]
    fn match_join_produces_all_matching_pairs() {
        let mut plan = Plan::new();
        let left = plan.source(
            "left",
            vec![
                Record::pair(1, 10),
                Record::pair(2, 20),
                Record::pair(2, 21),
            ],
        );
        let right = plan.source("right", vec![Record::pair(2, 200), Record::pair(3, 300)]);
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(1), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let result = execute(&plan, 4);
        let mut records = result.sink("out").unwrap();
        records.sort();
        assert_eq!(records, vec![Record::pair(20, 200), Record::pair(21, 200)]);
    }

    #[test]
    fn inner_cogroup_drops_unmatched_keys() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 10), Record::pair(2, 20)]);
        let right = plan.source("right", vec![Record::pair(2, 200), Record::pair(2, 201)]);
        let cg = plan.inner_cogroup(
            "cg",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(CoGroupClosure(
                |key: &[Value], l: &[Record], r: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), (l.len() + r.len()) as i64));
                },
            )),
        );
        plan.sink("out", cg);
        let result = execute(&plan, 3);
        let records = result.sink("out").unwrap();
        assert_eq!(records, vec![Record::pair(2, 3)]);
    }

    #[test]
    fn outer_cogroup_keeps_all_keys() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 10)]);
        let right = plan.source("right", vec![Record::pair(2, 200)]);
        let cg = plan.cogroup(
            "cg",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(CoGroupClosure(
                |key: &[Value], l: &[Record], r: &[Record], out: &mut Collector| {
                    out.collect(Record::triple(
                        key[0].as_long(),
                        l.len() as i64,
                        r.len() as f64,
                    ));
                },
            )),
        );
        plan.sink("out", cg);
        let result = execute(&plan, 2);
        let mut records = result.sink("out").unwrap();
        records.sort();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn cross_product_with_broadcast_right() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 0), Record::pair(2, 0)]);
        let right = plan.source(
            "right",
            vec![
                Record::pair(10, 0),
                Record::pair(20, 0),
                Record::pair(30, 0),
            ],
        );
        let cross = plan.cross(
            "cross",
            left,
            right,
            Arc::new(crate::contracts::CrossClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(0), r.long(0)));
                },
            )),
        );
        plan.sink("out", cross);
        let result = execute(&plan, 2);
        let records = result.sink("out").unwrap();
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn union_concatenates_inputs() {
        let mut plan = Plan::new();
        let a = plan.source("a", vec![Record::pair(1, 1)]);
        let b = plan.source("b", vec![Record::pair(2, 2), Record::pair(3, 3)]);
        let u = plan.union("u", vec![a, b]);
        plan.sink("out", u);
        let result = execute(&plan, 2);
        assert_eq!(result.sink("out").unwrap().len(), 3);
    }

    #[test]
    fn zero_parallelism_plans_are_rejected() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![Record::pair(1, 1)]);
        plan.sink("out", src);
        // Construction-time validation.
        assert!(default_physical_plan(&plan, 0).is_err());
        // A hand-built plan with parallelism 0 is rejected by the executor
        // instead of being clamped silently.
        let mut phys = default_physical_plan(&plan, 2).unwrap();
        phys.parallelism = 0;
        assert!(Executor::new().execute(&phys).is_err());
    }

    #[test]
    fn unknown_sink_is_an_error() {
        let mut plan = Plan::new();
        let a = plan.source("a", vec![]);
        plan.sink("out", a);
        let result = execute(&plan, 1);
        assert!(result.sink("nope").is_err());
        assert_eq!(result.sink_names(), vec!["out".to_owned()]);
    }

    #[test]
    fn stats_count_shipped_records_for_partitioning() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..1000).map(|i| Record::pair(i, 1)).collect();
        let src = plan.source("src", data);
        let red = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), g.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        let result = execute(&plan, 4);
        // With 4 partitions roughly 3/4 of the records move; certainly > 0.
        assert!(result.stats.shipped_records > 0);
        assert!(result.stats.shipped_bytes >= result.stats.shipped_records * 8);
        assert_eq!(result.stats.records_out_of("sum"), 1000);
    }

    #[test]
    fn broadcast_counts_replicated_records() {
        let mut plan = Plan::new();
        let left = plan.source("left", (0..10).map(|i| Record::pair(i, 0)).collect());
        let right = plan.source("right", (0..5).map(|i| Record::pair(i, 0)).collect());
        let cross = plan.cross(
            "cross",
            left,
            right,
            Arc::new(crate::contracts::CrossClosure(
                |l: &Record, _r: &Record, out: &mut Collector| {
                    out.collect(l.clone());
                },
            )),
        );
        plan.sink("out", cross);
        let phys = default_physical_plan(&plan, 4).unwrap();
        let result = Executor::new().execute(&phys).unwrap();
        // 5 broadcast records each replicated to 3 other partitions.
        assert_eq!(result.stats.shipped_records, 15);
        assert_eq!(result.sink("out").unwrap().len(), 50);
    }

    #[test]
    fn cached_edges_skip_reshipping() {
        let mut plan = Plan::new();
        let left = plan.source("left", (0..50).map(|i| Record::pair(i, i)).collect());
        let right = plan.source("right", (0..50).map(|i| Record::pair(i, -i)).collect());
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(1), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let mut phys = default_physical_plan(&plan, 4).unwrap();
        phys.cache_input(join, 1);
        let mut cache = IntermediateCache::new();
        let exec = Executor::new();
        let first = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(cache.len(), 1);
        let second = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(second.stats.cache_hits, 1);
        // Fewer records shipped in the second run because the right input is
        // served from the cache.
        assert!(second.stats.shipped_records < first.stats.shipped_records);
        assert_eq!(
            first.sink("out").unwrap().len(),
            second.sink("out").unwrap().len()
        );
    }

    #[test]
    fn sort_merge_join_matches_hash_join() {
        let mut plan = Plan::new();
        let left_data: Vec<Record> = (0..40).map(|i| Record::pair(i % 7, i)).collect();
        let right_data: Vec<Record> = (0..30).map(|i| Record::pair(i % 7, 100 + i)).collect();
        let left = plan.source("left", left_data);
        let right = plan.source("right", right_data);
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(1), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);

        let mut hash_phys = default_physical_plan(&plan, 3).unwrap();
        hash_phys.choices.get_mut(&join).unwrap().local = LocalStrategy::HashJoinBuildRight;
        let mut smj_phys = default_physical_plan(&plan, 3).unwrap();
        smj_phys.choices.get_mut(&join).unwrap().local = LocalStrategy::SortMergeJoin;

        let exec = Executor::new();
        let mut a = exec.execute(&hash_phys).unwrap().sink("out").unwrap();
        let mut b = exec.execute(&smj_phys).unwrap().sink("out").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sort_group_matches_hash_group() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..200).map(|i| Record::pair(i % 13, i)).collect();
        let src = plan.source("src", data);
        let red = plan.reduce(
            "min",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    let min = g.iter().map(|r| r.long(1)).min().unwrap();
                    out.collect(Record::pair(key[0].as_long(), min));
                },
            )),
        );
        plan.sink("out", red);
        let mut hash_phys = default_physical_plan(&plan, 2).unwrap();
        hash_phys.choices.get_mut(&red).unwrap().local = LocalStrategy::HashGroup;
        let mut sort_phys = default_physical_plan(&plan, 2).unwrap();
        sort_phys.choices.get_mut(&red).unwrap().local = LocalStrategy::SortGroup;
        let exec = Executor::new();
        let mut a = exec.execute(&hash_phys).unwrap().sink("out").unwrap();
        let mut b = exec.execute(&sort_phys).unwrap().sink("out").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
    }

    #[test]
    fn empty_source_flows_through() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![]);
        let map = plan.map(
            "id",
            src,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        plan.sink("out", map);
        let result = execute(&plan, 4);
        assert!(result.sink("out").unwrap().is_empty());
    }
}
