//! The parallel executor.
//!
//! The executor runs a [`PhysicalPlan`] on a shared-nothing set of worker
//! partitions; each operator's local phase runs one task per partition on the
//! process-wide persistent worker pool ([`spinning_pool::global`]), so
//! scheduling a partition costs a deque push, not a thread spawn.  Each
//! worker partition plays the role of one cluster node in the paper's setup;
//! records that move between partitions during an exchange are counted as
//! "shipped" (network) records in the [`ExecutionStats`].
//!
//! Exchanged (hash/range/broadcast) edges are dams: every such edge fully
//! materialises before downstream operators run, which is always safe for
//! the iteration execution strategies of Sections 4.2 and 5.3 (no operator
//! can ever participate in two iterations simultaneously).  Forward edges,
//! however, *stream*: a chain-fusion pass ([`streaming_input_slot`])
//! identifies maximal pipelineable segments — forward-shipped, uncached,
//! single-consumer edges into a slot the consumer can stream — and executes
//! each segment as a pipeline of concurrent stages connected by
//! credit-bounded page channels ([`crate::credit`]).  Records flow through a
//! chain as sealed pages, handed downstream as they seal, so a fused edge
//! holds at most `credits × page size` bytes in flight instead of the full
//! intermediate ([`ExecConfig::with_channel_credits`]).
//! [`ExecConfig::with_force_materialized`] is the escape hatch that disables
//! fusion (and the page-native operator paths), pinning every streaming path
//! byte-identical to the materializing oracle.
//!
//! # Exchanges move sealed pages
//!
//! Repartitioning (hash/range) and broadcast exchanges follow the paged
//! binary model of [`crate::page`]: every producer partition routes its
//! records in parallel on the worker pool, records that stay in their
//! partition are *moved* as heap objects (a local forward never serializes,
//! like a chained operator in the real runtime), and records bound for a
//! peer partition are serialized into sealed [`RecordPage`]s.  The exchange
//! itself — the step that stands in for the network — then only moves page
//! pointers; the receiving local phase reads records back out of the pages
//! lazily.  Only forward shipping keeps the records-as-objects fast path.

use crate::contracts::{Collector, RecordSink, Udf};
use crate::credit::{
    credit_channel, timeout_from_env, CreditReceiver, CreditSender, RecvTimeoutError, SendError,
};
use crate::error::{DataflowError, Result};
use crate::fault::{FaultInjector, FaultSite};
use crate::key::{group_ranges, partition_for, sort_by_key, FxHashMap, Key, KeyFields};
use crate::page::{
    denormalize_long, normalize_long, ExchangedPartition, PageHandle, PageWriter, PagedRecords,
    PrefixTable, RecordPage,
};
use crate::physical::{
    streaming_input_slot, LocalStrategy, PhysicalChoice, PhysicalPlan, ShipStrategy,
};
use crate::plan::{Operator, OperatorId, OperatorKind};
use crate::range::{sample_keys_into, sort_by_key_normalized, RangeBounds};
use crate::record::Record;
use crate::spill::{write_run_in, MemoryBudget, RunMerger, SpillManager, SpillStats, SpilledRun};
use crate::stats::{ExecutionStats, OperatorStats};
use crate::transport::TransportHandle;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The records held by one worker partition.
pub type Partition = Vec<Record>;
/// One partition per parallel instance.
pub type Partitions = Vec<Partition>;
/// One partition's local-phase outcome: `(records_in, output records)`.
type LocalOutcome = Result<(usize, Vec<Record>)>;
/// A paged input sorted by key prefix: the adopted store plus its
/// `(prefix, handle)` pairs in sorted order.
type SortedPaged = (PagedRecords, Vec<(u64, PageHandle)>);

/// Runtime configuration of the [`Executor`].
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Budget on the serialized bytes an exchange may buffer in memory:
    /// exceeding it moves sealed pages to disk as sorted runs (see
    /// [`crate::spill`]).  Unlimited by default — nothing ever spills.
    pub memory_budget: MemoryBudget,
    /// Fault injector consulted at spill flushes and worker dispatch sites
    /// (see [`crate::fault`]).  Disabled by default.
    pub fault: FaultInjector,
    /// Disables the page-native operator paths **and chain fusion**, forcing
    /// every join/group to materialize its inputs into heap records first and
    /// every operator boundary to dam.  Off by default (the page-native and
    /// chained paths run whenever an edge qualifies); the equivalence suites
    /// flip it to check the streaming paths produce byte-identical results.
    pub force_materialized: bool,
    /// Per-edge credit bound of the chained (streaming) operator paths: a
    /// fused pipeline edge holds at most this many sealed pages in flight, so
    /// a chain's memory footprint is `credits × page size` per edge instead
    /// of the full intermediate.  `None` (the default) reads
    /// `SPINNING_CHANNEL_CREDITS` and falls back to
    /// [`DEFAULT_CHAIN_CREDITS`].
    pub channel_credits: Option<usize>,
    /// The transport every repartitioning exchange ships its sealed pages
    /// through.  Defaults to the in-process backend (pointer-moving channels
    /// in a cluster of one); the batch executor rejects multi-process
    /// transports — distribution enters through the iteration runtime.
    pub transport: TransportHandle,
}

impl ExecConfig {
    /// The default configuration (no memory budget).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the exchange memory budget.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Sets the fault injector.
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// Forces the materializing operator paths (see
    /// [`ExecConfig::force_materialized`]).
    pub fn with_force_materialized(mut self, force: bool) -> Self {
        self.force_materialized = force;
        self
    }

    /// Sets the exchange transport.
    pub fn with_transport(mut self, transport: TransportHandle) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the per-edge credit bound of chained (streaming) operator paths;
    /// clamped to at least 1 (a chain must be able to make progress).
    pub fn with_channel_credits(mut self, credits: usize) -> Self {
        self.channel_credits = Some(credits.max(1));
        self
    }

    /// The effective chained-edge credit bound: the explicit configuration,
    /// else `SPINNING_CHANNEL_CREDITS`, else [`DEFAULT_CHAIN_CREDITS`].
    pub fn resolved_channel_credits(&self) -> usize {
        self.channel_credits
            .or_else(crate::credit::channel_credits_from_env)
            .unwrap_or(DEFAULT_CHAIN_CREDITS)
            .max(1)
    }
}

/// Default per-edge credit bound of a fused chain when neither the
/// configuration nor `SPINNING_CHANNEL_CREDITS` specifies one: 4 sealed 32
/// KiB pages ≈ 128 KiB in flight per edge.
pub const DEFAULT_CHAIN_CREDITS: usize = 4;

/// Cache of post-exchange inputs, keyed by (consumer operator, input slot).
///
/// The iteration runtime passes the same cache to every execution of the step
/// plan; edges on the constant data path that the optimizer marked with
/// `cache_inputs` are shipped once and then served from here (Section 4.3).
/// Under a memory budget ([`IntermediateCache::with_memory_budget`]) edges
/// too large for memory are spilled to disk as runs — sorted range edges
/// verbatim, since their partitions are already sorted page runs — and every
/// re-execution streams them back from disk.
#[derive(Debug, Default)]
pub struct IntermediateCache {
    entries: HashMap<(OperatorId, usize), CachedEdge>,
    /// Range splitters frozen per consuming operator on the first execution.
    /// Iterative plans re-execute the step plan with the same cache, so
    /// freezing the splitters here keeps cached (constant-path) and
    /// re-shipped (dynamic-path) range edges of the same operator routed by
    /// one histogram — the invariant co-partitioned merge inputs rely on.
    range_bounds: HashMap<OperatorId, Arc<RangeBounds>>,
    /// Budget on the bytes a cached edge may hold in memory.
    memory_budget: MemoryBudget,
}

/// One cached post-exchange edge: the materialized partitions (or, for
/// budget-spilled edges, one run per partition on disk) plus the key fields
/// they are sorted by (range-partitioned cached edges stay sorted, so every
/// re-execution can skip the sort).
#[derive(Debug, Clone)]
struct CachedEdge {
    parts: Arc<Partitions>,
    /// Per-partition spilled runs when the edge exceeded the cache budget;
    /// the in-memory `parts` are empty in that case.
    runs: Option<Arc<Vec<Vec<SpilledRun>>>>,
    sorted_by: Option<KeyFields>,
}

impl CachedEdge {
    /// Builds the per-execution input this cached edge serves: shared record
    /// partitions when in memory, per-partition run handles when spilled
    /// (cloning a run handle shares the file on disk).
    fn serve(&self) -> PreparedInput {
        match &self.runs {
            None => PreparedInput::Shared(Arc::clone(&self.parts), self.sorted_by.clone()),
            Some(runs) => PreparedInput::Paged(
                runs.iter()
                    .map(|partition| {
                        ExchangedPartition::from_spilled(partition.clone(), self.sorted_by.clone())
                    })
                    .collect(),
            ),
        }
    }
}

impl IntermediateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the byte budget above which cached edges spill to disk.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Number of cached edges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached edges and frozen range histograms.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.range_bounds.clear();
    }
}

/// The result of one plan execution: the contents of every sink plus the
/// execution statistics.
#[derive(Debug)]
pub struct ExecutionResult {
    sink_outputs: HashMap<String, Arc<Partitions>>,
    /// Counters collected while executing.
    pub stats: ExecutionStats,
}

impl ExecutionResult {
    /// All records delivered to the sink `name`, flattened across partitions.
    ///
    /// Borrows the result, so the records are cloned; callers that own the
    /// [`ExecutionResult`] and only need one sink should prefer
    /// [`ExecutionResult::into_sink`], which moves the records out.
    pub fn sink(&self, name: &str) -> Result<Vec<Record>> {
        self.sink_partitions(name)
            .map(|parts| parts.iter().flatten().cloned().collect())
    }

    /// Consumes the result and moves the records of sink `name` out without
    /// copying them (unless the sink's partitions are still shared, e.g.
    /// through a clone of [`ExecutionResult::sink_partitions`]).
    pub fn into_sink(mut self, name: &str) -> Result<Vec<Record>> {
        let parts = self
            .sink_outputs
            .remove(name)
            .ok_or_else(|| DataflowError::UnknownSink(name.to_owned()))?;
        match Arc::try_unwrap(parts) {
            Ok(parts) => {
                let total = parts.iter().map(Vec::len).sum();
                let mut records = Vec::with_capacity(total);
                for part in parts {
                    records.extend(part);
                }
                Ok(records)
            }
            Err(shared) => Ok(shared.iter().flatten().cloned().collect()),
        }
    }

    /// True if the sink `name` received no records (without touching them).
    pub fn sink_is_empty(&self, name: &str) -> Result<bool> {
        self.sink_partitions(name)
            .map(|parts| parts.iter().all(Vec::is_empty))
    }

    /// The per-partition records delivered to the sink `name`.
    pub fn sink_partitions(&self, name: &str) -> Result<Arc<Partitions>> {
        self.sink_outputs
            .get(name)
            .cloned()
            .ok_or_else(|| DataflowError::UnknownSink(name.to_owned()))
    }

    /// Names of all sinks that produced output.
    pub fn sink_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sink_outputs.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Executes physical plans.
#[derive(Debug, Default, Clone)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// Creates an executor with the default configuration (no memory
    /// budget).
    pub fn new() -> Self {
        Executor::default()
    }

    /// Creates an executor with an explicit configuration —
    /// `Executor::with_config(ExecConfig::new().with_memory_budget(...))` is
    /// the out-of-core entry point.
    pub fn with_config(config: ExecConfig) -> Self {
        Executor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Executes the plan once, without any loop-invariant caching.
    pub fn execute(&self, physical: &PhysicalPlan) -> Result<ExecutionResult> {
        let mut cache = IntermediateCache::new();
        self.execute_with_cache(physical, &mut cache)
    }

    /// Executes the plan, serving edges marked `cache_inputs` from (and
    /// populating them into) `cache`.
    pub fn execute_with_cache(
        &self,
        physical: &PhysicalPlan,
        cache: &mut IntermediateCache,
    ) -> Result<ExecutionResult> {
        let start = Instant::now();
        let plan = &physical.plan;
        let order = plan.validate()?;
        // A hand-built physical plan can carry parallelism 0; reject it here
        // instead of clamping silently (or panicking on a modulo-by-zero
        // deep inside `partition_for`).
        let parallelism = physical.parallelism;
        if parallelism == 0 {
            return Err(DataflowError::InvalidPlan(
                "parallelism must be at least 1".into(),
            ));
        }
        // The batch executor is single-process: every exchange ships through
        // the transport, but cluster execution (partition ownership, global
        // convergence) is the iteration runtime's job.
        if self.config.transport.is_distributed() {
            return Err(DataflowError::CommSetup(
                "the batch executor runs single-process; multi-process clusters \
                 drive the iteration runtime instead"
                    .into(),
            ));
        }

        let mut outputs: HashMap<OperatorId, Arc<Partitions>> = HashMap::new();
        let mut sink_outputs: HashMap<String, Arc<Partitions>> = HashMap::new();
        let mut stats = ExecutionStats::new();

        // How many input edges still need each operator's output.  Once the
        // last consumer has taken it, the output is removed from `outputs`
        // and — if nothing else (sink results, the cache) shares it — the
        // exchange *moves* the records instead of cloning them.
        let mut remaining_uses = vec![0usize; plan.len()];
        for op in plan.operators() {
            for input in &op.inputs {
                remaining_uses[input.0] += 1;
            }
        }

        // The chain-fusion pass: maximal pipelineable segments over forward,
        // uncached, single-consumer edges.  `force_materialized` is the
        // escape hatch that pins every chained path against the materializing
        // oracle.
        let chain = if self.config.force_materialized {
            ChainPlan::default()
        } else {
            compute_chain_segments(physical)
        };

        for id in order {
            let op = plan.operator(id);
            if let Some(&(seg, pos)) = chain.member_of.get(&id) {
                // Non-tail members run inside their segment's pipeline; the
                // whole segment executes when the topological walk reaches
                // its tail (every side input's producer has run by then).
                if pos + 1 != chain.segments[seg].len() {
                    continue;
                }
                self.execute_segment(
                    physical,
                    &chain.segments[seg],
                    &mut outputs,
                    &mut sink_outputs,
                    cache,
                    &mut remaining_uses,
                    &mut stats,
                )?;
                continue;
            }
            let choice = physical.choice(id);
            let op_start = Instant::now();

            // 1. Sources produce their partitioned data directly.
            if let OperatorKind::Source { data } = &op.kind {
                let parts = split_into_partitions(data, parallelism);
                let produced: usize = parts.iter().map(Vec::len).sum();
                outputs.insert(id, Arc::new(parts));
                stats.operators.push(OperatorStats {
                    name: op.name.clone(),
                    contract: op.kind.contract_name().to_owned(),
                    records_in: 0,
                    records_out: produced,
                    elapsed: op_start.elapsed(),
                });
                continue;
            }

            // 2a. All range-partitioned edges of one operator share one
            // splitter histogram (sampled from their producers, frozen in
            // the cache across repeated executions), so co-partitioned
            // inputs of a merge join agree on the key space.
            let range_bounds = prepare_range_bounds(op, choice, &outputs, cache, parallelism)?;

            // 2b. Exchange (or fetch from cache) each input edge.
            let mut prepared: Vec<PreparedInput> = Vec::with_capacity(op.inputs.len());
            for slot in 0..op.inputs.len() {
                prepared.push(self.prepare_input(
                    op,
                    slot,
                    choice,
                    range_bounds.as_deref(),
                    parallelism,
                    &mut outputs,
                    cache,
                    &mut remaining_uses,
                    &mut stats,
                )?);
            }

            // Split the prepared inputs into one input set per partition:
            // shared inputs hand every partition a (cheap) Arc clone, paged
            // inputs move each partition's local records and received page
            // pointers into that partition's task.
            let mut partition_inputs = split_by_partition(prepared, parallelism, op.inputs.len());

            // 3. Run the local phase, one pool task per partition.  The
            //    persistent worker pool is shared process-wide, so an
            //    operator's parallel region costs a deque push per partition
            //    instead of a round of thread spawns.
            let local = choice.local;
            let page_native = !self.config.force_materialized;
            let mut result_parts: Vec<Partition> = Vec::with_capacity(parallelism);
            let mut records_in_total = 0usize;
            if parallelism == 1 {
                let inputs = partition_inputs.pop().expect("one partition input set");
                let mut collector = Collector::new();
                let records_in = run_local(
                    op,
                    local,
                    inputs,
                    page_native,
                    &self.config.fault,
                    &mut collector,
                )?;
                records_in_total += records_in;
                result_parts.push(collector.into_records());
            } else {
                let mut per_partition: Vec<Option<LocalOutcome>> =
                    (0..parallelism).map(|_| None).collect();
                let fault = &self.config.fault;
                spinning_pool::global()
                    .try_scope(|scope| {
                        for (inputs, slot) in
                            partition_inputs.drain(..).zip(per_partition.iter_mut())
                        {
                            scope.spawn_labeled("operator-local", move || {
                                fault.panic_check(FaultSite::WorkerPanic, "operator-local");
                                let mut collector = Collector::new();
                                *slot = Some(
                                    run_local(
                                        op,
                                        local,
                                        inputs,
                                        page_native,
                                        fault,
                                        &mut collector,
                                    )
                                    .map(|records_in| (records_in, collector.into_records())),
                                );
                            });
                        }
                    })
                    .map_err(|panic| DataflowError::WorkerPanic {
                        operator: op.name.clone(),
                        superstep: 0,
                        message: panic.message(),
                    })?;
                for slot in per_partition {
                    let (records_in, out) = slot.expect("pool ran every partition task")?;
                    records_in_total += records_in;
                    result_parts.push(out);
                }
            }

            let produced: usize = result_parts.iter().map(Vec::len).sum();
            let result_parts = Arc::new(result_parts);
            if let OperatorKind::Sink { name } = &op.kind {
                sink_outputs.insert(name.clone(), Arc::clone(&result_parts));
            }
            outputs.insert(id, result_parts);
            stats.operators.push(OperatorStats {
                name: op.name.clone(),
                contract: op.kind.contract_name().to_owned(),
                records_in: records_in_total,
                records_out: produced,
                elapsed: op_start.elapsed(),
            });
        }

        stats.elapsed = start.elapsed();
        Ok(ExecutionResult {
            sink_outputs,
            stats,
        })
    }

    /// Exchanges (or serves from the cache) one input edge of `op`,
    /// consuming one use of the producer's output.  Shared between the
    /// materializing per-operator loop and the side inputs of fused chain
    /// segments.
    #[allow(clippy::too_many_arguments)]
    fn prepare_input(
        &self,
        op: &Operator,
        slot: usize,
        choice: &PhysicalChoice,
        range_bounds: Option<&RangeBounds>,
        parallelism: usize,
        outputs: &mut HashMap<OperatorId, Arc<Partitions>>,
        cache: &mut IntermediateCache,
        remaining_uses: &mut [usize],
        stats: &mut ExecutionStats,
    ) -> Result<PreparedInput> {
        let input = op.inputs[slot];
        let cache_key = (op.id, slot);
        // This edge consumes one use of the producer's output, whether it is
        // served from the cache or exchanged.
        let last_use = remaining_uses[input.0] == 1;
        remaining_uses[input.0] = remaining_uses[input.0].saturating_sub(1);
        if choice.cache_inputs[slot] {
            if let Some(cached) = cache.entries.get(&cache_key) {
                stats.cache_hits += 1;
                let served = cached.serve();
                if last_use {
                    outputs.remove(&input);
                }
                return Ok(served);
            }
        }
        let producer_out = if last_use {
            outputs.remove(&input)
        } else {
            outputs.get(&input).cloned()
        }
        .ok_or_else(|| {
            DataflowError::ExecutionFailed(format!(
                "input {} of '{}' has not produced output",
                input.0, op.name
            ))
        })?;
        // The producer's partitions can be consumed in place when no one else
        // holds them (no other pending consumer, not a sink result, not
        // cached).
        let producer = match Arc::try_unwrap(producer_out) {
            Ok(owned) => ProducerInput::Owned(owned),
            Err(shared) => ProducerInput::Shared(shared),
        };
        let ship = &choice.input_ships[slot];
        if choice.cache_inputs[slot] {
            // Cached (loop-invariant) edges are re-read on every execution of
            // the step plan, so they are materialized once and served as
            // shared record partitions — exchanged as records directly, since
            // serializing them into pages would be an immediate
            // serialize/deserialize roundtrip.  An edge exceeding the cache
            // budget is spilled to disk instead and streamed back on every
            // execution.
            let (parts, sorted_by) =
                cache_exchange_records(producer, ship, parallelism, range_bounds, stats);
            let edge = build_cached_edge(parts, sorted_by, cache.memory_budget, stats)?;
            let served = edge.serve();
            cache.entries.insert(cache_key, edge);
            Ok(served)
        } else {
            exchange(
                producer,
                ship,
                parallelism,
                range_bounds,
                &self.config,
                stats,
            )
        }
    }

    /// Executes one fused chain segment (`members`, head to tail) as a
    /// pipeline: every member runs one stage thread per partition, connected
    /// along the fused edges by credit-bounded channels of sealed pages.
    ///
    /// Side inputs (the non-fused slots — a hash join's build side, a
    /// cross's broadcast side) are prepared on this thread exactly like the
    /// materializing path prepares them; the topological walk dispatches the
    /// segment at its *tail*, by which point every side producer has run.
    /// Dedicated `thread::scope` threads carry the stages — the shared
    /// worker pool would deadlock, since stages block on channel credits
    /// while holding a pool worker.
    #[allow(clippy::too_many_arguments)]
    fn execute_segment(
        &self,
        physical: &PhysicalPlan,
        members: &[OperatorId],
        outputs: &mut HashMap<OperatorId, Arc<Partitions>>,
        sink_outputs: &mut HashMap<String, Arc<Partitions>>,
        cache: &mut IntermediateCache,
        remaining_uses: &mut [usize],
        stats: &mut ExecutionStats,
    ) -> Result<()> {
        let plan = &physical.plan;
        let parallelism = physical.parallelism;
        let page_native = !self.config.force_materialized;
        let credits = self.config.resolved_channel_credits();
        let timeout = timeout_from_env();
        let fault = &self.config.fault;

        struct Member<'p> {
            op: &'p Operator,
            local: LocalStrategy,
            stream_slot: Option<usize>,
            partition_inputs: Vec<Vec<LocalInput>>,
        }
        let mut prepared_members: Vec<Member<'_>> = Vec::with_capacity(members.len());
        for (pos, &mid) in members.iter().enumerate() {
            let op = plan.operator(mid);
            let choice = physical.choice(mid);
            let range_bounds = prepare_range_bounds(op, choice, outputs, cache, parallelism)?;
            let stream_slot = (pos > 0).then(|| {
                streaming_input_slot(&op.kind, choice.local)
                    .expect("fused consumers have a streaming slot")
            });
            let mut prepared: Vec<PreparedInput> = Vec::new();
            for slot in 0..op.inputs.len() {
                if Some(slot) == stream_slot {
                    // The fused edge: consumed through the chain, so its
                    // producer (the previous member) never materializes into
                    // `outputs`.
                    remaining_uses[op.inputs[slot].0] = 0;
                    continue;
                }
                prepared.push(self.prepare_input(
                    op,
                    slot,
                    choice,
                    range_bounds.as_deref(),
                    parallelism,
                    outputs,
                    cache,
                    remaining_uses,
                    stats,
                )?);
            }
            let arity = prepared.len();
            prepared_members.push(Member {
                op,
                local: choice.local,
                stream_slot,
                partition_inputs: split_by_partition(prepared, parallelism, arity),
            });
        }

        // Wire the stages: one credit channel per fused edge per partition
        // (stage `pos` of partition `p` sends to stage `pos + 1` of the same
        // partition — fused edges are forward edges, they never cross
        // partitions).
        let tail_pos = members.len() - 1;
        let mut specs: Vec<StageSpec<'_>> = Vec::with_capacity(members.len() * parallelism);
        let mut pending_rx: Vec<Option<CreditReceiver<Arc<RecordPage>>>> =
            (0..parallelism).map(|_| None).collect();
        for (pos, member) in prepared_members.into_iter().enumerate() {
            for (p, inputs) in member.partition_inputs.into_iter().enumerate() {
                let (tx, next_rx) = if pos < tail_pos {
                    let (tx, rx) = credit_channel(credits, timeout);
                    (Some(tx), Some(rx))
                } else {
                    (None, None)
                };
                let rx = std::mem::replace(&mut pending_rx[p], next_rx);
                specs.push(StageSpec {
                    op: member.op,
                    local: member.local,
                    stream_slot: member.stream_slot,
                    inputs,
                    tx,
                    rx,
                });
            }
        }

        // Run every stage of every partition concurrently and join them all;
        // a panicking stage surfaces as a typed worker panic.
        let mut outcomes: Vec<Result<StageOutcome>> = Vec::with_capacity(specs.len());
        std::thread::scope(|scope| {
            let handles: Vec<(
                String,
                std::thread::ScopedJoinHandle<'_, Result<StageOutcome>>,
            )> = specs
                .into_iter()
                .map(|spec| {
                    let name = spec.op.name.clone();
                    let handle = scope.spawn(move || run_stage(spec, page_native, fault, timeout));
                    (name, handle)
                })
                .collect();
            for (name, handle) in handles {
                outcomes.push(handle.join().unwrap_or_else(|payload| {
                    Err(DataflowError::WorkerPanic {
                        operator: name,
                        superstep: 0,
                        message: panic_message(&*payload),
                    })
                }));
            }
        });

        // A stage whose downstream died sees a channel hang-up, not the root
        // cause — report panics first, then the first non-hang-up error in
        // stage order, and the hang-up itself only if nothing else explains
        // the failure.
        let mut panic_err: Option<DataflowError> = None;
        let mut real_err: Option<DataflowError> = None;
        let mut hangup_err: Option<DataflowError> = None;
        let mut results: Vec<StageOutcome> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                Ok(result) => results.push(result),
                Err(err) => match &err {
                    DataflowError::WorkerPanic { .. } if panic_err.is_none() => {
                        panic_err = Some(err)
                    }
                    DataflowError::ExecutionFailed(msg) if msg == CHAIN_DISCONNECT_MSG => {
                        hangup_err.get_or_insert(err);
                    }
                    _ if real_err.is_none() => real_err = Some(err),
                    _ => {}
                },
            }
        }
        if let Some(err) = panic_err.or(real_err).or(hangup_err) {
            return Err(err);
        }

        // Per-member accounting: stage outcomes arrive member-major (the
        // spawn order), `parallelism` partitions per member.
        debug_assert_eq!(results.len(), members.len() * parallelism);
        let mut agg: Vec<StageAgg> = vec![StageAgg::default(); members.len()];
        let mut tail_parts: Vec<Partition> = Vec::with_capacity(parallelism);
        for (i, outcome) in results.into_iter().enumerate() {
            let pos = i / parallelism;
            agg[pos].records_in += outcome.records_in;
            agg[pos].records_out += outcome.records_out;
            agg[pos].elapsed += outcome.elapsed;
            agg[pos].high_water = agg[pos].high_water.max(outcome.high_water);
            if pos == tail_pos {
                tail_parts.push(outcome.result);
            }
        }
        for (pos, &mid) in members.iter().enumerate() {
            let op = plan.operator(mid);
            let member_agg = &agg[pos];
            if pos < tail_pos {
                // Fused-edge records stay inside their partition — the same
                // accounting a materializing forward exchange applies.
                stats.local_records += member_agg.records_out;
            }
            if pos > 0 {
                stats.peak_chain_pages = stats.peak_chain_pages.max(member_agg.high_water);
            }
            stats.operators.push(OperatorStats {
                name: op.name.clone(),
                contract: op.kind.contract_name().to_owned(),
                records_in: member_agg.records_in,
                records_out: member_agg.records_out,
                elapsed: member_agg.elapsed,
            });
        }
        stats.chained_operators += members.len();

        let tail_id = members[tail_pos];
        let result_parts = Arc::new(tail_parts);
        if let OperatorKind::Sink { name } = &plan.operator(tail_id).kind {
            sink_outputs.insert(name.clone(), Arc::clone(&result_parts));
        }
        outputs.insert(tail_id, result_parts);
        Ok(())
    }
}

/// Splits source data into contiguous chunks, one per partition.
fn split_into_partitions(data: &Arc<Vec<Record>>, parallelism: usize) -> Partitions {
    let mut parts: Partitions = vec![Vec::new(); parallelism];
    if data.is_empty() {
        return parts;
    }
    let chunk = data.len().div_ceil(parallelism);
    for (i, record) in data.iter().enumerate() {
        parts[(i / chunk).min(parallelism - 1)].push(record.clone());
    }
    parts
}

/// The producer side of one exchange: owned when this consumer is the last
/// user of the producer's output (records may be moved or serialized in
/// place), shared when someone else — another consumer, a sink result, the
/// loop-invariant cache — still holds it.
enum ProducerInput {
    /// Exclusively owned partitions.
    Owned(Partitions),
    /// Partitions still shared with other holders.
    Shared(Arc<Partitions>),
}

impl ProducerInput {
    fn partitions(&self) -> &Partitions {
        match self {
            ProducerInput::Owned(parts) => parts,
            ProducerInput::Shared(parts) => parts,
        }
    }

    /// Flattens all partitions into one record vector (moving when owned).
    fn into_flat_records(self) -> Vec<Record> {
        match self {
            ProducerInput::Owned(parts) => parts.into_iter().flatten().collect(),
            ProducerInput::Shared(parts) => parts.iter().flatten().cloned().collect(),
        }
    }
}

/// A post-exchange edge, as handed to the consumer's local phase.
enum PreparedInput {
    /// Shared record partitions (forward shipping, cache hits) plus the key
    /// fields they are sorted by, when the exchange that materialized them
    /// delivered sorted partitions.
    Shared(Arc<Partitions>, Option<KeyFields>),
    /// One [`ExchangedPartition`] per consumer partition (hash/range
    /// repartitioning and broadcast, i.e. every edge that "touches the
    /// network").
    Paged(Vec<ExchangedPartition>),
}

/// Splits prepared inputs into one input set per partition: shared inputs
/// hand every partition a (cheap) Arc clone, paged inputs move each
/// partition's local records and received page pointers into that
/// partition's task.
fn split_by_partition(
    prepared: Vec<PreparedInput>,
    parallelism: usize,
    arity: usize,
) -> Vec<Vec<LocalInput>> {
    let mut partition_inputs: Vec<Vec<LocalInput>> = (0..parallelism)
        .map(|_| Vec::with_capacity(arity))
        .collect();
    for prep in prepared {
        match prep {
            PreparedInput::Shared(parts, sorted_by) => {
                for (p, inputs) in partition_inputs.iter_mut().enumerate() {
                    inputs.push(LocalInput::Shared(Arc::clone(&parts), p, sorted_by.clone()));
                }
            }
            PreparedInput::Paged(parts) => {
                debug_assert_eq!(parts.len(), parallelism);
                for (part, inputs) in parts.into_iter().zip(partition_inputs.iter_mut()) {
                    inputs.push(LocalInput::Paged(part));
                }
            }
        }
    }
    partition_inputs
}

// ---------------------------------------------------------------------------
// Chain fusion: streaming operator segments
// ---------------------------------------------------------------------------

/// The fused segments of one physical plan: each segment is a maximal linear
/// chain of operators whose connecting edges stream instead of materializing.
#[derive(Debug, Default)]
struct ChainPlan {
    /// Member operator → (segment index, position inside the segment).
    member_of: HashMap<OperatorId, (usize, usize)>,
    /// Segment members in pipeline order, head first.
    segments: Vec<Vec<OperatorId>>,
}

/// The chain-fusion pass: finds maximal pipelineable segments.
///
/// An edge `A → B` (into slot `s` of `B`) fuses when all of the following
/// hold, so streaming it cannot change any observable result:
///
/// * `s` is `B`'s streaming slot ([`streaming_input_slot`]) — `B` can
///   consume the edge record by record;
/// * the edge ships `Forward` — partition `p` of `A` feeds partition `p` of
///   `B`, so a per-partition channel preserves exactly the materialized
///   delivery;
/// * the edge is not cached — loop-invariant edges must still snapshot into
///   the [`IntermediateCache`] for reuse across iterations;
/// * `B` is `A`'s **only** consumer — other consumers need `A`'s
///   materialized output;
/// * `A` is not a source (sources partition data on the main thread, there
///   is nothing to overlap) and not a sink (a sink's records *are* the
///   plan's result and must materialize).
///
/// Segments of length 1 are not chains; they run on the materializing path.
fn compute_chain_segments(physical: &PhysicalPlan) -> ChainPlan {
    let plan = &physical.plan;
    let mut consumer_count = vec![0usize; plan.len()];
    for op in plan.operators() {
        for input in &op.inputs {
            consumer_count[input.0] += 1;
        }
    }
    let mut fused_pred: Vec<Option<OperatorId>> = vec![None; plan.len()];
    let mut fused_succ: Vec<Option<OperatorId>> = vec![None; plan.len()];
    for op in plan.operators() {
        let choice = physical.choice(op.id);
        let Some(slot) = streaming_input_slot(&op.kind, choice.local) else {
            continue;
        };
        if slot >= op.inputs.len() {
            continue;
        }
        let producer_id = op.inputs[slot];
        if choice.input_ships[slot] != ShipStrategy::Forward
            || choice.cache_inputs[slot]
            || consumer_count[producer_id.0] != 1
        {
            continue;
        }
        let producer = plan.operator(producer_id);
        if matches!(
            producer.kind,
            OperatorKind::Source { .. } | OperatorKind::Sink { .. }
        ) {
            continue;
        }
        fused_pred[op.id.0] = Some(producer_id);
        fused_succ[producer_id.0] = Some(op.id);
    }
    let mut chain = ChainPlan::default();
    for op in plan.operators() {
        // A head has a fused successor but no fused predecessor.
        if fused_pred[op.id.0].is_some() || fused_succ[op.id.0].is_none() {
            continue;
        }
        let mut members = vec![op.id];
        let mut cursor = op.id;
        while let Some(next) = fused_succ[cursor.0] {
            members.push(next);
            cursor = next;
        }
        let seg = chain.segments.len();
        for (pos, &member) in members.iter().enumerate() {
            chain.member_of.insert(member, (seg, pos));
        }
        chain.segments.push(members);
    }
    chain
}

/// Marker message of the chain-hang-up error: a stage whose downstream
/// receiver died mid-stream.  Kept distinguishable so segment error
/// reporting can prefer the root cause over the ripple.
const CHAIN_DISCONNECT_MSG: &str = "chained edge receiver hung up mid-stream";

/// One stage (member × partition) of a fused segment, ready to spawn.
struct StageSpec<'p> {
    op: &'p Operator,
    local: LocalStrategy,
    /// The fused input slot this stage streams from (`None` for the head,
    /// which reads materialized inputs like any operator).
    stream_slot: Option<usize>,
    /// Materialized side inputs in slot order, the streamed slot absent.
    inputs: Vec<LocalInput>,
    /// Downstream fused edge (`None` for the tail).
    tx: Option<CreditSender<Arc<RecordPage>>>,
    /// Upstream fused edge (`None` for the head).
    rx: Option<CreditReceiver<Arc<RecordPage>>>,
}

/// What one stage reports back to the segment driver.
struct StageOutcome {
    records_in: usize,
    records_out: usize,
    elapsed: Duration,
    /// Receiver high-water mark of the upstream fused edge (0 for heads).
    high_water: usize,
    /// The tail's output partition (empty for non-tail stages — their
    /// records left through the chain).
    result: Vec<Record>,
}

/// Per-member aggregation of [`StageOutcome`]s across partitions.
#[derive(Clone, Default)]
struct StageAgg {
    records_in: usize,
    records_out: usize,
    elapsed: Duration,
    high_water: usize,
}

/// The producing end of one fused edge: a [`RecordSink`] that serializes
/// emitted records into pages and hands each page downstream **as it
/// seals**, blocking on the edge's credit pool — this is what bounds a
/// running chain to `credits × page size` bytes per edge.
///
/// Emission is infallible from the UDF's view; the first send failure is
/// recorded and every later page is dropped (the whole segment's results are
/// discarded on any stage error, so the partial stream is never observed).
struct ChainStream {
    writer: PageWriter,
    tx: CreditSender<Arc<RecordPage>>,
    sent_records: usize,
    error: Option<DataflowError>,
}

impl ChainStream {
    fn new(tx: CreditSender<Arc<RecordPage>>) -> Self {
        ChainStream {
            writer: PageWriter::new(),
            tx,
            sent_records: 0,
            error: None,
        }
    }

    fn send_page(&mut self, page: Arc<RecordPage>) {
        if self.error.is_some() {
            return;
        }
        self.sent_records += page.record_count();
        if let Err(err) = self.tx.send(page) {
            self.error = Some(match err {
                SendError::Timeout(_) => DataflowError::CommTimeout(
                    "a chained-edge credit (downstream stage stalled)".into(),
                ),
                SendError::Disconnected(_) => {
                    DataflowError::ExecutionFailed(CHAIN_DISCONNECT_MSG.into())
                }
            });
        }
    }

    /// Seals and sends the trailing partial page, then reports the first
    /// send failure (if any).  Dropping the sender signals end-of-stream to
    /// the downstream stage.
    fn finish(mut self) -> Result<usize> {
        let writer = std::mem::take(&mut self.writer);
        for page in writer.finish() {
            self.send_page(page);
        }
        match self.error.take() {
            Some(err) => Err(err),
            None => Ok(self.sent_records),
        }
    }
}

impl RecordSink for ChainStream {
    fn push(&mut self, record: Record) {
        self.writer.push(&record);
        if self.writer.sealed_page_count() > 0 {
            for page in self.writer.take_sealed() {
                self.send_page(page);
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Renders a stage thread's panic payload (mirrors the worker pool's panic
/// message extraction).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "chained stage panicked".to_owned()
    }
}

/// Runs one stage of a fused segment: the head runs the ordinary local
/// phase with its collector streaming into the chain; downstream stages
/// consume the chain via [`run_chained`], themselves streaming onward (mid)
/// or buffering the segment's output (tail).
fn run_stage(
    spec: StageSpec<'_>,
    page_native: bool,
    fault: &FaultInjector,
    timeout: Duration,
) -> Result<StageOutcome> {
    let start = Instant::now();
    fault.panic_check(FaultSite::WorkerPanic, "chained-operator");
    let StageSpec {
        op,
        local,
        stream_slot,
        inputs,
        tx,
        rx,
    } = spec;
    let mut collector = match tx {
        Some(tx) => Collector::with_sink(Box::new(ChainStream::new(tx))),
        None => Collector::new(),
    };
    let (records_in, high_water) = match (stream_slot, rx) {
        (None, None) => (
            run_local(op, local, inputs, page_native, fault, &mut collector)?,
            0,
        ),
        (Some(slot), Some(rx)) => {
            let records_in =
                run_chained(op, local, slot, inputs, &rx, timeout, fault, &mut collector)?;
            (records_in, rx.high_water())
        }
        _ => unreachable!("only heads lack a receiver, and heads have no stream slot"),
    };
    let records_out = collector.len();
    let result = match collector.take_sink() {
        Some(sink) => {
            let stream = sink
                .into_any()
                .downcast::<ChainStream>()
                .expect("chain stages stream through ChainStream");
            stream.finish()?;
            Vec::new()
        }
        None => collector.into_records(),
    };
    Ok(StageOutcome {
        records_in,
        records_out,
        elapsed: start.elapsed(),
        high_water,
        result,
    })
}

/// Runs one downstream member of a fused chain on one partition: consumes
/// the fused edge page by page as upstream seals them; side inputs (a hash
/// join's build side, a cross's broadcast side) arrive materialized, exactly
/// as the materializing path would prepare them.  Every emission path
/// matches [`run_local`]'s record-for-record, which is what keeps chained
/// and materialized executions byte-identical.
#[allow(clippy::too_many_arguments)]
fn run_chained(
    op: &Operator,
    local: LocalStrategy,
    stream_slot: usize,
    side_inputs: Vec<LocalInput>,
    rx: &CreditReceiver<Arc<RecordPage>>,
    timeout: Duration,
    fault: &FaultInjector,
    out: &mut Collector,
) -> Result<usize> {
    let mut records_in: usize = side_inputs.iter().map(LocalInput::len).sum();
    // The same executor-side spill-read fault gate as `run_local`: side
    // inputs can arrive as spilled runs under a memory budget.
    for input in &side_inputs {
        if input.has_spilled_runs() {
            fault.io_check(FaultSite::SpillRead)?;
        }
    }
    let mut side_inputs = side_inputs.into_iter();

    // Pulls every streamed record through `f` (deserialized into one scratch
    // record, like the paged read paths) until upstream hangs up — sender
    // drop is the chain's end-of-stream marker.
    let for_each_streamed = |f: &mut dyn FnMut(&Record)| -> Result<usize> {
        let mut scratch = Record::empty();
        let mut count = 0usize;
        loop {
            match rx.recv_timeout(timeout) {
                Ok(page) => {
                    for view in page.reader() {
                        view.read_into(&mut scratch);
                        count += 1;
                        f(&scratch);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Ok(count),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(DataflowError::CommTimeout(format!(
                        "pages on the chained edge into '{}'",
                        op.name
                    )))
                }
            }
        }
    };

    match (&op.kind, &op.udf) {
        (OperatorKind::Map, Udf::Map(udf)) => {
            records_in += for_each_streamed(&mut |record| udf.map(record, out))?;
        }
        (OperatorKind::Sink { .. }, _) => {
            records_in += for_each_streamed(&mut |record| out.collect(record.clone()))?;
        }
        (OperatorKind::Reduce { key }, Udf::Reduce(udf)) => match local {
            LocalStrategy::SortGroup => {
                // The stream carries no delivered order (forward edges never
                // do), so this pays the same sort the materializing SortGroup
                // path pays on an unsorted forward input.
                let mut records: Vec<Record> = Vec::new();
                records_in += for_each_streamed(&mut |record| records.push(record.clone()))?;
                sort_by_key(&mut records, key);
                for (start, end) in group_ranges(&records, key) {
                    let group = &records[start..end];
                    let k = Key::extract(&group[0], key);
                    udf.reduce(&k.values(), group, out);
                }
            }
            _ => {
                // HashGroup and any other strategy: fold the stream into the
                // group table as pages arrive (the pre-aggregation shape —
                // state is one table, never the full input), then emit in
                // key order like the materializing path.
                let mut groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
                records_in += for_each_streamed(&mut |record| {
                    groups
                        .entry(Key::extract(record, key))
                        .or_default()
                        .push(record.clone());
                })?;
                emit_grouped(groups, udf.as_ref(), out);
            }
        },
        (
            OperatorKind::Match {
                left_key,
                right_key,
            },
            Udf::Match(udf),
        ) => {
            // The build side is the materialized side input; the fused edge
            // streams the probe side.  Stream slot 0 means probe-left
            // (build=right), stream slot 1 probe-right (build=left) — the
            // same build/probe assignment `run_match` makes, including the
            // join argument positions.
            let build = side_inputs
                .next()
                .expect("a chained hash join keeps its build side input");
            let probe_left = stream_slot == 0;
            let (build_key, probe_key) = if probe_left {
                (right_key, left_key)
            } else {
                (left_key, right_key)
            };
            let build_records = build.into_records()?;
            let mut table: FxHashMap<Key, Vec<&Record>> = FxHashMap::default();
            for record in &build_records {
                table
                    .entry(Key::extract(record, build_key))
                    .or_default()
                    .push(record);
            }
            records_in += for_each_streamed(&mut |probe| {
                if let Some(matches) = table.get(&Key::extract(probe, probe_key)) {
                    for build_side in matches {
                        if probe_left {
                            udf.join(probe, build_side, out);
                        } else {
                            udf.join(build_side, probe, out);
                        }
                    }
                }
            })?;
        }
        (OperatorKind::Cross, Udf::Cross(udf)) => {
            let right_records = side_inputs
                .next()
                .expect("a chained cross keeps its right side input")
                .into_records()?;
            records_in += for_each_streamed(&mut |left| {
                for right in &right_records {
                    udf.cross(left, right, out);
                }
            })?;
        }
        (kind, _) => unreachable!(
            "operator contract {} cannot consume a fused edge",
            kind.contract_name()
        ),
    }
    Ok(records_in)
}

/// Builds (or reuses) the shared range histogram of one operator.
///
/// All range-partitioned input edges of the operator route through **one**
/// [`RangeBounds`] built from a combined key sample of their producers:
/// splitters are key *values*, so the two sides of a merge join — keyed on
/// different field positions — still agree on which partition owns which key
/// interval.  The bounds are frozen in the [`IntermediateCache`] so repeated
/// executions of an iterative step plan keep routing cached constant-path
/// edges and re-shipped dynamic-path edges consistently (the histogram is
/// built from the first iteration's data; later skew only affects balance,
/// never correctness).
///
/// Mixing hash- and range-partitioned inputs on a keyed two-input operator
/// is rejected: the two schemes route the same key to different partitions,
/// which would silently break the join's co-partitioning invariant.
fn prepare_range_bounds(
    op: &Operator,
    choice: &PhysicalChoice,
    outputs: &HashMap<OperatorId, Arc<Partitions>>,
    cache: &mut IntermediateCache,
    parallelism: usize,
) -> Result<Option<Arc<RangeBounds>>> {
    let mut range_edges: Vec<(usize, &KeyFields)> = Vec::new();
    let mut incompatible_ship = None;
    for (slot, ship) in choice.input_ships.iter().enumerate() {
        match ship {
            ShipStrategy::PartitionRange(keys) => range_edges.push((slot, keys)),
            // A hash-shipped sibling routes equal keys by a different
            // function; a forward-shipped sibling carries whatever layout
            // the upstream operator produced — even if that layout is range
            // partitioned, it came from a *different* histogram than the one
            // this operator is about to sample.  Either way the join's
            // co-partitioning invariant is silently broken, so both are
            // rejected (broadcast siblings replicate and are always fine).
            ShipStrategy::PartitionHash(_) => incompatible_ship = Some("hash-partitioned"),
            ShipStrategy::Forward => incompatible_ship = Some("forwarded"),
            ShipStrategy::Broadcast => {}
        }
    }
    if range_edges.is_empty() {
        return Ok(None);
    }
    if let (Some(kind), OperatorKind::Match { .. } | OperatorKind::CoGroup { .. }) =
        (incompatible_ship, &op.kind)
    {
        return Err(DataflowError::InvalidPlan(format!(
            "operator '{}' mixes range-partitioned and {kind} inputs; co-partitioned join \
             inputs must share one range histogram (range-ship both sides or broadcast one)",
            op.name
        )));
    }
    if let Some(bounds) = cache.range_bounds.get(&op.id) {
        return Ok(Some(Arc::clone(bounds)));
    }
    let mut sample: Vec<Key> = Vec::new();
    for &(slot, keys) in &range_edges {
        if let Some(producer) = outputs.get(&op.inputs[slot]) {
            for partition in producer.iter() {
                sample_keys_into(&mut sample, partition, keys);
            }
        }
    }
    let bounds = Arc::new(RangeBounds::from_sample(sample, parallelism));
    cache.range_bounds.insert(op.id, Arc::clone(&bounds));
    Ok(Some(bounds))
}

/// The record-based exchange used for loop-invariant (cached) edges.  The
/// cache stores materialized record partitions that are re-read on every
/// step-plan execution, so routing them through sealed pages would be an
/// immediate serialize/deserialize roundtrip; instead records are cloned (or
/// moved, when owned) straight into their target partitions.  Routing and
/// shipped/local accounting mirror the paged exchange; range edges are
/// additionally sorted once, so every re-execution reads them pre-sorted.
/// Returns the partitions plus the key fields they are sorted by (range
/// shipping only).
fn cache_exchange_records(
    producer: ProducerInput,
    ship: &ShipStrategy,
    parallelism: usize,
    bounds: Option<&RangeBounds>,
    stats: &mut ExecutionStats,
) -> (Partitions, Option<KeyFields>) {
    match ship {
        ShipStrategy::Forward => {
            let total: usize = producer.partitions().iter().map(Vec::len).sum();
            stats.local_records += total;
            let mut parts = match producer {
                ProducerInput::Owned(parts) => parts,
                ProducerInput::Shared(parts) => {
                    Arc::try_unwrap(parts).unwrap_or_else(|shared| (*shared).clone())
                }
            };
            parts.resize(parallelism, Vec::new());
            (parts, None)
        }
        ShipStrategy::PartitionHash(keys) | ShipStrategy::PartitionRange(keys) => {
            let is_range = matches!(ship, ShipStrategy::PartitionRange(_));
            let bounds = is_range.then(|| bounds.expect("executor built range bounds"));
            let total: usize = producer.partitions().iter().map(Vec::len).sum();
            let per_target = total / parallelism + total / (parallelism * 4).max(1) + 4;
            let mut parts: Partitions = (0..parallelism)
                .map(|_| Vec::with_capacity(per_target))
                .collect();
            let mut route = |src: usize, record: Cow<'_, Record>| {
                let target = match bounds {
                    Some(bounds) => bounds.partition_for_record(&record, keys),
                    None => partition_for(&record, keys, parallelism),
                };
                if target == src {
                    stats.local_records += 1;
                } else {
                    stats.shipped_records += 1;
                    stats.shipped_bytes += record.estimated_bytes();
                }
                parts[target].push(record.into_owned());
            };
            match producer {
                ProducerInput::Owned(partitions) => {
                    for (src, partition) in partitions.into_iter().enumerate() {
                        for record in partition {
                            route(src, Cow::Owned(record));
                        }
                    }
                }
                ProducerInput::Shared(partitions) => {
                    for (src, partition) in partitions.iter().enumerate() {
                        for record in partition {
                            route(src, Cow::Borrowed(record));
                        }
                    }
                }
            }
            if is_range {
                for part in &mut parts {
                    sort_by_key_normalized(part, keys);
                }
                (parts, Some(keys.clone()))
            } else {
                (parts, None)
            }
        }
        ShipStrategy::Broadcast => {
            let records = producer.into_flat_records();
            let copies = parallelism.saturating_sub(1);
            stats.shipped_records += records.len() * copies;
            stats.shipped_bytes +=
                copies * records.iter().map(Record::estimated_bytes).sum::<usize>();
            stats.local_records += records.len();
            let mut parts: Partitions = (0..copies).map(|_| records.clone()).collect();
            parts.push(records);
            (parts, None)
        }
    }
}

/// Materializes one cached edge, spilling it to disk when it exceeds the
/// cache's memory budget.  Spilled range edges are already sorted per
/// partition, so their pages are written **verbatim** as one sorted run per
/// partition — the sort was paid once, the disk keeps it.
fn build_cached_edge(
    parts: Partitions,
    sorted_by: Option<KeyFields>,
    budget: MemoryBudget,
    stats: &mut ExecutionStats,
) -> Result<CachedEdge> {
    let total_bytes: usize = parts
        .iter()
        .flatten()
        .map(Record::estimated_bytes)
        .sum::<usize>();
    if budget.allows(total_bytes) {
        return Ok(CachedEdge {
            parts: Arc::new(parts),
            runs: None,
            sorted_by,
        });
    }
    let dir = crate::spill::default_spill_dir();
    let mut runs: Vec<Vec<SpilledRun>> = Vec::with_capacity(parts.len());
    for partition in parts {
        if partition.is_empty() {
            runs.push(Vec::new());
            continue;
        }
        let mut writer = PageWriter::new();
        for record in &partition {
            writer.push(record);
        }
        let run = write_run_in(&dir, &writer.finish(), sorted_by.clone())?;
        stats.spilled_bytes += run.byte_len();
        stats.spilled_runs += 1;
        runs.push(vec![run]);
    }
    Ok(CachedEdge {
        parts: Arc::new(Partitions::new()),
        runs: Some(Arc::new(runs)),
        sorted_by,
    })
}

/// Routes the producer's partitions to the consumer's partitions according to
/// the shipping strategy, updating the shipped/local counters.  Hash and
/// range exchanges run under the executor's memory budget: sealed pages
/// beyond it spill to disk as sorted runs (broadcast replicates shared pages
/// and never spills; forward moves records locally and has nothing to
/// serialize).
fn exchange(
    producer: ProducerInput,
    ship: &ShipStrategy,
    parallelism: usize,
    bounds: Option<&RangeBounds>,
    config: &ExecConfig,
    stats: &mut ExecutionStats,
) -> Result<PreparedInput> {
    match ship {
        ShipStrategy::Forward => {
            let total: usize = producer.partitions().iter().map(Vec::len).sum();
            stats.local_records += total;
            let parts = match producer {
                ProducerInput::Owned(mut parts) => {
                    parts.resize(parallelism, Vec::new());
                    Arc::new(parts)
                }
                ProducerInput::Shared(parts) => {
                    if parts.len() == parallelism {
                        parts
                    } else {
                        let mut cloned = (*parts).clone();
                        cloned.resize(parallelism, Vec::new());
                        Arc::new(cloned)
                    }
                }
            };
            Ok(PreparedInput::Shared(parts, None))
        }
        ShipStrategy::PartitionHash(keys) => {
            let spill =
                exchange_spill_manager(config, keys, producer.partitions().len(), parallelism);
            Ok(PreparedInput::Paged(paged_exchange(
                producer,
                keys,
                parallelism,
                &spill,
                &config.transport,
                stats,
            )?))
        }
        ShipStrategy::PartitionRange(keys) => {
            let spill =
                exchange_spill_manager(config, keys, producer.partitions().len(), parallelism);
            Ok(PreparedInput::Paged(range_exchange(
                producer,
                keys,
                bounds.expect("executor built range bounds"),
                parallelism,
                &spill,
                &config.transport,
                stats,
            )?))
        }
        ShipStrategy::Broadcast => Ok(PreparedInput::Paged(broadcast_paged(
            producer,
            parallelism,
            stats,
        ))),
    }
}

/// The spill policy of one repartitioning exchange: the executor's budget is
/// split evenly over the exchange's producer×target page writers, and every
/// flushed run is sorted on the exchange key — range partitions are sorted
/// runs by definition, and hash partitions gain the normalized-key order
/// that lets sort-based consumers merge instead of re-sorting.
fn exchange_spill_manager(
    config: &ExecConfig,
    keys: &[usize],
    sources: usize,
    parallelism: usize,
) -> SpillManager {
    SpillManager::new(
        config.memory_budget.share(sources.max(1) * parallelism),
        Some(keys.to_vec()),
    )
    .with_fault(config.fault.clone())
}

/// What one producer partition contributes to a paged exchange: the records
/// that stay local, one run of sealed pages (plus any spilled runs) per peer
/// target, and the routing counters.
struct RoutedSource {
    local: Vec<Record>,
    pages: Vec<Vec<Arc<RecordPage>>>,
    /// Runs spilled per target while routing under a memory budget.
    runs: Vec<Vec<SpilledRun>>,
    shipped_records: usize,
    shipped_bytes: usize,
    spill: SpillStats,
}

/// Routes one producer partition: records staying in `src` go to the local
/// buffer (moved when the producer is owned, cloned when it is shared —
/// that is the only difference the `Cow` carries); records for peer
/// partitions are serialized into the target's budgeted page writer straight
/// from the borrow, never cloned — sealed pages beyond the writer's budget
/// leave for disk as sorted runs.  The routing decision itself is the
/// `router` closure — hash for [`paged_exchange`], splitter search for
/// [`range_exchange`].
fn route_source<'a>(
    src: usize,
    records: impl Iterator<Item = Cow<'a, Record>>,
    router: &(impl Fn(&Record) -> usize + Sync),
    parallelism: usize,
    spill: &SpillManager,
) -> std::io::Result<RoutedSource> {
    let mut writers: Vec<crate::spill::SpillingWriter> =
        (0..parallelism).map(|_| spill.writer()).collect();
    let mut local = Vec::new();
    let (mut shipped_records, mut shipped_bytes) = (0usize, 0usize);
    for record in records {
        let target = router(&record);
        if target == src {
            local.push(record.into_owned());
        } else {
            shipped_records += 1;
            shipped_bytes += writers[target].push(&record);
        }
    }
    let mut pages = Vec::with_capacity(parallelism);
    let mut runs = Vec::with_capacity(parallelism);
    let mut spill_stats = SpillStats::default();
    for writer in writers {
        let out = writer.finish()?;
        spill_stats.merge(&out.stats);
        pages.push(out.pages);
        runs.push(out.runs);
    }
    Ok(RoutedSource {
        local,
        pages,
        runs,
        shipped_records,
        shipped_bytes,
        spill: spill_stats,
    })
}

/// The paged repartitioning skeleton shared by the hash and range exchanges.
/// Every producer partition routes its records concurrently on the worker
/// pool (serializing outbound records into per-target pages); the sealed
/// pages then ship through the transport's page channel — pointer moves on
/// the in-process backend, framed bytes on TCP — while local record buffers
/// and spilled-run handles (disk is node-local) move directly.
fn route_paged(
    producer: ProducerInput,
    router: &(impl Fn(&Record) -> usize + Sync),
    parallelism: usize,
    spill: &SpillManager,
    transport: &TransportHandle,
    stats: &mut ExecutionStats,
) -> Result<Vec<ExchangedPartition>> {
    let sources = producer.partitions().len();
    let mut routed: Vec<Option<std::io::Result<RoutedSource>>> =
        (0..sources).map(|_| None).collect();
    if sources <= 1 {
        match producer {
            ProducerInput::Owned(parts) => {
                for (src, records) in parts.into_iter().enumerate() {
                    routed[src] = Some(route_source(
                        src,
                        records.into_iter().map(Cow::Owned),
                        router,
                        parallelism,
                        spill,
                    ));
                }
            }
            ProducerInput::Shared(parts) => {
                for (src, records) in parts.iter().enumerate() {
                    routed[src] = Some(route_source(
                        src,
                        records.iter().map(Cow::Borrowed),
                        router,
                        parallelism,
                        spill,
                    ));
                }
            }
        }
    } else {
        let route_panic = |panic: spinning_pool::ScopePanic| DataflowError::WorkerPanic {
            operator: "exchange-route".to_string(),
            superstep: 0,
            message: panic.message(),
        };
        match producer {
            ProducerInput::Owned(parts) => {
                spinning_pool::global()
                    .try_scope(|scope| {
                        for ((src, records), slot) in
                            parts.into_iter().enumerate().zip(routed.iter_mut())
                        {
                            scope.spawn_labeled("exchange-route", move || {
                                spill
                                    .fault()
                                    .panic_check(FaultSite::WorkerPanic, "exchange-route");
                                *slot = Some(route_source(
                                    src,
                                    records.into_iter().map(Cow::Owned),
                                    router,
                                    parallelism,
                                    spill,
                                ));
                            });
                        }
                    })
                    .map_err(route_panic)?;
            }
            ProducerInput::Shared(parts) => {
                let parts: &Partitions = &parts;
                spinning_pool::global()
                    .try_scope(|scope| {
                        for ((src, records), slot) in
                            parts.iter().enumerate().zip(routed.iter_mut())
                        {
                            scope.spawn_labeled("exchange-route", move || {
                                spill
                                    .fault()
                                    .panic_check(FaultSite::WorkerPanic, "exchange-route");
                                *slot = Some(route_source(
                                    src,
                                    records.iter().map(Cow::Borrowed),
                                    router,
                                    parallelism,
                                    spill,
                                ));
                            });
                        }
                    })
                    .map_err(route_panic)?;
            }
        }
    }
    let mut routed: Vec<RoutedSource> = routed
        .into_iter()
        .map(|slot| {
            slot.expect("pool routed every producer partition")
                .map_err(DataflowError::from)
        })
        .collect::<Result<_>>()?;

    // Gather: partition `t` keeps the records that never left it and receives
    // the sealed pages every producer addressed to it through the page
    // channel; spilled-run handles move directly (the run files are
    // node-local).  On the in-process backend this is pure pointer moves.
    let mut result: Vec<ExchangedPartition> = routed
        .iter_mut()
        .map(|source| {
            stats.shipped_records += source.shipped_records;
            stats.shipped_bytes += source.shipped_bytes;
            stats.local_records += source.local.len();
            stats.shipped_pages += source.pages.iter().map(Vec::len).sum::<usize>();
            stats.spilled_bytes += source.spill.spilled_bytes;
            stats.spilled_runs += source.spill.spilled_runs;
            ExchangedPartition::from_records(std::mem::take(&mut source.local))
        })
        .collect();
    result.resize_with(parallelism, ExchangedPartition::default);
    let channel = transport.fresh_channel(parallelism);
    for (src, source) in routed.into_iter().enumerate() {
        for (target, pages) in source.pages.into_iter().enumerate() {
            channel.send(0, src, target, pages)?;
        }
        channel.finish_round(0, src)?;
        for (target, runs) in source.runs.into_iter().enumerate() {
            result[target].receive_runs(runs);
        }
    }
    // A producer narrower than the consumer still owes the channel one
    // end-of-round per missing source, or the receivers would wait for it.
    for src in sources..parallelism {
        channel.finish_round(0, src)?;
    }
    for (target, slot) in result.iter_mut().enumerate() {
        for (_, pages) in channel.recv(0, target)? {
            slot.receive_pages(pages);
        }
    }
    Ok(result)
}

/// The hash repartitioning exchange (see [`route_paged`]).
fn paged_exchange(
    producer: ProducerInput,
    keys: &[usize],
    parallelism: usize,
    spill: &SpillManager,
    transport: &TransportHandle,
    stats: &mut ExecutionStats,
) -> Result<Vec<ExchangedPartition>> {
    route_paged(
        producer,
        &|record: &Record| partition_for(record, keys, parallelism),
        parallelism,
        spill,
        transport,
        stats,
    )
}

/// The range repartitioning exchange: routes by binary search over the
/// shared splitter histogram (see [`prepare_range_bounds`]) and then sorts
/// every consumer partition on the key — the memcmp prefix sort for `Long`
/// keys, the `Value`-comparison sort otherwise — so the concatenation of the
/// delivered partitions is **globally sorted**.  The per-partition sorts run
/// concurrently on the worker pool; the delivered partitions advertise their
/// order ([`ExchangedPartition::sorted_by`]), which lets sort-based local
/// strategies skip their own sort.
fn range_exchange(
    producer: ProducerInput,
    keys: &[usize],
    bounds: &RangeBounds,
    parallelism: usize,
    spill: &SpillManager,
    transport: &TransportHandle,
    stats: &mut ExecutionStats,
) -> Result<Vec<ExchangedPartition>> {
    let routed = route_paged(
        producer,
        &|record: &Record| bounds.partition_for_record(record, keys),
        parallelism,
        spill,
        transport,
        stats,
    )?;
    let mut sorted: Vec<Option<ExchangedPartition>> = routed.into_iter().map(Some).collect();
    // Sort what is in memory; anything that spilled during routing is
    // already a sorted run on disk (sorted on flush), so the delivered
    // partition is the *merge* of the sorted pieces — the sort never touches
    // the spilled bytes again.
    let sort_one = |part: ExchangedPartition| {
        let (mut records, runs) = part.into_mem_and_runs();
        sort_by_key_normalized(&mut records, keys);
        if runs.is_empty() {
            ExchangedPartition::from_sorted_records(records, keys.to_vec())
        } else {
            ExchangedPartition::from_sorted_spilled(records, runs, keys.to_vec())
        }
    };
    if parallelism <= 1 {
        for slot in sorted.iter_mut() {
            *slot = Some(sort_one(slot.take().expect("partition present")));
        }
    } else {
        spinning_pool::global()
            .try_scope(|scope| {
                for slot in sorted.iter_mut() {
                    let sort_one = &sort_one;
                    scope.spawn_labeled("range-sort", move || {
                        *slot = Some(sort_one(slot.take().expect("partition present")));
                    });
                }
            })
            .map_err(|panic| DataflowError::WorkerPanic {
                operator: "range-sort".to_string(),
                superstep: 0,
                message: panic.message(),
            })?;
    }
    Ok(sorted
        .into_iter()
        .map(|slot| slot.expect("pool sorted every partition"))
        .collect())
}

/// The paged broadcast: all records are serialized **once**, then every
/// consumer partition shares the same sealed pages by pointer — replication
/// costs one Arc clone per page per target instead of one record clone per
/// record per target.
fn broadcast_paged(
    producer: ProducerInput,
    parallelism: usize,
    stats: &mut ExecutionStats,
) -> Vec<ExchangedPartition> {
    if parallelism == 1 {
        // Degenerate broadcast: everything is local, nothing to serialize.
        let records = producer.into_flat_records();
        stats.local_records += records.len();
        return vec![ExchangedPartition::from_records(records)];
    }
    let mut writer = PageWriter::new();
    let (mut count, mut bytes) = (0usize, 0usize);
    for record in producer.partitions().iter().flatten() {
        count += 1;
        bytes += writer.push(record);
    }
    let pages = writer.finish();
    let copies = parallelism - 1;
    stats.shipped_records += count * copies;
    stats.shipped_bytes += bytes * copies;
    stats.local_records += count;
    stats.shipped_pages += pages.len() * copies;
    (0..parallelism)
        .map(|_| ExchangedPartition::new(Vec::new(), pages.clone()))
        .collect()
}

/// One input edge of one partition's local phase: either a view into shared
/// record partitions or the owned local-records-plus-pages of a paged
/// exchange.
enum LocalInput {
    /// Partition `1` of the shared partitions `0`, plus the key fields the
    /// partition is sorted by (range-exchanged cached edges).
    Shared(Arc<Partitions>, usize, Option<KeyFields>),
    /// The owned post-exchange input of this partition.
    Paged(ExchangedPartition),
}

impl LocalInput {
    /// Number of records in this input.
    fn len(&self) -> usize {
        match self {
            LocalInput::Shared(parts, p, _) => parts[*p].len(),
            LocalInput::Paged(part) => part.record_count(),
        }
    }

    /// The key fields this input is already sorted by (delivered by a range
    /// exchange), if any.  Sort-based local strategies with a matching key
    /// skip their sort.
    fn sorted_by(&self) -> Option<&[usize]> {
        match self {
            LocalInput::Shared(_, _, sorted) => sorted.as_deref(),
            LocalInput::Paged(part) => part.sorted_by(),
        }
    }

    /// Visits every record by reference; page records are deserialized into
    /// one scratch record reused across calls.  Fails with the underlying
    /// I/O error when a spilled run cannot be read.
    fn for_each_ref(&self, f: impl FnMut(&Record)) -> std::io::Result<()> {
        match self {
            LocalInput::Shared(parts, p, _) => {
                let mut f = f;
                for record in &parts[*p] {
                    f(record);
                }
                Ok(())
            }
            LocalInput::Paged(part) => part.for_each_ref(f),
        }
    }

    /// Visits every record owned: shared inputs clone (someone else still
    /// holds them), paged inputs move their local records and materialize
    /// their page records.  Fails with the underlying I/O error when a
    /// spilled run cannot be read.
    fn for_each_owned(self, f: impl FnMut(Record)) -> std::io::Result<()> {
        match self {
            LocalInput::Shared(parts, p, _) => {
                let mut f = f;
                for record in &parts[p] {
                    f(record.clone());
                }
                Ok(())
            }
            LocalInput::Paged(part) => part.for_each_owned(f),
        }
    }

    /// Materializes the whole input into owned records (preserving the
    /// delivered order).  Fails with the underlying I/O error when a spilled
    /// run cannot be read.
    fn into_records(self) -> std::io::Result<Vec<Record>> {
        match self {
            LocalInput::Shared(parts, p, _) => Ok(parts[p].clone()),
            LocalInput::Paged(part) => part.into_records(),
        }
    }

    /// True when this input is backed by spilled runs on disk — the inputs
    /// whose local phase performs spill reads (and therefore consults the
    /// [`FaultSite::SpillRead`] injector before touching the disk).
    fn has_spilled_runs(&self) -> bool {
        matches!(self, LocalInput::Paged(part) if part.spilled_run_count() > 0)
    }
}

/// Runs one operator's local work on one partition's inputs, emitting into
/// `out`.  With `page_native` set (the default), joins and groups over paged
/// inputs work on `(page, offset)` handles into the delivered pages,
/// deserializing a record only at the user-function boundary; otherwise (or
/// when an input does not qualify) they materialize heap records first.
/// Returns the number of records consumed; spill-read failures (injected or
/// real) surface as typed errors instead of panics.
fn run_local(
    op: &Operator,
    local: LocalStrategy,
    inputs: Vec<LocalInput>,
    page_native: bool,
    fault: &FaultInjector,
    out: &mut Collector,
) -> Result<usize> {
    let records_in: usize = inputs.iter().map(LocalInput::len).sum();
    // The executor-side spill-read fault gate: one check per input backed by
    // spilled runs, consumed before any local algorithm touches the disk —
    // the same convention the workset superstep read path follows.
    for input in &inputs {
        if input.has_spilled_runs() {
            fault.io_check(FaultSite::SpillRead)?;
        }
    }
    let mut inputs = inputs.into_iter();
    fn next_input(inputs: &mut impl Iterator<Item = LocalInput>) -> LocalInput {
        inputs.next().expect("plan validation checked input arity")
    }
    match (&op.kind, &op.udf) {
        (OperatorKind::Map, Udf::Map(udf)) => {
            next_input(&mut inputs).for_each_ref(|record| udf.map(record, out))?;
        }
        (OperatorKind::Reduce { key }, Udf::Reduce(udf)) => {
            run_reduce(
                key,
                local,
                next_input(&mut inputs),
                udf.as_ref(),
                out,
                page_native,
            )?;
        }
        (
            OperatorKind::Match {
                left_key,
                right_key,
            },
            Udf::Match(udf),
        ) => {
            let left = next_input(&mut inputs);
            let right = next_input(&mut inputs);
            run_match(
                left_key,
                right_key,
                local,
                left,
                right,
                udf.as_ref(),
                out,
                page_native,
            )?;
        }
        (OperatorKind::Cross, Udf::Cross(udf)) => {
            let left = next_input(&mut inputs);
            let right = next_input(&mut inputs);
            let right_records = right.into_records()?;
            left.for_each_ref(|l| {
                for r in &right_records {
                    udf.cross(l, r, out);
                }
            })?;
        }
        (
            OperatorKind::CoGroup {
                left_key,
                right_key,
                inner,
            },
            Udf::CoGroup(udf),
        ) => {
            let left = next_input(&mut inputs);
            let right = next_input(&mut inputs);
            run_cogroup(left_key, right_key, *inner, left, right, udf.as_ref(), out)?;
        }
        (OperatorKind::Union, _) => {
            for input in inputs {
                input.for_each_owned(|record| out.collect(record))?;
            }
        }
        (OperatorKind::Sink { .. }, _) => {
            next_input(&mut inputs).for_each_owned(|record| out.collect(record))?;
        }
        (OperatorKind::Source { .. }, _) => {
            // Sources are handled by the executor before run_local is called.
            unreachable!("sources do not run a local phase");
        }
        (kind, udf) => {
            panic!(
                "operator '{}' has contract {} but UDF {:?}",
                op.name,
                kind.contract_name(),
                udf
            );
        }
    }
    Ok(records_in)
}

/// Materializes one input sorted by `key`: pre-sorted deliveries pass
/// through (sorted spilled partitions merge linearly inside
/// [`LocalInput::into_records`]), unsorted inputs whose spilled runs are
/// individually sorted on `key` merge those runs with the sorted in-memory
/// residue, and everything else pays the sort.
fn into_sorted_records(input: LocalInput, key: &[usize]) -> std::io::Result<Vec<Record>> {
    let presorted = input.sorted_by() == Some(key);
    match input {
        LocalInput::Paged(part)
            if !presorted && part.spilled_run_count() > 0 && part.spilled_runs_sorted_by(key) =>
        {
            let (mut residue, runs) = part.into_mem_and_runs();
            sort_by_key_normalized(&mut residue, key);
            let mut records = Vec::new();
            RunMerger::over_runs(&runs, residue, key.to_vec())?.collect_into(&mut records)?;
            Ok(records)
        }
        other => {
            let mut records = other.into_records()?;
            if !presorted {
                sort_by_key(&mut records, key);
            }
            Ok(records)
        }
    }
}

// ---------------------------------------------------------------------------
// Page-native operator paths
// ---------------------------------------------------------------------------
//
// Joins and groups over paged inputs build tables of `(page, offset)` handles
// keyed on the 8-byte normalized `Long` key prefix instead of materializing
// `Vec<Record>` first.  Because the normalized encoding is a bijection and
// byte equality of serialized fields is exactly `Value` equality, the prefix
// *is* the complete single-`Long` key: no collision fallback is ever needed.
// Records are deserialized only at the user-function boundary, through
// scratch records reused across calls.  Inputs that do not qualify (composite
// or non-`Long` keys, shared record inputs on the build side, or sorted
// spilled partitions whose merge order the materializing path preserves)
// fall back, so both paths stay byte-identical.

/// The normalized key prefix of a heap record's `Long` field, or `None` when
/// the field is missing or not a `Long`.
#[inline]
fn long_prefix_of(record: &Record, field: usize) -> Option<u64> {
    match record.fields().get(field)? {
        crate::value::Value::Long(v) => Some(u64::from_be_bytes(normalize_long(*v))),
        _ => None,
    }
}

/// Ingests a paged partition into a handle-addressed store, reporting every
/// record's `(prefix, handle)` in delivery order (local records, then pages,
/// then spilled runs — the same order the materializing accessors visit).
/// Local records are serialized once; pages are adopted by pointer; spilled
/// runs are revived as pages (a read per page, no per-record work).  Returns
/// `Ok(None)` when any record's key field is not a `Long` — the caller falls
/// back to the materializing path — and a typed I/O error when a run cannot
/// be read (falling back would only hit the same error again, unpaged).
fn ingest_paged(
    part: &ExchangedPartition,
    key_field: usize,
    mut on_record: impl FnMut(u64, PageHandle),
) -> std::io::Result<Option<PagedRecords>> {
    let mut store = PagedRecords::new();
    for record in part.local_records() {
        let Some(prefix) = long_prefix_of(record, key_field) else {
            return Ok(None);
        };
        let handle = store.append(record);
        on_record(prefix, handle);
    }
    let mut scan = |store: &mut PagedRecords, page: &Arc<RecordPage>| {
        store.adopt_page_scanned(page, |handle, view| match view.long_key_prefix(key_field) {
            Some(prefix) => {
                on_record(prefix, handle);
                true
            }
            None => false,
        })
    };
    for page in part.pages() {
        if !scan(&mut store, page) {
            return Ok(None);
        }
    }
    for run in part.runs() {
        let pages = run.read_pages()?;
        for page in &pages {
            if !scan(&mut store, page) {
                return Ok(None);
            }
        }
    }
    Ok(Some(store))
}

/// True when `part` is worth ingesting: it actually delivered serialized
/// data.  An all-local partition gains nothing from being re-serialized.
fn has_paged_data(part: &ExchangedPartition) -> bool {
    part.page_count() > 0 || part.spilled_run_count() > 0
}

/// True when the materializing accessors would *merge* this partition's
/// sorted pieces (sorted delivery with spilled overflow) — an order the
/// ingest-in-delivery-order path cannot reproduce, so it must fall back.
fn is_sorted_merge_part(part: &ExchangedPartition) -> bool {
    part.sorted_by().is_some() && part.spilled_run_count() > 0
}

/// Page-native hash join: builds a prefix-keyed handle table over the build
/// side and probes it with key prefixes read in place off the probe side's
/// pages.  Returns `Ok(false)` (nothing emitted) when either side
/// disqualifies.
#[allow(clippy::too_many_arguments)]
fn try_match_paged(
    build: &LocalInput,
    probe: &LocalInput,
    build_key: &[usize],
    probe_key: &[usize],
    build_is_left: bool,
    udf: &dyn crate::contracts::MatchFunction,
    out: &mut Collector,
) -> std::io::Result<bool> {
    let (&[build_field], &[probe_field]) = (build_key, probe_key) else {
        return Ok(false);
    };
    let LocalInput::Paged(build_part) = build else {
        return Ok(false);
    };
    if !has_paged_data(build_part) || is_sorted_merge_part(build_part) {
        return Ok(false);
    }
    let mut table = PrefixTable::new();
    let Some(store) = ingest_paged(build_part, build_field, |prefix, handle| {
        table.insert(prefix, handle)
    })?
    else {
        return Ok(false);
    };

    // One probe record against the whole chain of its prefix.  Matches are
    // emitted in build insertion order, exactly like the materializing path.
    fn probe_chain(
        store: &PagedRecords,
        table: &PrefixTable,
        prefix: u64,
        probe: &Record,
        build_is_left: bool,
        build_scratch: &mut Record,
        udf: &dyn crate::contracts::MatchFunction,
        out: &mut Collector,
    ) {
        for handle in table.probe(prefix) {
            store.view(handle).read_into(build_scratch);
            if build_is_left {
                udf.join(build_scratch, probe, out);
            } else {
                udf.join(probe, build_scratch, out);
            }
        }
    }
    let mut build_scratch = Record::empty();
    match probe {
        LocalInput::Shared(parts, p, _) => {
            for record in &parts[*p] {
                if let Some(prefix) = long_prefix_of(record, probe_field) {
                    probe_chain(
                        &store,
                        &table,
                        prefix,
                        record,
                        build_is_left,
                        &mut build_scratch,
                        udf,
                        out,
                    );
                }
            }
        }
        LocalInput::Paged(part) => {
            for record in part.local_records() {
                if let Some(prefix) = long_prefix_of(record, probe_field) {
                    probe_chain(
                        &store,
                        &table,
                        prefix,
                        record,
                        build_is_left,
                        &mut build_scratch,
                        udf,
                        out,
                    );
                }
            }
            // Page records: the key prefix is read in place; the record is
            // deserialized (into one reused scratch) only when its chain is
            // non-empty.  This is the zero-copy exchange→probe hot path.
            let mut probe_scratch = Record::empty();
            for page in part.pages() {
                for view in page.reader() {
                    let Some(prefix) = view.long_key_prefix(probe_field) else {
                        continue;
                    };
                    if table.probe(prefix).next().is_none() {
                        continue;
                    }
                    view.read_into(&mut probe_scratch);
                    probe_chain(
                        &store,
                        &table,
                        prefix,
                        &probe_scratch,
                        build_is_left,
                        &mut build_scratch,
                        udf,
                        out,
                    );
                }
            }
            let mut scratch = Record::empty();
            for run in part.runs() {
                let mut cursor = run.cursor()?;
                while cursor.next_into(&mut scratch)? {
                    if let Some(prefix) = long_prefix_of(&scratch, probe_field) {
                        probe_chain(
                            &store,
                            &table,
                            prefix,
                            &scratch,
                            build_is_left,
                            &mut build_scratch,
                            udf,
                            out,
                        );
                    }
                }
            }
        }
    }
    Ok(true)
}

/// Sorts a paged input by key prefix without materializing it: the returned
/// pairs order `(prefix, handle)` with the handle (insertion position) as
/// tiebreak, which reproduces exactly the stable record sort of the
/// materializing path — on 16-byte items instead of heap records.
fn sorted_pairs_paged(
    part: &ExchangedPartition,
    key_field: usize,
) -> std::io::Result<Option<SortedPaged>> {
    let mut pairs: Vec<(u64, PageHandle)> = Vec::with_capacity(part.record_count());
    let Some(store) = ingest_paged(part, key_field, |prefix, handle| {
        pairs.push((prefix, handle))
    })?
    else {
        return Ok(None);
    };
    pairs.sort_unstable();
    Ok(Some((store, pairs)))
}

/// Materializes the group `pairs[start..end]` into the reusable `group`
/// buffer (records beyond the group keep their warm capacity for the next
/// group) and returns the group slice length.
fn fill_group(store: &PagedRecords, pairs: &[(u64, PageHandle)], group: &mut Vec<Record>) -> usize {
    while group.len() < pairs.len() {
        group.push(Record::empty());
    }
    for (slot, &(_, handle)) in group.iter_mut().zip(pairs) {
        store.view(handle).read_into(slot);
    }
    pairs.len()
}

/// Page-native grouping: sorts `(prefix, handle)` pairs and streams each key
/// group through one reusable record buffer into the reduce function.
/// Groups come out in key order with records in delivery order — identical
/// to both the hash-table and the sort-based materializing strategies.
fn try_reduce_paged(
    key: &[usize],
    input: &LocalInput,
    sort_based: bool,
    udf: &dyn crate::contracts::ReduceFunction,
    out: &mut Collector,
) -> std::io::Result<bool> {
    let &[field] = key else {
        return Ok(false);
    };
    let LocalInput::Paged(part) = input else {
        return Ok(false);
    };
    if !has_paged_data(part) || is_sorted_merge_part(part) {
        return Ok(false);
    }
    // The sort strategy merges key-sorted spilled runs out of core (one
    // group in memory at a time); reviving those runs wholesale here would
    // trade that memory bound away, so the merge path keeps them.
    if sort_based && part.spilled_run_count() > 0 && part.spilled_runs_sorted_by(key) {
        return Ok(false);
    }
    let Some((store, pairs)) = sorted_pairs_paged(part, field)? else {
        return Ok(false);
    };
    let mut group: Vec<Record> = Vec::new();
    let mut start = 0;
    while start < pairs.len() {
        let prefix = pairs[start].0;
        let mut end = start + 1;
        while end < pairs.len() && pairs[end].0 == prefix {
            end += 1;
        }
        let len = fill_group(&store, &pairs[start..end], &mut group);
        let k = Key::Long(denormalize_long(prefix.to_be_bytes()));
        udf.reduce(&k.values(), &group[..len], out);
        start = end;
    }
    Ok(true)
}

/// Page-native sort-merge join: both sides sort `(prefix, handle)` pairs and
/// the two-pointer merge materializes only the current key group of each
/// side.
fn try_sort_merge_paged(
    left_key: &[usize],
    right_key: &[usize],
    left: &LocalInput,
    right: &LocalInput,
    udf: &dyn crate::contracts::MatchFunction,
    out: &mut Collector,
) -> std::io::Result<bool> {
    let (&[lfield], &[rfield]) = (left_key, right_key) else {
        return Ok(false);
    };
    let (LocalInput::Paged(lpart), LocalInput::Paged(rpart)) = (left, right) else {
        return Ok(false);
    };
    if !has_paged_data(lpart) && !has_paged_data(rpart) {
        return Ok(false);
    }
    // Sides whose spilled runs carry the key order materialize by linear
    // merge in the fallback — an interleaving the delivery-order ingest
    // cannot reproduce.
    let disqualifies = |part: &ExchangedPartition, key: &[usize]| {
        is_sorted_merge_part(part)
            || (part.spilled_run_count() > 0 && part.spilled_runs_sorted_by(key))
    };
    if disqualifies(lpart, left_key) || disqualifies(rpart, right_key) {
        return Ok(false);
    }
    let Some((lstore, lpairs)) = sorted_pairs_paged(lpart, lfield)? else {
        return Ok(false);
    };
    let Some((rstore, rpairs)) = sorted_pairs_paged(rpart, rfield)? else {
        return Ok(false);
    };
    let (mut lgroup, mut rgroup) = (Vec::new(), Vec::new());
    let (mut li, mut ri) = (0usize, 0usize);
    while li < lpairs.len() && ri < rpairs.len() {
        let (lp, rp) = (lpairs[li].0, rpairs[ri].0);
        // Unsigned prefix order is the key order (normalized encoding).
        match lp.cmp(&rp) {
            std::cmp::Ordering::Less => {
                li += 1;
                while li < lpairs.len() && lpairs[li].0 == lp {
                    li += 1;
                }
            }
            std::cmp::Ordering::Greater => {
                ri += 1;
                while ri < rpairs.len() && rpairs[ri].0 == rp {
                    ri += 1;
                }
            }
            std::cmp::Ordering::Equal => {
                let mut lend = li + 1;
                while lend < lpairs.len() && lpairs[lend].0 == lp {
                    lend += 1;
                }
                let mut rend = ri + 1;
                while rend < rpairs.len() && rpairs[rend].0 == rp {
                    rend += 1;
                }
                let llen = fill_group(&lstore, &lpairs[li..lend], &mut lgroup);
                let rlen = fill_group(&rstore, &rpairs[ri..rend], &mut rgroup);
                for l in &lgroup[..llen] {
                    for r in &rgroup[..rlen] {
                        udf.join(l, r, out);
                    }
                }
                li = lend;
                ri = rend;
            }
        }
    }
    Ok(true)
}

/// Grouping for the Reduce contract (hash- or sort-based).
fn run_reduce(
    key: &[usize],
    local: LocalStrategy,
    input: LocalInput,
    udf: &dyn crate::contracts::ReduceFunction,
    out: &mut Collector,
    page_native: bool,
) -> Result<()> {
    let sort_based = matches!(local, LocalStrategy::SortGroup);
    if page_native && try_reduce_paged(key, &input, sort_based, udf, out)? {
        return Ok(());
    }
    match local {
        LocalStrategy::SortGroup => {
            // A range exchange already delivered this partition sorted on
            // the grouping key: the sort the plan no longer performs.
            let presorted = input.sorted_by() == Some(key);
            // Out-of-core path: whenever every spilled run is sorted on the
            // grouping key (range deliveries always; hash deliveries via
            // their sort-on-flush), only the in-memory residue is sorted and
            // the groups stream off the k-way merge — one key group in
            // memory at a time, the spilled part never rematerializes.
            let input = match input {
                LocalInput::Paged(part)
                    if part.spilled_run_count() > 0 && part.spilled_runs_sorted_by(key) =>
                {
                    let merger = if presorted {
                        part.into_merger()?
                    } else {
                        let (mut residue, runs) = part.into_mem_and_runs();
                        sort_by_key_normalized(&mut residue, key);
                        RunMerger::over_runs(&runs, residue, key.to_vec())?
                    };
                    merger.for_each_group(|k, group| udf.reduce(&k.values(), group, out))?;
                    return Ok(());
                }
                other => other,
            };
            let mut records = input.into_records()?;
            if !presorted {
                sort_by_key(&mut records, key);
            }
            for (start, end) in group_ranges(&records, key) {
                let group = &records[start..end];
                let k = Key::extract(&group[0], key);
                udf.reduce(&k.values(), group, out);
            }
        }
        // HashGroup and any other strategy: build the groups in an Fx hash
        // table, then emit them in key order so the output stays
        // deterministic across runs.
        _ => {
            let mut groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
            input.for_each_owned(|record| {
                groups
                    .entry(Key::extract(&record, key))
                    .or_default()
                    .push(record);
            })?;
            emit_grouped(groups, udf, out);
        }
    }
    Ok(())
}

/// Emits hash-built groups in key order (records within a group stay in
/// delivery order) so the output is deterministic across runs — shared by the
/// materializing and the chained Reduce paths.
fn emit_grouped(
    groups: FxHashMap<Key, Vec<Record>>,
    udf: &dyn crate::contracts::ReduceFunction,
    out: &mut Collector,
) {
    let mut sorted: Vec<(Key, Vec<Record>)> = groups.into_iter().collect();
    sorted.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    for (k, group) in &sorted {
        udf.reduce(&k.values(), group, out);
    }
}

/// Equi-join for the Match contract (hash or sort-merge).  The build side is
/// materialized; the probe side is streamed (page records through a scratch
/// record, never fully materialized).
#[allow(clippy::too_many_arguments)]
fn run_match(
    left_key: &[usize],
    right_key: &[usize],
    local: LocalStrategy,
    left: LocalInput,
    right: LocalInput,
    udf: &dyn crate::contracts::MatchFunction,
    out: &mut Collector,
    page_native: bool,
) -> Result<()> {
    match local {
        LocalStrategy::HashJoinBuildRight => {
            if page_native && try_match_paged(&right, &left, right_key, left_key, false, udf, out)?
            {
                return Ok(());
            }
            let right_records = right.into_records()?;
            let mut table: FxHashMap<Key, Vec<&Record>> = FxHashMap::default();
            for record in &right_records {
                table
                    .entry(Key::extract(record, right_key))
                    .or_default()
                    .push(record);
            }
            left.for_each_ref(|l| {
                if let Some(matches) = table.get(&Key::extract(l, left_key)) {
                    for r in matches {
                        udf.join(l, r, out);
                    }
                }
            })?;
        }
        LocalStrategy::SortMergeJoin => {
            if page_native && try_sort_merge_paged(left_key, right_key, &left, &right, udf, out)? {
                return Ok(());
            }
            // Range-exchanged sides arrive sorted on their join key; only
            // sides without the delivered order pay a sort, and sides whose
            // spilled runs carry the key order materialize by linear merge.
            let l_sorted = into_sorted_records(left, left_key)?;
            let r_sorted = into_sorted_records(right, right_key)?;
            let l_ranges = group_ranges(&l_sorted, left_key);
            let r_ranges = group_ranges(&r_sorted, right_key);
            let (mut li, mut ri) = (0usize, 0usize);
            while li < l_ranges.len() && ri < r_ranges.len() {
                let lrec = &l_sorted[l_ranges[li].0];
                let rrec = &r_sorted[r_ranges[ri].0];
                match crate::key::compare_keys(lrec, left_key, rrec, right_key) {
                    std::cmp::Ordering::Less => li += 1,
                    std::cmp::Ordering::Greater => ri += 1,
                    std::cmp::Ordering::Equal => {
                        for l in &l_sorted[l_ranges[li].0..l_ranges[li].1] {
                            for r in &r_sorted[r_ranges[ri].0..r_ranges[ri].1] {
                                udf.join(l, r, out);
                            }
                        }
                        li += 1;
                        ri += 1;
                    }
                }
            }
        }
        // Default: build on the left, probe with the right.
        _ => {
            if page_native && try_match_paged(&left, &right, left_key, right_key, true, udf, out)? {
                return Ok(());
            }
            let left_records = left.into_records()?;
            let mut table: FxHashMap<Key, Vec<&Record>> = FxHashMap::default();
            for record in &left_records {
                table
                    .entry(Key::extract(record, left_key))
                    .or_default()
                    .push(record);
            }
            right.for_each_ref(|r| {
                if let Some(matches) = table.get(&Key::extract(r, right_key)) {
                    for l in matches {
                        udf.join(l, r, out);
                    }
                }
            })?;
        }
    }
    Ok(())
}

/// Grouped join for the CoGroup / InnerCoGroup contracts.
fn run_cogroup(
    left_key: &[usize],
    right_key: &[usize],
    inner: bool,
    left: LocalInput,
    right: LocalInput,
    udf: &dyn crate::contracts::CoGroupFunction,
    out: &mut Collector,
) -> Result<()> {
    let mut left_groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
    left.for_each_owned(|record| {
        left_groups
            .entry(Key::extract(&record, left_key))
            .or_default()
            .push(record);
    })?;
    let mut right_groups: FxHashMap<Key, Vec<Record>> = FxHashMap::default();
    right.for_each_owned(|record| {
        right_groups
            .entry(Key::extract(&record, right_key))
            .or_default()
            .push(record);
    })?;
    // Emit groups in key order so the output stays deterministic across runs.
    let empty: Vec<Record> = Vec::new();
    if inner {
        let mut sorted: Vec<(&Key, &Vec<Record>)> = left_groups.iter().collect();
        sorted.sort_unstable_by(|a, b| a.0.cmp(b.0));
        for (k, lgroup) in sorted {
            if let Some(rgroup) = right_groups.get(k) {
                udf.cogroup(&k.values(), lgroup, rgroup, out);
            }
        }
    } else {
        let mut keys: Vec<&Key> = left_groups.keys().chain(right_groups.keys()).collect();
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            let lgroup = left_groups.get(k).unwrap_or(&empty);
            let rgroup = right_groups.get(k).unwrap_or(&empty);
            udf.cogroup(&k.values(), lgroup, rgroup, out);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts::{CoGroupClosure, MapClosure, MatchClosure, ReduceClosure};
    use crate::physical::default_physical_plan;
    use crate::plan::Plan;
    use crate::value::Value;

    fn execute(plan: &Plan, parallelism: usize) -> ExecutionResult {
        let phys = default_physical_plan(plan, parallelism).unwrap();
        Executor::new().execute(&phys).unwrap()
    }

    #[test]
    fn map_doubles_values_across_partitions() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..100).map(|i| Record::pair(i, i)).collect();
        let src = plan.source("src", data);
        let map = plan.map(
            "double",
            src,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(Record::pair(r.long(0), r.long(1) * 2));
            })),
        );
        plan.sink("out", map);
        for parallelism in [1, 3, 8] {
            let result = execute(&plan, parallelism);
            let mut records = result.sink("out").unwrap();
            records.sort();
            assert_eq!(records.len(), 100);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.long(1), 2 * i as i64);
            }
        }
    }

    #[test]
    fn reduce_sums_groups_regardless_of_parallelism() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..60).map(|i| Record::pair(i % 5, 1)).collect();
        let src = plan.source("src", data);
        let red = plan.reduce(
            "count",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], group: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), group.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        for parallelism in [1, 4] {
            let result = execute(&plan, parallelism);
            let mut records = result.sink("out").unwrap();
            records.sort();
            assert_eq!(records.len(), 5);
            for r in &records {
                assert_eq!(r.long(1), 12);
            }
        }
    }

    #[test]
    fn match_join_produces_all_matching_pairs() {
        let mut plan = Plan::new();
        let left = plan.source(
            "left",
            vec![
                Record::pair(1, 10),
                Record::pair(2, 20),
                Record::pair(2, 21),
            ],
        );
        let right = plan.source("right", vec![Record::pair(2, 200), Record::pair(3, 300)]);
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(1), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let result = execute(&plan, 4);
        let mut records = result.sink("out").unwrap();
        records.sort();
        assert_eq!(records, vec![Record::pair(20, 200), Record::pair(21, 200)]);
    }

    #[test]
    fn inner_cogroup_drops_unmatched_keys() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 10), Record::pair(2, 20)]);
        let right = plan.source("right", vec![Record::pair(2, 200), Record::pair(2, 201)]);
        let cg = plan.inner_cogroup(
            "cg",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(CoGroupClosure(
                |key: &[Value], l: &[Record], r: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), (l.len() + r.len()) as i64));
                },
            )),
        );
        plan.sink("out", cg);
        let result = execute(&plan, 3);
        let records = result.sink("out").unwrap();
        assert_eq!(records, vec![Record::pair(2, 3)]);
    }

    #[test]
    fn outer_cogroup_keeps_all_keys() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 10)]);
        let right = plan.source("right", vec![Record::pair(2, 200)]);
        let cg = plan.cogroup(
            "cg",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(CoGroupClosure(
                |key: &[Value], l: &[Record], r: &[Record], out: &mut Collector| {
                    out.collect(Record::triple(
                        key[0].as_long(),
                        l.len() as i64,
                        r.len() as f64,
                    ));
                },
            )),
        );
        plan.sink("out", cg);
        let result = execute(&plan, 2);
        let mut records = result.sink("out").unwrap();
        records.sort();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn cross_product_with_broadcast_right() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 0), Record::pair(2, 0)]);
        let right = plan.source(
            "right",
            vec![
                Record::pair(10, 0),
                Record::pair(20, 0),
                Record::pair(30, 0),
            ],
        );
        let cross = plan.cross(
            "cross",
            left,
            right,
            Arc::new(crate::contracts::CrossClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(0), r.long(0)));
                },
            )),
        );
        plan.sink("out", cross);
        let result = execute(&plan, 2);
        let records = result.sink("out").unwrap();
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn union_concatenates_inputs() {
        let mut plan = Plan::new();
        let a = plan.source("a", vec![Record::pair(1, 1)]);
        let b = plan.source("b", vec![Record::pair(2, 2), Record::pair(3, 3)]);
        let u = plan.union("u", vec![a, b]);
        plan.sink("out", u);
        let result = execute(&plan, 2);
        assert_eq!(result.sink("out").unwrap().len(), 3);
    }

    #[test]
    fn zero_parallelism_plans_are_rejected() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![Record::pair(1, 1)]);
        plan.sink("out", src);
        // Construction-time validation.
        assert!(default_physical_plan(&plan, 0).is_err());
        // A hand-built plan with parallelism 0 is rejected by the executor
        // instead of being clamped silently.
        let mut phys = default_physical_plan(&plan, 2).unwrap();
        phys.parallelism = 0;
        assert!(Executor::new().execute(&phys).is_err());
    }

    #[test]
    fn unknown_sink_is_an_error() {
        let mut plan = Plan::new();
        let a = plan.source("a", vec![]);
        plan.sink("out", a);
        let result = execute(&plan, 1);
        assert!(result.sink("nope").is_err());
        assert_eq!(result.sink_names(), vec!["out".to_owned()]);
    }

    #[test]
    fn stats_count_shipped_records_for_partitioning() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..1000).map(|i| Record::pair(i, 1)).collect();
        let src = plan.source("src", data);
        let red = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), g.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        let result = execute(&plan, 4);
        // With 4 partitions roughly 3/4 of the records move; certainly > 0.
        assert!(result.stats.shipped_records > 0);
        assert!(result.stats.shipped_bytes >= result.stats.shipped_records * 8);
        assert_eq!(result.stats.records_out_of("sum"), 1000);
    }

    #[test]
    fn broadcast_counts_replicated_records() {
        let mut plan = Plan::new();
        let left = plan.source("left", (0..10).map(|i| Record::pair(i, 0)).collect());
        let right = plan.source("right", (0..5).map(|i| Record::pair(i, 0)).collect());
        let cross = plan.cross(
            "cross",
            left,
            right,
            Arc::new(crate::contracts::CrossClosure(
                |l: &Record, _r: &Record, out: &mut Collector| {
                    out.collect(l.clone());
                },
            )),
        );
        plan.sink("out", cross);
        let phys = default_physical_plan(&plan, 4).unwrap();
        let result = Executor::new().execute(&phys).unwrap();
        // 5 broadcast records each replicated to 3 other partitions.
        assert_eq!(result.stats.shipped_records, 15);
        assert_eq!(result.sink("out").unwrap().len(), 50);
    }

    #[test]
    fn cached_edges_skip_reshipping() {
        let mut plan = Plan::new();
        let left = plan.source("left", (0..50).map(|i| Record::pair(i, i)).collect());
        let right = plan.source("right", (0..50).map(|i| Record::pair(i, -i)).collect());
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(1), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let mut phys = default_physical_plan(&plan, 4).unwrap();
        phys.cache_input(join, 1);
        let mut cache = IntermediateCache::new();
        let exec = Executor::new();
        let first = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(cache.len(), 1);
        let second = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(second.stats.cache_hits, 1);
        // Fewer records shipped in the second run because the right input is
        // served from the cache.
        assert!(second.stats.shipped_records < first.stats.shipped_records);
        assert_eq!(
            first.sink("out").unwrap().len(),
            second.sink("out").unwrap().len()
        );
    }

    #[test]
    fn sort_merge_join_matches_hash_join() {
        let mut plan = Plan::new();
        let left_data: Vec<Record> = (0..40).map(|i| Record::pair(i % 7, i)).collect();
        let right_data: Vec<Record> = (0..30).map(|i| Record::pair(i % 7, 100 + i)).collect();
        let left = plan.source("left", left_data);
        let right = plan.source("right", right_data);
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(1), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);

        let mut hash_phys = default_physical_plan(&plan, 3).unwrap();
        hash_phys.choices.get_mut(&join).unwrap().local = LocalStrategy::HashJoinBuildRight;
        let mut smj_phys = default_physical_plan(&plan, 3).unwrap();
        smj_phys.choices.get_mut(&join).unwrap().local = LocalStrategy::SortMergeJoin;

        let exec = Executor::new();
        let mut a = exec.execute(&hash_phys).unwrap().sink("out").unwrap();
        let mut b = exec.execute(&smj_phys).unwrap().sink("out").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sort_group_matches_hash_group() {
        let mut plan = Plan::new();
        let data: Vec<Record> = (0..200).map(|i| Record::pair(i % 13, i)).collect();
        let src = plan.source("src", data);
        let red = plan.reduce(
            "min",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    let min = g.iter().map(|r| r.long(1)).min().unwrap();
                    out.collect(Record::pair(key[0].as_long(), min));
                },
            )),
        );
        plan.sink("out", red);
        let mut hash_phys = default_physical_plan(&plan, 2).unwrap();
        hash_phys.choices.get_mut(&red).unwrap().local = LocalStrategy::HashGroup;
        let mut sort_phys = default_physical_plan(&plan, 2).unwrap();
        sort_phys.choices.get_mut(&red).unwrap().local = LocalStrategy::SortGroup;
        let exec = Executor::new();
        let mut a = exec.execute(&hash_phys).unwrap().sink("out").unwrap();
        let mut b = exec.execute(&sort_phys).unwrap().sink("out").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
    }

    #[test]
    fn paged_exchange_routes_like_per_record_exchange() {
        // The sealed-page exchange must deliver exactly the records a naive
        // per-record clone-based exchange would, to exactly the same targets.
        let parallelism = 4;
        let mut producer: Partitions = vec![Vec::new(); parallelism];
        for i in 0..1000i64 {
            producer[(i % parallelism as i64) as usize].push(Record::triple(
                i.wrapping_mul(0x9E37),
                i,
                0.5,
            ));
        }
        let mut expected: Vec<Vec<Record>> = vec![Vec::new(); parallelism];
        for partition in &producer {
            for r in partition {
                expected[partition_for(r, &[0], parallelism)].push(r.clone());
            }
        }
        for owned in [true, false] {
            let mut stats = ExecutionStats::new();
            let input = if owned {
                ProducerInput::Owned(producer.clone())
            } else {
                ProducerInput::Shared(Arc::new(producer.clone()))
            };
            let spill = SpillManager::new(MemoryBudget::unlimited(), Some(vec![0]));
            let exchanged = paged_exchange(
                input,
                &[0],
                parallelism,
                &spill,
                &TransportHandle::default(),
                &mut stats,
            )
            .unwrap();
            assert!(
                stats.shipped_pages > 0,
                "cross-partition data moves as pages"
            );
            assert_eq!(stats.spilled_runs, 0, "unbudgeted exchanges never spill");
            assert!(stats.shipped_records > 0);
            assert_eq!(stats.shipped_records + stats.local_records, 1000);
            for (target, part) in exchanged.into_iter().enumerate() {
                let mut received = part.into_records().unwrap();
                received.sort();
                let mut want = expected[target].clone();
                want.sort();
                assert_eq!(
                    received, want,
                    "partition {target} diverged (owned={owned})"
                );
            }
        }
    }

    #[test]
    fn broadcast_shares_sealed_pages() {
        let producer: Partitions = vec![
            (0..10).map(|i| Record::pair(i, i)).collect(),
            (10..25).map(|i| Record::pair(i, i)).collect(),
        ];
        let mut stats = ExecutionStats::new();
        let exchanged = broadcast_paged(ProducerInput::Owned(producer), 3, &mut stats);
        assert_eq!(stats.shipped_records, 25 * 2);
        assert_eq!(stats.local_records, 25);
        assert!(stats.shipped_pages > 0);
        for part in exchanged {
            let mut records = part.into_records().unwrap();
            records.sort();
            assert_eq!(
                records,
                (0..25).map(|i| Record::pair(i, i)).collect::<Vec<_>>()
            );
        }
    }

    /// Builds a keyed-sum plan and returns `(plan, reduce id)`.
    fn keyed_sum_plan(records: Vec<Record>) -> (Plan, OperatorId) {
        let mut plan = Plan::new();
        let src = plan.source("src", records);
        let red = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    let total: i64 = g.iter().map(|r| r.long(1)).sum();
                    out.collect(Record::pair(key[0].as_long(), total));
                },
            )),
        );
        plan.sink("out", red);
        (plan, red)
    }

    #[test]
    fn range_exchange_delivers_globally_sorted_partitions() {
        // Route a skewed keyed dataset with the range exchange and check the
        // concatenation of the consumer partitions in partition order is
        // globally sorted — the property hash partitioning cannot deliver.
        let parallelism = 4;
        let mut producer: Partitions = vec![Vec::new(); parallelism];
        for i in 0..2000i64 {
            let key = (i * i) % 997 - 400; // skewed, with duplicates
            producer[(i % parallelism as i64) as usize].push(Record::pair(key, i));
        }
        let mut sample = Vec::new();
        for part in &producer {
            sample_keys_into(&mut sample, part, &[0]);
        }
        let bounds = RangeBounds::from_sample(sample, parallelism);
        let mut stats = ExecutionStats::new();
        let spill = SpillManager::new(MemoryBudget::unlimited(), Some(vec![0]));
        let exchanged = range_exchange(
            ProducerInput::Owned(producer.clone()),
            &[0],
            &bounds,
            parallelism,
            &spill,
            &TransportHandle::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.shipped_records + stats.local_records, 2000);
        let mut concatenated: Vec<Record> = Vec::new();
        for part in exchanged {
            assert_eq!(part.sorted_by(), Some(&[0usize][..]));
            concatenated.extend(part.into_records().unwrap());
        }
        let mut expected: Vec<Record> = producer.into_iter().flatten().collect();
        sort_by_key(&mut expected, &[0]);
        assert_eq!(concatenated.len(), expected.len());
        for window in concatenated.windows(2) {
            assert!(
                window[0].long(0) <= window[1].long(0),
                "not globally sorted"
            );
        }
        concatenated.sort();
        expected.sort();
        assert_eq!(
            concatenated, expected,
            "range exchange changed the multiset"
        );
    }

    #[test]
    fn range_partitioned_reduce_matches_hash_partitioned_reduce() {
        let records: Vec<Record> = (0..500).map(|i| Record::pair(i % 37 - 18, 1)).collect();
        let (plan, red) = keyed_sum_plan(records);
        let hash_phys = default_physical_plan(&plan, 4).unwrap();
        let mut range_phys = default_physical_plan(&plan, 4).unwrap();
        {
            let choice = range_phys.choices.get_mut(&red).unwrap();
            choice.input_ships[0] = ShipStrategy::PartitionRange(vec![0]);
            choice.local = LocalStrategy::SortGroup;
        }
        let exec = Executor::new();
        let mut a = exec.execute(&hash_phys).unwrap().into_sink("out").unwrap();
        let range_result = exec.execute(&range_phys).unwrap();
        assert!(range_result.stats.shipped_records > 0);
        let mut b = range_result.into_sink("out").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 37);
    }

    #[test]
    fn mixed_hash_and_range_join_inputs_are_rejected() {
        let mut plan = Plan::new();
        let left = plan.source("left", vec![Record::pair(1, 1)]);
        let right = plan.source("right", vec![Record::pair(1, 2)]);
        let join = plan.match_join(
            "join",
            left,
            right,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, _r: &Record, out: &mut Collector| out.collect(l.clone()),
            )),
        );
        plan.sink("out", join);
        let mut phys = default_physical_plan(&plan, 2).unwrap();
        phys.choices.get_mut(&join).unwrap().input_ships[1] = ShipStrategy::PartitionRange(vec![0]);
        let err = Executor::new().execute(&phys).unwrap_err();
        assert!(
            err.to_string().contains("range histogram"),
            "unexpected error: {err}"
        );
        // A forwarded sibling is equally rejected: whatever layout the
        // upstream operator delivered, it cannot share this operator's
        // freshly sampled histogram.
        let mut phys = default_physical_plan(&plan, 2).unwrap();
        let choice = phys.choices.get_mut(&join).unwrap();
        choice.input_ships[0] = ShipStrategy::Forward;
        choice.input_ships[1] = ShipStrategy::PartitionRange(vec![0]);
        let err = Executor::new().execute(&phys).unwrap_err();
        assert!(
            err.to_string().contains("forwarded"),
            "unexpected error: {err}"
        );
        // Range on both sides shares one histogram and executes fine.
        let mut phys = default_physical_plan(&plan, 2).unwrap();
        let choice = phys.choices.get_mut(&join).unwrap();
        choice.input_ships[0] = ShipStrategy::PartitionRange(vec![0]);
        choice.input_ships[1] = ShipStrategy::PartitionRange(vec![0]);
        let result = Executor::new().execute(&phys).unwrap();
        assert_eq!(result.sink("out").unwrap(), vec![Record::pair(1, 1)]);
    }

    #[test]
    fn cached_range_edges_stay_sorted_and_freeze_their_histogram() {
        let records: Vec<Record> = (0..300).map(|i| Record::pair((i * 7) % 50, i)).collect();
        let (plan, red) = keyed_sum_plan(records);
        let mut phys = default_physical_plan(&plan, 3).unwrap();
        {
            let choice = phys.choices.get_mut(&red).unwrap();
            choice.input_ships[0] = ShipStrategy::PartitionRange(vec![0]);
            choice.local = LocalStrategy::SortGroup;
        }
        phys.cache_input(red, 0);
        let mut cache = IntermediateCache::new();
        let exec = Executor::new();
        let first = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.range_bounds.len(), 1, "histogram frozen in the cache");
        let cached = cache.entries.values().next().unwrap();
        assert_eq!(cached.sorted_by.as_deref(), Some(&[0usize][..]));
        for part in cached.parts.iter() {
            for window in part.windows(2) {
                assert!(window[0].long(0) <= window[1].long(0));
            }
        }
        let second = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(second.stats.cache_hits, 1);
        let mut a = first.into_sink("out").unwrap();
        let mut b = second.into_sink("out").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        cache.clear();
        assert!(cache.range_bounds.is_empty());
    }

    #[test]
    fn budgeted_range_exchange_delivers_merged_global_order() {
        // Budget 0: every routed record spills; the delivered partitions are
        // merges of sorted runs plus the sorted local residue and must still
        // concatenate into the same global key order as the in-memory path.
        let parallelism = 4;
        let mut producer: Partitions = vec![Vec::new(); parallelism];
        for i in 0..1500i64 {
            producer[(i % parallelism as i64) as usize].push(Record::pair((i * i) % 311 - 100, i));
        }
        let mut sample = Vec::new();
        for part in &producer {
            sample_keys_into(&mut sample, part, &[0]);
        }
        let bounds = RangeBounds::from_sample(sample, parallelism);
        let mut stats = ExecutionStats::new();
        let spill = SpillManager::new(MemoryBudget::bytes(0), Some(vec![0]));
        let exchanged = range_exchange(
            ProducerInput::Owned(producer.clone()),
            &[0],
            &bounds,
            parallelism,
            &spill,
            &TransportHandle::default(),
            &mut stats,
        )
        .unwrap();
        assert!(stats.spilled_runs > 0, "budget 0 must spill");
        assert!(stats.spilled_bytes > 0);
        let mut concatenated: Vec<Record> = Vec::new();
        for part in exchanged {
            assert_eq!(part.sorted_by(), Some(&[0usize][..]));
            concatenated.extend(part.into_records().unwrap());
        }
        for window in concatenated.windows(2) {
            assert!(
                window[0].long(0) <= window[1].long(0),
                "not globally sorted"
            );
        }
        let mut expected: Vec<Record> = producer.into_iter().flatten().collect();
        concatenated.sort();
        expected.sort();
        assert_eq!(concatenated, expected, "spilling changed the multiset");
    }

    #[test]
    fn budgeted_execution_matches_unbudgeted_execution() {
        // The whole plan under a zero budget: hash-shipped HashGroup, hash-
        // shipped SortGroup (merging sorted spilled runs) and range-shipped
        // SortGroup (streaming group over the merge) must all equal the
        // in-memory run.
        let records: Vec<Record> = (0..3000).map(|i| Record::pair(i % 97 - 40, 1)).collect();
        let (plan, red) = keyed_sum_plan(records);
        let unbudgeted = Executor::new()
            .execute(&default_physical_plan(&plan, 4).unwrap())
            .unwrap();
        assert_eq!(unbudgeted.stats.spilled_bytes, 0);
        let mut expected = unbudgeted.into_sink("out").unwrap();
        expected.sort();
        for (ship_range, local) in [
            (false, LocalStrategy::HashGroup),
            (false, LocalStrategy::SortGroup),
            (true, LocalStrategy::SortGroup),
        ] {
            let mut phys = default_physical_plan(&plan, 4).unwrap();
            {
                let choice = phys.choices.get_mut(&red).unwrap();
                if ship_range {
                    choice.input_ships[0] = ShipStrategy::PartitionRange(vec![0]);
                }
                choice.local = local;
            }
            let executor =
                Executor::with_config(ExecConfig::new().with_memory_budget(MemoryBudget::bytes(0)));
            let result = executor.execute(&phys).unwrap();
            assert!(
                result.stats.spilled_bytes > 0,
                "zero budget must spill (range={ship_range}, {local:?})"
            );
            assert!(result.stats.spilled_runs > 0);
            let mut got = result.into_sink("out").unwrap();
            got.sort();
            assert_eq!(
                got, expected,
                "budgeted run diverged (range={ship_range}, {local:?})"
            );
        }
    }

    #[test]
    fn budgeted_cached_edges_spill_and_serve_from_disk() {
        let records: Vec<Record> = (0..400).map(|i| Record::pair((i * 7) % 50, i)).collect();
        let (plan, red) = keyed_sum_plan(records);
        let mut phys = default_physical_plan(&plan, 3).unwrap();
        {
            let choice = phys.choices.get_mut(&red).unwrap();
            choice.input_ships[0] = ShipStrategy::PartitionRange(vec![0]);
            choice.local = LocalStrategy::SortGroup;
        }
        phys.cache_input(red, 0);
        let mut cache = IntermediateCache::new().with_memory_budget(MemoryBudget::bytes(64));
        let exec = Executor::new();
        let first = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert!(
            first.stats.spilled_bytes > 0,
            "the cached edge exceeds 64 bytes and must spill"
        );
        let cached = cache.entries.values().next().unwrap();
        assert!(cached.runs.is_some(), "edge lives on disk");
        assert!(cached.parts.iter().all(Vec::is_empty));
        assert_eq!(cached.sorted_by.as_deref(), Some(&[0usize][..]));
        // Every re-execution streams the spilled runs back and agrees with
        // an uncached, unbudgeted run.
        let second = exec.execute_with_cache(&phys, &mut cache).unwrap();
        assert_eq!(second.stats.cache_hits, 1);
        let mut a = first.into_sink("out").unwrap();
        let mut b = second.into_sink("out").unwrap();
        let mut c = Executor::new()
            .execute(&default_physical_plan(&plan, 3).unwrap())
            .unwrap()
            .into_sink("out")
            .unwrap();
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_source_flows_through() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![]);
        let map = plan.map(
            "id",
            src,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        plan.sink("out", map);
        let result = execute(&plan, 4);
        assert!(result.sink("out").unwrap().is_empty());
    }
}
