//! True range partitioning: sampled equi-depth histograms, splitter-based
//! routing, and the memcmp sort on normalized key prefixes.
//!
//! Hash partitioning collocates equal keys but destroys order; *range*
//! partitioning assigns each worker partition a contiguous key interval, so
//! that partition *i* holds strictly smaller keys than partition *i + 1*.
//! Combined with a local sort per partition this delivers a **global order**
//! — the "interesting property" the paper's optimizer reuses across the loop
//! boundary so iterative plans pay for a global sort once instead of once per
//! superstep (Section 4.3).
//!
//! The pieces:
//!
//! * [`RangeBounds`] — `p − 1` splitter keys chosen as equi-depth quantiles
//!   of a sample of the data.  Routing is a binary search over the splitters
//!   ([`RangeBounds::partition_of_key`]); records whose key equals a splitter
//!   all land on the same side, so equal keys always collocate.
//! * [`PartitionRouter`] — the routing function of one exchange, either hash
//!   (`partition_for`) or range (splitter search), so the workset driver and
//!   the executor can swap the scheme without duplicating their hot loops.
//! * [`sort_by_key_normalized`] — sorts records by their key fields using an
//!   8-byte memcmp key for single-`Long` keys: the [`normalize_long`]
//!   encoding of the page format is order-preserving, so comparing the
//!   normalized `u64`s equals comparing the [`Value`]s, at a fraction of the
//!   cost of the `Value`-dispatching comparator.  Ties keep their input
//!   order (the index is part of the sort key), so the fast path is
//!   observationally identical to the stable [`sort_by_key`].
//!
//! Splitters are values, not field positions: the two inputs of a merge join
//! key on different fields but share one key *value* space, so one
//! [`RangeBounds`] built from a combined sample routes both sides
//! consistently (the executor enforces this by building one bounds object
//! per consuming operator).

use crate::key::{hash_of_key, partition_for, sort_by_key, Key};
use crate::page::normalize_long;
use crate::record::Record;
use crate::value::Value;
use std::sync::Arc;

/// Cap on the number of keys sampled per producer partition when building
/// splitters; a stride over the partition keeps the sample deterministic.
pub const SAMPLE_KEYS_PER_PARTITION: usize = 256;

/// The splitters of one range partitioning: at most `p − 1` strictly
/// increasing keys.  Record keys are mapped to a partition by counting the
/// splitters strictly smaller than the key, so keys equal to a splitter stay
/// with the partition *below* it and equal keys never straddle a boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeBounds {
    /// Strictly increasing splitter keys (`len() < parallelism`).
    splitters: Vec<Key>,
    /// The splitter values as raw `i64`s when every splitter is a single
    /// `Long` — the fast path that routes graph keys without materialising a
    /// [`Key`].
    long_splitters: Option<Vec<i64>>,
}

impl RangeBounds {
    /// Builds equi-depth splitters from a sample of keys.
    ///
    /// The sample is sorted and the `i·n/p` quantiles become the splitters;
    /// duplicates are collapsed, so a degenerate sample (all-equal keys, or
    /// fewer distinct keys than partitions) simply yields fewer effective
    /// partitions.  An **empty sample yields no splitters**: every record
    /// routes to partition 0 (one effective partition) and nothing panics.
    pub fn from_sample(mut sample: Vec<Key>, parallelism: usize) -> RangeBounds {
        let parallelism = parallelism.max(1);
        sample.sort_unstable();
        let n = sample.len();
        let mut splitters: Vec<Key> = Vec::with_capacity(parallelism.saturating_sub(1));
        if n > 0 {
            for i in 1..parallelism {
                let splitter = &sample[((i * n) / parallelism).min(n - 1)];
                if splitters.last() != Some(splitter) {
                    splitters.push(splitter.clone());
                }
            }
        }
        let long_splitters = splitters
            .iter()
            .map(Key::as_long)
            .collect::<Option<Vec<i64>>>()
            .filter(|_| !splitters.is_empty());
        RangeBounds {
            splitters,
            long_splitters,
        }
    }

    /// The splitter keys, strictly increasing.
    pub fn splitters(&self) -> &[Key] {
        &self.splitters
    }

    /// Number of partitions that can actually receive records
    /// (`splitters + 1`, at most the parallelism the bounds were built for).
    pub fn effective_partitions(&self) -> usize {
        self.splitters.len() + 1
    }

    /// The partition of a single `i64` key value.
    #[inline]
    pub fn partition_of_long(&self, v: i64) -> usize {
        match &self.long_splitters {
            Some(longs) => longs.partition_point(|s| *s < v),
            None => self.partition_of_key(&Key::Long(v)),
        }
    }

    /// The partition of an extracted key: the number of splitters strictly
    /// smaller than it.  Monotone in the key order (and therefore in the
    /// normalized prefix encoding, which preserves that order).
    #[inline]
    pub fn partition_of_key(&self, key: &Key) -> usize {
        if let (Some(longs), Some(v)) = (&self.long_splitters, key.as_long()) {
            return longs.partition_point(|s| *s < v);
        }
        self.splitters.partition_point(|s| s < key)
    }

    /// The partition of `record`, keyed on `fields`.  Single-`Long` keys are
    /// routed without materialising a [`Key`].
    #[inline]
    pub fn partition_for_record(&self, record: &Record, fields: &[usize]) -> usize {
        if let (Some(longs), [field]) = (&self.long_splitters, fields) {
            if let Value::Long(v) = record.field(*field) {
                return longs.partition_point(|s| s < v);
            }
        }
        self.partition_of_key(&Key::extract(record, fields))
    }
}

/// Samples up to [`SAMPLE_KEYS_PER_PARTITION`] keys from `records` with a
/// deterministic stride, appending them to `sample`.
pub fn sample_keys_into(sample: &mut Vec<Key>, records: &[Record], fields: &[usize]) {
    let stride = records.len() / SAMPLE_KEYS_PER_PARTITION + 1;
    sample.extend(
        records
            .iter()
            .step_by(stride)
            .map(|record| Key::extract(record, fields)),
    );
}

/// The partitioning function of one exchange: hash or range.
///
/// Both the executor's exchanges and the workset driver's superstep exchange
/// route through this enum, so swapping the scheme never touches the hot
/// loops themselves.  Cloning is cheap (range bounds are shared by `Arc`).
#[derive(Debug, Clone)]
pub enum PartitionRouter {
    /// Fx-hash routing over `parallelism` partitions ([`partition_for`]).
    Hash {
        /// Number of target partitions.
        parallelism: usize,
    },
    /// Splitter routing; delivers contiguous, ordered key ranges.
    Range {
        /// The shared splitters.
        bounds: Arc<RangeBounds>,
        /// Number of target partitions (≥ the bounds' effective partitions).
        parallelism: usize,
    },
}

impl PartitionRouter {
    /// A hash router over `parallelism` partitions.
    pub fn hash(parallelism: usize) -> PartitionRouter {
        PartitionRouter::Hash {
            parallelism: parallelism.max(1),
        }
    }

    /// A range router over `parallelism` partitions.
    ///
    /// # Panics
    /// If the bounds address more partitions than `parallelism`.
    pub fn range(bounds: Arc<RangeBounds>, parallelism: usize) -> PartitionRouter {
        let parallelism = parallelism.max(1);
        assert!(
            bounds.effective_partitions() <= parallelism,
            "range bounds address {} partitions but only {parallelism} exist",
            bounds.effective_partitions()
        );
        PartitionRouter::Range {
            bounds,
            parallelism,
        }
    }

    /// Number of target partitions.
    pub fn parallelism(&self) -> usize {
        match self {
            PartitionRouter::Hash { parallelism } | PartitionRouter::Range { parallelism, .. } => {
                *parallelism
            }
        }
    }

    /// True when this router delivers ordered key ranges.
    pub fn is_range(&self) -> bool {
        matches!(self, PartitionRouter::Range { .. })
    }

    /// Routes `record`, keyed on `fields`, to its target partition.
    #[inline]
    pub fn route(&self, record: &Record, fields: &[usize]) -> usize {
        match self {
            PartitionRouter::Hash { parallelism } => partition_for(record, fields, *parallelism),
            PartitionRouter::Range { bounds, .. } => bounds.partition_for_record(record, fields),
        }
    }

    /// Routes an already-extracted key; agrees with [`PartitionRouter::route`]
    /// on the record it was extracted from.
    #[inline]
    pub fn route_key(&self, key: &Key) -> usize {
        match self {
            PartitionRouter::Hash { parallelism } => {
                (hash_of_key(key) % *parallelism as u64) as usize
            }
            PartitionRouter::Range { bounds, .. } => bounds.partition_of_key(key),
        }
    }
}

/// Sorts records by their key fields, using the 8-byte memcmp fast path for
/// single-`Long` keys.  Returns `true` when the fast path was taken.
///
/// The fast path extracts each record's [`normalize_long`] prefix as a `u64`
/// (byte-wise comparison of the big-endian normalized bytes equals `u64`
/// comparison of the same bits), pairs it with the record's input index and
/// sorts the fixed-width pairs with an unstable sort — ties fall back to the
/// index, so the permutation is exactly the one the stable
/// [`sort_by_key`] would produce, without ever touching a [`Value`]
/// comparator.  Keys of any other shape use [`sort_by_key`] directly.
pub fn sort_by_key_normalized(records: &mut Vec<Record>, fields: &[usize]) -> bool {
    let long_field = match fields {
        [field]
            if records.len() <= u32::MAX as usize
                && records
                    .iter()
                    .all(|r| matches!(r.fields().get(*field), Some(Value::Long(_)))) =>
        {
            *field
        }
        _ => {
            sort_by_key(records, fields);
            return false;
        }
    };
    // (normalized key, input index, record): the record rides along with its
    // fixed-width sort key, so the build and write-back passes are purely
    // sequential — no random-access gather through a permutation vector —
    // and every comparison is two integer compares, never a `Value`.
    let mut keyed: Vec<(u64, u32, Record)> = records
        .drain(..)
        .enumerate()
        .map(|(i, r)| {
            (
                u64::from_be_bytes(normalize_long(r.long(long_field))),
                i as u32,
                r,
            )
        })
        .collect();
    keyed.sort_unstable_by_key(|&(key, index, _)| (key, index));
    records.extend(keyed.into_iter().map(|(_, _, r)| r));
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_keys(values: &[i64]) -> Vec<Key> {
        values.iter().map(|&v| Key::long(v)).collect()
    }

    #[test]
    fn equi_depth_splitters_balance_a_uniform_sample() {
        let sample = long_keys(&(0..1000).collect::<Vec<i64>>());
        let bounds = RangeBounds::from_sample(sample, 4);
        assert_eq!(bounds.effective_partitions(), 4);
        let mut counts = [0usize; 4];
        for v in 0..1000 {
            counts[bounds.partition_of_long(v)] += 1;
        }
        for &c in &counts {
            assert!(
                (200..=300).contains(&c),
                "uniform keys should spread evenly: {counts:?}"
            );
        }
    }

    #[test]
    fn routing_is_monotone_in_the_key_order() {
        let sample = long_keys(&[-50, -3, -3, 0, 7, 7, 7, 1000, i64::MAX]);
        let bounds = RangeBounds::from_sample(sample, 4);
        let probes = [i64::MIN, -51, -50, -3, -1, 0, 6, 7, 8, 999, 1000, i64::MAX];
        for window in probes.windows(2) {
            assert!(
                bounds.partition_of_long(window[0]) <= bounds.partition_of_long(window[1]),
                "routing not monotone at {window:?}"
            );
        }
    }

    #[test]
    fn equal_keys_collocate_even_on_splitter_boundaries() {
        let bounds = RangeBounds::from_sample(long_keys(&[1, 2, 3, 4, 5, 6, 7, 8]), 4);
        for splitter in bounds.splitters() {
            let v = splitter.as_long().unwrap();
            let record_a = Record::pair(v, 0);
            let record_b = Record::pair(v, 99);
            assert_eq!(
                bounds.partition_for_record(&record_a, &[0]),
                bounds.partition_for_record(&record_b, &[0])
            );
        }
    }

    #[test]
    fn empty_sample_yields_one_effective_partition() {
        let bounds = RangeBounds::from_sample(Vec::new(), 8);
        assert_eq!(bounds.effective_partitions(), 1);
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(bounds.partition_of_long(v), 0);
        }
    }

    #[test]
    fn all_equal_sample_routes_everything_to_the_first_partitions() {
        let bounds = RangeBounds::from_sample(long_keys(&[7; 100]), 8);
        // All splitters collapse to one value; keys ≤ 7 land in partition 0.
        assert!(bounds.effective_partitions() <= 2);
        assert_eq!(bounds.partition_of_long(7), 0);
        assert_eq!(bounds.partition_of_long(i64::MIN), 0);
        assert!(bounds.partition_of_long(8) < 8);
    }

    #[test]
    fn composite_keys_route_through_the_generic_path() {
        let sample = vec![
            Key::from_values(vec![Value::Text("b".into())]),
            Key::from_values(vec![Value::Text("d".into())]),
            Key::from_values(vec![Value::Text("f".into())]),
            Key::from_values(vec![Value::Text("h".into())]),
        ];
        let bounds = RangeBounds::from_sample(sample, 2);
        let a = Record::new(vec![Value::Text("a".into())]);
        let z = Record::new(vec![Value::Text("z".into())]);
        assert!(bounds.partition_for_record(&a, &[0]) <= bounds.partition_for_record(&z, &[0]));
        assert!(bounds.long_splitters.is_none());
    }

    #[test]
    fn router_parallelism_and_route_agreement() {
        let bounds = Arc::new(RangeBounds::from_sample(
            long_keys(&(0..64).collect::<Vec<i64>>()),
            4,
        ));
        let range = PartitionRouter::range(Arc::clone(&bounds), 4);
        let hash = PartitionRouter::hash(4);
        assert!(range.is_range());
        assert!(!hash.is_range());
        assert_eq!(range.parallelism(), 4);
        for v in -10..80 {
            let record = Record::pair(v, 0);
            let key = Key::long(v);
            assert_eq!(range.route(&record, &[0]), range.route_key(&key));
            assert_eq!(hash.route(&record, &[0]), hash.route_key(&key));
            assert!(range.route(&record, &[0]) < 4);
        }
    }

    #[test]
    #[should_panic(expected = "range bounds address")]
    fn router_rejects_bounds_wider_than_the_parallelism() {
        let bounds = Arc::new(RangeBounds::from_sample(
            long_keys(&(0..64).collect::<Vec<i64>>()),
            8,
        ));
        let _ = PartitionRouter::range(bounds, 2);
    }

    #[test]
    fn normalized_sort_matches_stable_value_sort() {
        // Duplicate keys with distinct payloads pin the tie-breaking: the
        // index tiebreak makes the memcmp path exactly stable.
        let mut fast: Vec<Record> = (0..500)
            .map(|i| Record::pair((i * 37) % 19 - 9, i))
            .collect();
        let mut oracle = fast.clone();
        assert!(sort_by_key_normalized(&mut fast, &[0]));
        sort_by_key(&mut oracle, &[0]);
        assert_eq!(fast, oracle);
    }

    #[test]
    fn normalized_sort_falls_back_for_non_long_keys() {
        let mut records = vec![
            Record::long_double(2, 0.5),
            Record::long_double(1, -1.0),
            Record::long_double(3, 2.0),
        ];
        // Keying on the double field must take the Value-comparison path.
        assert!(!sort_by_key_normalized(&mut records, &[1]));
        assert_eq!(records[0].double(1), -1.0);
        // Composite keys fall back too.
        let mut records = vec![Record::pair(2, 1), Record::pair(1, 2)];
        assert!(!sort_by_key_normalized(&mut records, &[0, 1]));
        assert_eq!(records[0].long(0), 1);
    }

    #[test]
    fn normalized_sort_covers_extreme_longs() {
        let mut records: Vec<Record> = [i64::MAX, 0, i64::MIN, -1, 1, i64::MIN, i64::MAX]
            .iter()
            .enumerate()
            .map(|(i, &v)| Record::pair(v, i as i64))
            .collect();
        let mut oracle = records.clone();
        assert!(sort_by_key_normalized(&mut records, &[0]));
        sort_by_key(&mut oracle, &[0]);
        assert_eq!(records, oracle);
    }

    #[test]
    fn sample_keys_into_strides_large_partitions() {
        let records: Vec<Record> = (0..10_000).map(|i| Record::pair(i, 0)).collect();
        let mut sample = Vec::new();
        sample_keys_into(&mut sample, &records, &[0]);
        assert!(!sample.is_empty());
        assert!(sample.len() <= SAMPLE_KEYS_PER_PARTITION);
        // Small partitions are sampled exhaustively.
        let mut sample = Vec::new();
        sample_keys_into(&mut sample, &records[..10], &[0]);
        assert_eq!(sample.len(), 10);
    }
}
